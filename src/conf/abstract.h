// Trace abstraction layer: maps concrete modem-style trace records
// (src/trace) back into the screening models' vocabulary (src/model/vocab)
// so a simulator replay can be checked as a *refinement* of a model
// counterexample — the abstracted concrete trace must contain the model's
// observable events in the model's order.
//
// The mapping is deliberately table-driven (module + description
// substring -> abstract kind) and documented in DESIGN.md's "Conformance"
// section; it is the inverse of the abstraction the screening models apply
// to the stack.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.h"

namespace cnv::conf {

// Observable events in model vocabulary. Each corresponds to one or more
// concrete trace records; the mapping table lives in abstract.cc.
enum class AbstractKind : std::uint8_t {
  // Inter-system switches (S1/S3 models).
  kSwitch4gTo3g,
  kCsfbFallback,  // 4G->3G switch specifically for a CSFB call
  kSwitch3gTo4g,
  kCellReselection,
  kAwaitReselection,
  // Session / context management (S1 model).
  kPdpDeactivated,
  kUserDataOff,
  kUserDataOn,
  // Attach / TAU signaling (S2 model).
  kAttachRequest,
  kAttachAccept,
  kAttachComplete,
  kAttachReject,
  kTauRequest,
  kTauReject,
  kNetworkDetach,
  kServiceRecovered,
  // Data sessions (S3 model).
  kDataSessionStart,
  kDataSessionStop,
  // CS calls and MM coupling (S3/S4 models).
  kCallDialed,
  kCmServiceRequest,
  kCallDeferred,
  kCallEstablished,
  kCallEnded,
  kLocationUpdateStart,
  kMmWaitNetCmd,
  // Overload control (storm campaigns; no model counterpart yet, but the
  // differential harness keys on them when replaying congestion scenarios).
  kCongestionReject,    // UE-side reject with cause "congestion"
  kCongestionBackoff,   // UE arms T3346-class backoff
  kOverloadReject,      // core turns signalling away (reject or shed)
  kAdversarialRejected, // core screens out malformed/replayed NAS
  kStormBegins,         // a storm generator burst starts
  // Location-update coupling and shared-channel effects (S5/S6 signatures;
  // consumed by the online runtime-verification monitors in src/rtv).
  kLuDeferred,          // LU held back until the CSFB call completes
  kLuDisrupted,         // LU torn down mid-flight by an inter-system switch
  kChannelDegraded,     // 64QAM disabled while a CS voice call holds the channel
  kChannelRestored,     // 64QAM re-enabled after the voice call
};

std::string ToString(AbstractKind k);

// One abstracted event: the model-vocabulary kind plus where it came from
// in the concrete record stream.
struct AbstractEvent {
  AbstractKind kind = AbstractKind::kAttachRequest;
  SimTime time = 0;
  std::size_t record_index = 0;
};

// Abstracts one record through the kRules mapping table (first match wins,
// in table order); std::nullopt when the record has no model-vocabulary
// counterpart. This is the incremental entry point the runtime-verification
// gateway steps per record; internally it dispatches on the record's module
// first so unmapped modules (RRC churn, channel reconfigurations, ...) cost
// one lookup instead of a full table scan.
std::optional<AbstractKind> MatchAbstractKind(const trace::TraceRecord& r);

// Abstracts a concrete record stream. Records with no model-vocabulary
// counterpart are dropped; the result preserves record order. Equivalent to
// MatchAbstractKind applied record by record.
std::vector<AbstractEvent> AbstractTrace(
    const std::vector<trace::TraceRecord>& records);

// Refinement check: `expected` (derived from the model counterexample) must
// appear as an in-order subsequence of the abstracted concrete trace.
struct RefinementCheck {
  bool refines = false;
  // Index into `expected` of the first event with no match (only meaningful
  // when !refines).
  std::size_t failed_index = 0;
  // The expected kinds that never matched, in order.
  std::vector<AbstractKind> missing;
};

RefinementCheck CheckRefinement(const std::vector<AbstractEvent>& concrete,
                                const std::vector<AbstractKind>& expected);

}  // namespace cnv::conf
