#include "conf/golden.h"

#include "stack/scenarios.h"
#include "stack/testbed.h"
#include "trace/qxdm.h"

namespace cnv::conf {

namespace {

// All goldens share one fixed seed; changing it is an intentional golden
// update (regenerate with examples/golden_traces).
constexpr std::uint64_t kGoldenSeed = 7;

stack::Testbed MakeTestbed(stack::CarrierProfile profile) {
  stack::TestbedConfig cfg;
  cfg.profile = std::move(profile);
  cfg.seed = kGoldenSeed;
  return stack::Testbed(cfg);
}

// S1 (§5.1): 4G->3G switch with data, network deactivates the PDP context,
// switch back detaches the device for the missing EPS bearer context.
std::string GenerateS1() {
  auto profile = stack::OpI();
  profile.pdp_deact_in_3g_prob = 0.0;  // the deactivation is scripted
  auto tb = MakeTestbed(profile);
  stack::scenario::AttachIn4g(tb);
  tb.ue().SwitchTo3g(model::SwitchReason::kCsfbCall);
  tb.Run(Seconds(10));
  tb.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
  tb.Run(Seconds(1));
  tb.ue().SwitchTo4g();
  tb.Run(Seconds(30));
  return trace::FormatLog(tb.traces().records());
}

// S2 (§5.2, Figure 5a): the Attach Complete is lost over the air; the next
// TAU is rejected with "implicitly detached".
std::string GenerateS2() {
  auto tb = MakeTestbed(stack::OpI());
  tb.ue().PowerOn(nas::System::k4G);
  tb.ul4g().ForceDropNext(1);  // the request is in flight; drop the Complete
  tb.Run(Seconds(2));
  tb.ue().CrossAreaBoundary();
  tb.Run(Seconds(10));
  return trace::FormatLog(tb.traces().records());
}

// S3 (§5.3): CSFB call with an ongoing data session on the cell-reselection
// carrier; after hang-up the device is stranded in 3G.
std::string GenerateS3() {
  auto profile = stack::OpII();
  profile.lu_failure_prob = 0.0;  // isolate from the S6 failure mode
  auto tb = MakeTestbed(profile);
  stack::scenario::AttachIn4g(tb);
  tb.ue().StartDataSession(0.2);
  tb.Run(Seconds(1));
  stack::scenario::EstablishCall(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  tb.Run(Seconds(30));
  return trace::FormatLog(tb.traces().records());
}

// S4 (§6.1): an outgoing call dialed while the location update from an
// area-boundary crossing is still running gets deferred (HOL blocking).
std::string GenerateS4() {
  auto tb = MakeTestbed(stack::OpI());
  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(15));
  tb.ue().CrossAreaBoundary();
  tb.Run(Millis(200));
  tb.ue().Dial();
  tb.Run(Seconds(5));
  return trace::FormatLog(tb.traces().records());
}

// S5 (§6.2): a 3G voice call throttles the shared-channel data session.
std::string GenerateS5() {
  auto tb = MakeTestbed(stack::OpI());
  stack::scenario::AttachIn3g(tb);
  tb.ue().StartDataSession(50.0);
  tb.Run(Seconds(5));
  stack::scenario::EstablishCall(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  tb.Run(Seconds(2));
  return trace::FormatLog(tb.traces().records());
}

// S6 (§6.3): the post-CSFB location update fails and the device is
// implicitly detached on its return to 4G.
std::string GenerateS6() {
  auto profile = stack::OpI();
  profile.lu_failure_prob = 1.0;  // force the failure mode deterministically
  auto tb = MakeTestbed(profile);
  stack::scenario::AttachIn4g(tb);
  stack::scenario::EstablishCall(tb);
  tb.Run(Seconds(10));
  tb.ue().HangUp();
  stack::scenario::RunUntil(
      tb, [&] { return tb.ue().serving() == nas::System::k4G; }, Seconds(60));
  tb.Run(Seconds(10));
  return trace::FormatLog(tb.traces().records());
}

// Overload control: a mass-attach storm saturates the MME's bounded
// signalling queue under the reject-backoff policy. The device powers on
// mid-storm, its Attach Request is congestion-rejected with a T3346 grant,
// and the retry lands after the backlog has drained. A short adversarial
// burst exercises the screening path (malformed / truncated / mis-typed /
// replayed NAS) in the same trace.
std::string GenerateCongestionStorm() {
  stack::TestbedConfig cfg;
  cfg.profile = stack::OpI();
  cfg.seed = kGoldenSeed;
  cfg.overload.enabled = true;
  cfg.overload.policy = stack::AdmissionPolicy::kRejectBackoff;
  cfg.overload.queue_capacity = 4;
  cfg.overload.service_time = Millis(20);
  cfg.overload.t3346_backoff = Seconds(5);
  stack::Testbed tb(cfg);
  tb.storm().MassAttach(Millis(10), 300, Millis(2));
  tb.sim().ScheduleAt(Millis(100),
                      [&tb] { tb.ue().PowerOn(nas::System::k4G); });
  tb.storm().AdversarialNas(Seconds(1), 7, Millis(50));
  tb.Run(Seconds(12));
  return trace::FormatLog(tb.traces().records());
}

}  // namespace

const std::vector<GoldenScenario>& GoldenScenarios() {
  static const std::vector<GoldenScenario> kScenarios = {
      {"s1_context_loss_opi", "S1: PDP context loss detaches on 3G->4G switch",
       &GenerateS1},
      {"s2_lost_attach_complete_opi",
       "S2: lost Attach Complete, TAU implicitly detached", &GenerateS2},
      {"s3_stuck_in_3g_opii",
       "S3: post-CSFB device stranded in 3G awaiting reselection",
       &GenerateS3},
      {"s4_hol_blocking_opi",
       "S4: CM service request deferred behind a location update",
       &GenerateS4},
      {"s5_call_data_coupling_opi",
       "S5: voice call throttles the shared-channel data session",
       &GenerateS5},
      {"s6_lu_failure_detach_opi",
       "S6: failed post-CSFB location update ends in implicit detach",
       &GenerateS6},
      {"congestion_attach_storm_opi",
       "Overload: storm congests the MME; attach congestion-rejected with "
       "T3346 backoff, retried after the drain",
       &GenerateCongestionStorm},
  };
  return kScenarios;
}

}  // namespace cnv::conf
