// Counterexample-to-scenario compiler: takes an mck violation trace from
// one of the S1–S4 screening models and emits a deterministic simulator
// script (conf/script.h) that drives a stack::Testbed through the same
// event sequence. Before emitting anything, each compiler validates the
// counterexample by replaying its actions through the model — a truncated
// or hand-mangled trace that does not end in a violating state is rejected
// rather than silently compiled.
#pragma once

#include <string>

#include "conf/script.h"
#include "mck/explorer.h"
#include "model/s1_model.h"
#include "model/s2_model.h"
#include "model/s3_model.h"
#include "model/s4_model.h"

namespace cnv::conf {

struct CompileResult {
  bool ok = false;
  std::string error;  // why compilation was refused (when !ok)
  ScenarioScript script;
};

CompileResult CompileS1(const model::S1Model& m,
                        const mck::Violation<model::S1Model>& v);
CompileResult CompileS2(const model::S2Model& m,
                        const mck::Violation<model::S2Model>& v);
CompileResult CompileS3(const model::S3Model& m,
                        const mck::Violation<model::S3Model>& v);
CompileResult CompileS4(const model::S4Model& m,
                        const mck::Violation<model::S4Model>& v);

}  // namespace cnv::conf
