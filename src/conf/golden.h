// Golden-trace scenario catalog: one deterministic QXDM-formatted trace per
// paper finding (S1–S6), generated from a fixed-seed testbed run. The
// committed copies live in tests/golden/; trace_golden_test regenerates and
// byte-diffs them, and `examples/golden_traces --out tests/golden` is the
// one-command regen path for intentional changes.
//
// The byte-stability contract is per-toolchain: the testbed samples
// lognormal latencies through libstdc++'s distributions, so the committed
// goldens are tied to the repo's reference toolchain (the CI one).
#pragma once

#include <string>
#include <vector>

namespace cnv::conf {

struct GoldenScenario {
  std::string name;         // file stem, e.g. "s1_context_loss_opi"
  std::string description;  // what the trace shows
  std::string (*generate)();  // QXDM-formatted log (trace::FormatLog)
};

const std::vector<GoldenScenario>& GoldenScenarios();

}  // namespace cnv::conf
