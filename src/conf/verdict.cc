#include "conf/verdict.h"

namespace cnv::conf {

std::string ToString(Verdict v) {
  switch (v) {
    case Verdict::kConfirmed:
      return "confirmed";
    case Verdict::kAgreedAbsent:
      return "agreed-absent";
    case Verdict::kModelOnlyDivergence:
      return "model-only-divergence";
    case Verdict::kSimOnlyDivergence:
      return "sim-only-divergence";
    case Verdict::kRefinementMismatch:
      return "refinement-mismatch";
    case Verdict::kCarrierMismatch:
      return "carrier-mismatch";
    case Verdict::kBadCounterexample:
      return "bad-counterexample";
  }
  return "?";
}

}  // namespace cnv::conf
