// Machine-readable verdicts for one model-vs-stack cross-check. Every
// conformance comparison ends in exactly one of these — never a silent
// pass.
#pragma once

#include <cstdint>
#include <string>

namespace cnv::conf {

enum class Verdict : std::uint8_t {
  // The model finds the violation, the replay reproduces the same finding
  // probe, and the abstracted concrete trace refines the counterexample.
  kConfirmed,
  // Neither side exhibits the defect (e.g. S3 replayed on a
  // release-with-redirect carrier with a matching model config).
  kAgreedAbsent,
  // The model claims a violation the simulator does not reproduce (e.g.
  // the stack runs a §8 remedy the model does not know about).
  kModelOnlyDivergence,
  // The simulator reproduces a defect the model claims cannot happen.
  kSimOnlyDivergence,
  // The probe fired but the abstracted trace does not contain the model's
  // event sequence — same symptom, different mechanism.
  kRefinementMismatch,
  // The counterexample requires a carrier policy the target profile does
  // not use; replaying it there would test nothing.
  kCarrierMismatch,
  // The counterexample failed validation (truncated, stitched, or claiming
  // a property the final state does not violate).
  kBadCounterexample,
};

std::string ToString(Verdict v);

}  // namespace cnv::conf
