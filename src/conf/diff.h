// Randomized differential driver: sweeps seeds × carrier profiles, running
// the screening models (exhaustive exploration as ground truth plus a
// seeded random walk per cell) side by side with simulator replays of the
// compiled counterexample scripts, and classifies every cell into a
// conf::Verdict. Divergences are either explained (a known cause, e.g. a
// random-walk sampling miss or the Table 6 CSFB return-latency tail) or
// unexplained — the sweep's headline number, expected to be zero.
//
// The sweep is checkpointable and parallel with the same discipline as the
// screening/campaign runners: cells are position-indexed, so the report is
// byte-identical at any --jobs count and across kill/resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "conf/script.h"
#include "mck/reduction.h"
#include "conf/verdict.h"
#include "dist/grid.h"

namespace cnv::conf {

struct DiffOptions {
  std::uint64_t seeds = 64;      // seeds per (scenario, carrier) group
  std::uint64_t seed_base = 1;   // first testbed seed
  std::uint64_t walks = 32;      // random walks per cell (model side)
  int jobs = 1;                  // worker threads/processes (1 = inline)
  std::string checkpoint_dir;    // empty = no checkpointing
  bool resume = false;
  ckpt::RetryPolicy retry;
  ckpt::CancelToken* cancel = nullptr;
  // Distributed execution (dist::RunGrid); see fault::CampaignConfig.
  dist::Backend backend = dist::Backend::kThread;
  std::int64_t heartbeat_ms = 2000;
  int quarantine_after = 3;
  dist::KillPlan kill_plan;
  // State-space reductions for the model-side explorations (exhaustive
  // passes and canonical-script compilation). The S1-S4 slices have
  // trivial reduction specs, so the report is byte-identical with the
  // flags on — the `reduction` CI job pins that.
  mck::ReductionOptions reduction;
};

struct DiffCell {
  Scenario scenario = Scenario::kS1;
  std::string carrier;
  std::uint64_t seed = 0;
  bool model_violation = false;  // exhaustive exploration (ground truth)
  bool walk_violation = false;   // the seeded random walk found it
  bool sim_probe = false;        // the replay reproduced the finding probe
  Verdict verdict = Verdict::kAgreedAbsent;
  bool explained = true;  // agreement, or a divergence with a known cause
  std::string note;
};

struct DiffReport {
  std::uint64_t seeds = 0;
  std::uint64_t seed_base = 0;
  std::uint64_t walks = 0;
  std::vector<DiffCell> cells;  // (scenario, carrier, seed) order
  std::uint64_t agreements = 0;
  std::uint64_t explained_divergences = 0;
  std::uint64_t unexplained_divergences = 0;
  // Cells where the random walk missed a violation the exhaustive pass
  // finds — a sampling artifact (§3.2.1), tracked but never a divergence.
  std::uint64_t walk_misses = 0;
  ckpt::ExecutionStats exec;  // stderr only, never byte-compared
  // Quarantined cells (poisoned inputs that repeatedly killed their
  // workers); empty on healthy sweeps.
  std::vector<dist::QuarantineRecord> quarantined;
  bool complete = true;
};

class DifferentialDriver {
 public:
  explicit DifferentialDriver(DiffOptions options);

  std::uint64_t ConfigDigest() const;
  DiffReport Run() const;

  // Deterministic renderings: same report -> same bytes.
  static std::string FormatText(const DiffReport& report);
  static std::string FormatJson(const DiffReport& report);

 private:
  DiffOptions options_;
};

}  // namespace cnv::conf
