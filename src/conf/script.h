// Deterministic simulator scripts: the output vocabulary of the
// counterexample-to-scenario compiler (conf/compile.h) and the input of the
// replay executor. A script is a flat list of UE actions, link-fault
// arming steps and timed waits that drives a stack::Testbed through the
// same event sequence as a model counterexample; replaying it yields the
// concrete trace plus the RecoveryMonitor finding probes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "conf/abstract.h"
#include "fault/monitor.h"
#include "model/vocab.h"
#include "nas/causes.h"
#include "stack/carrier.h"
#include "stack/testbed.h"
#include "trace/record.h"

namespace cnv::conf {

// The four screening scenarios whose counterexamples the compiler handles
// (S5/S6 are validation-only findings with no screening model).
enum class Scenario : std::uint8_t { kS1, kS2, kS3, kS4 };

std::string ToString(Scenario s);

enum class Op : std::uint8_t {
  kPowerOn4g,
  kPowerOn3g,
  kAwaitAttach4g,          // bounded wait for EMM-REGISTERED
  kSwitchTo3g,             // carries a SwitchReason
  kSwitchTo4g,
  kDeactivatePdp,          // network-initiated, carries a PdpDeactCause
  kDataOff,                // user toggles mobile data off
  kDataOn,
  kStartData,              // carries demand_mbps
  kStopData,
  kDial,
  kAwaitCallActive,        // bounded wait for an active call
  kHangUp,
  kCrossAreaBoundary,
  kDropNextUplink4g,       // arm: lose the next `count` 4G uplink packets
  kDeferNextUplink4g,      // arm: hold the next 4G uplink packet `millis`
  kDuplicateAttachRejects,  // MME policy for reprocessed stale attaches
  kRun,                    // advance simulated time by `millis`
};

struct ScriptStep {
  Op op = Op::kRun;
  model::SwitchReason reason = model::SwitchReason::kMobility;
  nas::PdpDeactCause cause = nas::PdpDeactCause::kRegularDeactivation;
  double demand_mbps = 0.0;
  int count = 0;
  std::int64_t millis = 0;
  bool flag = false;
};

std::string ToString(const ScriptStep& s);

struct ScenarioScript {
  Scenario scenario = Scenario::kS1;
  // Set when the counterexample only reproduces under a specific CSFB
  // return policy (S3 under cell reselection). Replaying on a carrier with
  // a different policy is a carrier mismatch, not a model/sim divergence.
  std::optional<model::SwitchPolicy> required_policy;
  // Compiled scripts schedule their faults explicitly, so the carrier's
  // background fault probabilities (random LU failures, spontaneous PDP
  // deactivations) are zeroed during replay — mirroring how the paper's
  // validation experiments isolate one defect at a time.
  bool isolate_background_faults = true;
  std::vector<ScriptStep> steps;
  // The model counterexample this was compiled from (mck::FormatTrace).
  std::string source;
  // Abstract events the concrete trace must contain, in order, for the
  // replay to refine the counterexample (conf/abstract.h).
  std::vector<AbstractKind> expected;
};

std::string FormatScript(const ScenarioScript& s);

// Defect counters snapshot taken right after the script finishes; used by
// the differential driver to explain divergences (e.g. an OP-I CSFB return
// that exceeded the 10 s stuck-in-3G threshold is the Table 6 latency tail,
// not the S3 reselection defect).
struct ReplayCounters {
  std::uint64_t detaches_no_eps_bearer = 0;
  std::uint64_t stale_attach_detaches = 0;
  std::uint64_t deferred_call_requests = 0;
  double stuck_in_3g_max_s = 0.0;
  bool stranded_in_3g_now = false;
  bool out_of_service = false;
};

struct ReplayOutcome {
  // All bounded waits (attach, call setup) were satisfied. A missed wait
  // means the script could not be driven through — reported, never ignored.
  bool awaits_satisfied = true;
  std::string first_missed_await;
  std::vector<fault::Finding> probes;  // RecoveryMonitor::ProbeFindings
  ReplayCounters counters;
  std::vector<trace::TraceRecord> records;

  bool HasProbe(Scenario s) const;
};

struct ReplayOptions {
  std::uint64_t seed = 1;
  stack::SolutionConfig solutions;
};

// Executes the script on a fresh Testbed with the given carrier profile.
// Deterministic for a fixed (script, profile, options) triple.
ReplayOutcome Replay(const ScenarioScript& script,
                     const stack::CarrierProfile& profile,
                     const ReplayOptions& options = {});

}  // namespace cnv::conf
