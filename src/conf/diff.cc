#include "conf/diff.h"

#include <functional>
#include <memory>

#include "conf/compile.h"
#include "dist/coordinator.h"
#include "mck/explorer.h"
#include "mck/random_walk.h"
#include "obs/json.h"
#include "util/rng.h"
#include "util/strings.h"

namespace cnv::conf {

namespace {

constexpr Scenario kScenarios[] = {Scenario::kS1, Scenario::kS2, Scenario::kS3,
                                   Scenario::kS4};

// One (scenario, carrier) group: the carrier-configured model's exhaustive
// verdict (ground truth), a per-cell random-walk closure over the same
// model, and the canonical replay script compiled from the scenario's
// counterexample.
struct GroupSpec {
  Scenario scenario = Scenario::kS1;
  stack::CarrierProfile carrier;
  std::string property;
  bool model_violation = false;
  bool script_ok = false;
  std::string script_error;
  ScenarioScript script;
  std::function<bool(Rng&, std::uint64_t walks)> walk;
};

// Compiles the canonical replay script for a scenario: the defect-enabled
// model's first counterexample. For S3 this is always the cell-reselection
// model — the script encodes the *user behavior* (data session, CSFB call,
// hang-up), which is what gets replayed on both carriers; the differential
// verdict comes from comparing outcomes, not from expecting reproduction.
CompileResult CanonicalScript(Scenario s, const mck::ExploreOptions& eopt) {
  switch (s) {
    case Scenario::kS1: {
      model::S1Model m;
      const auto r = mck::Explore(m, model::S1Model::Properties(), eopt);
      const auto* v = r.FindViolation(model::kPacketServiceOk);
      if (v == nullptr) return {};
      return CompileS1(m, *v);
    }
    case Scenario::kS2: {
      model::S2Model m;
      const auto r = mck::Explore(m, model::S2Model::Properties(), eopt);
      const auto* v = r.FindViolation(model::kPacketServiceOk);
      if (v == nullptr) return {};
      return CompileS2(m, *v);
    }
    case Scenario::kS3: {
      model::S3Model::Config cfg;
      cfg.policy = model::SwitchPolicy::kCellReselection;
      model::S3Model m(cfg);
      const auto r = mck::Explore(m, m.Properties(), eopt);
      const auto* v = r.FindViolation(model::kMmOk);
      if (v == nullptr) return {};
      return CompileS3(m, *v);
    }
    case Scenario::kS4: {
      model::S4Model m;
      const auto r = mck::Explore(m, model::S4Model::Properties(), eopt);
      const auto* v = r.FindViolation(model::kCallServiceOk);
      if (v == nullptr) return {};
      return CompileS4(m, *v);
    }
  }
  return {};
}

template <typename M>
std::function<bool(Rng&, std::uint64_t)> MakeWalk(M m, std::string property) {
  return [m = std::move(m), property = std::move(property)](
             Rng& rng, std::uint64_t walks) {
    mck::WalkOptions wopt;
    wopt.walks = walks;
    wopt.max_steps_per_walk = 64;
    mck::PropertySet<typename M::State> props;
    if constexpr (requires { M::Properties(); }) {
      props = M::Properties();
    } else {
      props = m.Properties();
    }
    return !mck::RandomWalk(m, props, rng, wopt).Holds(property);
  };
}

GroupSpec BuildGroup(Scenario s, const stack::CarrierProfile& carrier,
                     const mck::ReductionOptions& reduction) {
  GroupSpec g;
  g.scenario = s;
  g.carrier = carrier;
  mck::ExploreOptions eopt;
  eopt.reduction = reduction;
  const CompileResult compiled = CanonicalScript(s, eopt);
  g.script_ok = compiled.ok;
  g.script_error = compiled.error;
  g.script = compiled.script;

  switch (s) {
    case Scenario::kS1: {
      model::S1Model m;
      g.property = model::kPacketServiceOk;
      g.model_violation =
          !mck::Explore(m, model::S1Model::Properties(), eopt)
               .Holds(g.property);
      g.walk = MakeWalk(m, g.property);
      break;
    }
    case Scenario::kS2: {
      model::S2Model m;
      g.property = model::kPacketServiceOk;
      g.model_violation =
          !mck::Explore(m, model::S2Model::Properties(), eopt)
               .Holds(g.property);
      g.walk = MakeWalk(m, g.property);
      break;
    }
    case Scenario::kS3: {
      // The model is configured *from the carrier*: its CSFB return policy
      // decides whether the stuck-in-3G state is reachable at all.
      model::S3Model::Config cfg;
      cfg.policy = carrier.csfb_return_policy;
      model::S3Model m(cfg);
      g.property = model::kMmOk;
      g.model_violation =
          !mck::Explore(m, m.Properties(), eopt).Holds(g.property);
      g.walk = MakeWalk(m, g.property);
      break;
    }
    case Scenario::kS4: {
      model::S4Model m;
      g.property = model::kCallServiceOk;
      g.model_violation =
          !mck::Explore(m, model::S4Model::Properties(), eopt)
               .Holds(g.property);
      g.walk = MakeWalk(m, g.property);
      break;
    }
  }
  return g;
}

std::uint64_t WalkSeed(const GroupSpec& g, std::uint64_t seed) {
  ckpt::DigestBuilder d;
  d.Add(std::string_view("conf-walk"));
  d.Add(ToString(g.scenario));
  d.Add(g.carrier.name);
  d.Add(seed);
  return d.Finish();
}

DiffCell RunCell(const GroupSpec& g, std::uint64_t seed, std::uint64_t walks) {
  DiffCell cell;
  cell.scenario = g.scenario;
  cell.carrier = g.carrier.name;
  cell.seed = seed;
  cell.model_violation = g.model_violation;

  Rng rng(WalkSeed(g, seed));
  cell.walk_violation = g.walk(rng, walks);

  if (!g.script_ok) {
    cell.verdict = Verdict::kBadCounterexample;
    cell.explained = false;
    cell.note = g.script_error;
    return cell;
  }

  ReplayOptions ropt;
  ropt.seed = seed;
  const ReplayOutcome outcome = Replay(g.script, g.carrier, ropt);
  cell.sim_probe = outcome.HasProbe(g.scenario);

  if (cell.model_violation == cell.sim_probe) {
    cell.verdict =
        cell.sim_probe ? Verdict::kConfirmed : Verdict::kAgreedAbsent;
    cell.explained = true;
  } else if (cell.model_violation) {
    cell.verdict = Verdict::kModelOnlyDivergence;
    cell.explained = false;
    cell.note = outcome.awaits_satisfied
                    ? "replay finished without the finding probe"
                    : "replay stalled at: " + outcome.first_missed_await;
  } else {
    cell.verdict = Verdict::kSimOnlyDivergence;
    if (g.scenario == Scenario::kS3 &&
        g.carrier.csfb_return_policy !=
            model::SwitchPolicy::kCellReselection &&
        !outcome.counters.stranded_in_3g_now &&
        outcome.counters.stuck_in_3g_max_s > 0.0) {
      // The probe tripped on a slow operator-controlled return (the
      // Table 6 latency tail, up to 52.6 s on OP-I) — an operational
      // outlier, not the reselection defect the model rules out.
      cell.explained = true;
      cell.note = Format(
          "CSFB return took %.1f s (Table 6 latency tail), device did "
          "return to 4G",
          outcome.counters.stuck_in_3g_max_s);
    } else {
      cell.explained = false;
      cell.note = "simulator reproduced a defect the model rules out";
    }
  }
  if (cell.model_violation && !cell.walk_violation) {
    if (!cell.note.empty()) cell.note += "; ";
    cell.note += "random walk missed the violation (exhaustive pass finds it)";
  }
  return cell;
}

std::string EncodeCell(const DiffCell& c) {
  ckpt::BinaryWriter w;
  w.U8(static_cast<std::uint8_t>(c.scenario));
  w.Str(c.carrier);
  w.U64(c.seed);
  std::uint8_t flags = 0;
  if (c.model_violation) flags |= 1;
  if (c.walk_violation) flags |= 2;
  if (c.sim_probe) flags |= 4;
  if (c.explained) flags |= 8;
  w.U8(flags);
  w.U8(static_cast<std::uint8_t>(c.verdict));
  w.Str(c.note);
  return w.Take();
}

bool DecodeCell(std::string_view payload, DiffCell* cell) {
  ckpt::BinaryReader r(payload);
  DiffCell out;
  out.scenario = static_cast<Scenario>(r.U8());
  out.carrier = r.Str();
  out.seed = r.U64();
  const std::uint8_t flags = r.U8();
  out.model_violation = (flags & 1) != 0;
  out.walk_violation = (flags & 2) != 0;
  out.sim_probe = (flags & 4) != 0;
  out.explained = (flags & 8) != 0;
  out.verdict = static_cast<Verdict>(r.U8());
  out.note = r.Str();
  if (!r.AtEnd()) return false;
  *cell = std::move(out);
  return true;
}

}  // namespace

DifferentialDriver::DifferentialDriver(DiffOptions options)
    : options_(options) {}

std::uint64_t DifferentialDriver::ConfigDigest() const {
  ckpt::DigestBuilder d;
  d.Add(std::string_view("conformance-diff"));
  d.Add(options_.seeds);
  d.Add(options_.seed_base);
  d.Add(options_.walks);
  d.Add(options_.reduction.por);
  d.Add(options_.reduction.symmetry);
  return d.Finish();
}

DiffReport DifferentialDriver::Run() const {
  DiffReport report;
  report.seeds = options_.seeds;
  report.seed_base = options_.seed_base;
  report.walks = options_.walks;

  // The per-group model work (two exhaustive passes per scenario at most)
  // is cheap; precompute serially so every cell shares the ground truth.
  std::vector<GroupSpec> groups;
  for (const Scenario s : kScenarios) {
    for (const auto& carrier : {stack::OpI(), stack::OpII()}) {
      groups.push_back(BuildGroup(s, carrier, options_.reduction));
    }
  }

  const std::size_t n = groups.size() * options_.seeds;

  // Grid view of the sweep: cell i is (group i / seeds, seed i % seeds),
  // outcomes carried as the EncodeCell blob. Dispatch, supervision,
  // checkpoint/resume and quarantine live in dist::RunGrid.
  class Grid final : public dist::CellGrid {
   public:
    Grid(const std::vector<GroupSpec>& groups, const DiffOptions& options)
        : groups_(groups), options_(options) {}
    std::size_t size() const override {
      return groups_.size() * options_.seeds;
    }
    std::string CellName(std::size_t i) const override {
      const GroupSpec& g = groups_[i / options_.seeds];
      return ToString(g.scenario) + " x " + g.carrier.name + " seed=" +
             std::to_string(options_.seed_base + (i % options_.seeds));
    }
    dist::CellOutcome RunCell(std::size_t i, std::string_view) override {
      const GroupSpec& g = groups_[i / options_.seeds];
      const std::uint64_t seed = options_.seed_base + (i % options_.seeds);
      dist::CellOutcome out;
      out.payload = EncodeCell(conf::RunCell(g, seed, options_.walks));
      return out;
    }

   private:
    const std::vector<GroupSpec>& groups_;
    const DiffOptions& options_;
  };
  Grid grid(groups, options_);

  dist::DistOptions opt;
  opt.backend = options_.backend;
  opt.workers = options_.jobs;
  opt.heartbeat_ms = options_.heartbeat_ms;
  opt.quarantine_after = options_.quarantine_after;
  opt.retry = options_.retry;
  opt.kill_plan = options_.kill_plan;
  opt.cancel = options_.cancel != nullptr ? &options_.cancel->flag() : nullptr;
  opt.cell_type = ckpt::PayloadType::kConformanceCell;
  opt.validate_payload = [](std::size_t, std::string_view blob) {
    DiffCell cell;
    return DecodeCell(blob, &cell);
  };
  std::unique_ptr<ckpt::ManifestStore> store;
  if (!options_.checkpoint_dir.empty()) {
    store = std::make_unique<ckpt::ManifestStore>(options_.checkpoint_dir,
                                                  ConfigDigest());
    opt.store = store.get();
    opt.resume = options_.resume;
  }

  dist::GridResult cells = dist::RunGrid(grid, opt);
  report.exec = cells.exec;
  report.quarantined = std::move(cells.quarantined);

  for (std::size_t i = 0; i < n; ++i) {
    if (!cells.Done(i)) {
      report.complete = false;
      if (cells.states[i] == dist::CellState::kPending) {
        report.exec.interrupted = true;
      }
      continue;
    }
    DiffCell c;
    if (!DecodeCell(cells.payloads[i], &c)) continue;
    report.cells.push_back(c);
    if (c.verdict == Verdict::kConfirmed ||
        c.verdict == Verdict::kAgreedAbsent) {
      ++report.agreements;
    } else if (c.explained) {
      ++report.explained_divergences;
    } else {
      ++report.unexplained_divergences;
    }
    if (c.model_violation && !c.walk_violation) ++report.walk_misses;
  }
  return report;
}

std::string DifferentialDriver::FormatText(const DiffReport& report) {
  std::string out;
  out += "=== CNetVerifier conformance: differential model-vs-stack sweep "
         "===\n";
  out += Format("seeds: %llu (base %llu)  walks/cell: %llu\n\n",
                static_cast<unsigned long long>(report.seeds),
                static_cast<unsigned long long>(report.seed_base),
                static_cast<unsigned long long>(report.walks));

  // Group cells back into (scenario, carrier) blocks; cells arrive in
  // sweep order, so group boundaries are where the pair changes.
  std::size_t i = 0;
  while (i < report.cells.size()) {
    const Scenario s = report.cells[i].scenario;
    const std::string& carrier = report.cells[i].carrier;
    std::uint64_t probes = 0;
    std::uint64_t agreements = 0;
    std::uint64_t explained = 0;
    std::uint64_t unexplained = 0;
    std::uint64_t walk_hits = 0;
    std::uint64_t total = 0;
    bool model_violation = false;
    std::string first_note;
    for (; i < report.cells.size() && report.cells[i].scenario == s &&
           report.cells[i].carrier == carrier;
         ++i) {
      const DiffCell& c = report.cells[i];
      ++total;
      model_violation = c.model_violation;
      if (c.sim_probe) ++probes;
      if (c.walk_violation) ++walk_hits;
      if (c.verdict == Verdict::kConfirmed ||
          c.verdict == Verdict::kAgreedAbsent) {
        ++agreements;
      } else if (c.explained) {
        ++explained;
        if (first_note.empty()) first_note = c.note;
      } else {
        ++unexplained;
        if (first_note.empty()) first_note = c.note;
      }
    }
    out += Format(
        "%s x %-5s  model=%s  walk=%llu/%llu  sim-probe=%llu/%llu  "
        "agree=%llu/%llu",
        ToString(s).c_str(), carrier.c_str(),
        model_violation ? "VIOLATION" : "holds",
        static_cast<unsigned long long>(walk_hits),
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(probes),
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(agreements),
        static_cast<unsigned long long>(total));
    if (explained > 0) {
      out += Format("  explained=%llu (%s)",
                    static_cast<unsigned long long>(explained),
                    first_note.c_str());
    }
    if (unexplained > 0) {
      out += Format("  UNEXPLAINED=%llu (%s)",
                    static_cast<unsigned long long>(unexplained),
                    first_note.c_str());
    }
    out += "\n";
  }

  out += Format(
      "\nsummary: %llu cells, %llu agreements, %llu explained divergences, "
      "%llu unexplained divergences, %llu walk misses\n",
      static_cast<unsigned long long>(report.cells.size()),
      static_cast<unsigned long long>(report.agreements),
      static_cast<unsigned long long>(report.explained_divergences),
      static_cast<unsigned long long>(report.unexplained_divergences),
      static_cast<unsigned long long>(report.walk_misses));
  return out;
}

std::string DifferentialDriver::FormatJson(const DiffReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("conformance_report").BeginObject();
  w.Key("seeds").UInt(report.seeds);
  w.Key("seed_base").UInt(report.seed_base);
  w.Key("walks_per_cell").UInt(report.walks);
  w.Key("complete").Bool(report.complete);
  w.Key("summary").BeginObject();
  w.Key("cells").UInt(report.cells.size());
  w.Key("agreements").UInt(report.agreements);
  w.Key("explained_divergences").UInt(report.explained_divergences);
  w.Key("unexplained_divergences").UInt(report.unexplained_divergences);
  w.Key("walk_misses").UInt(report.walk_misses);
  w.EndObject();
  w.Key("cells").BeginArray();
  for (const auto& c : report.cells) {
    w.BeginObject();
    w.Key("scenario").String(ToString(c.scenario));
    w.Key("carrier").String(c.carrier);
    w.Key("seed").UInt(c.seed);
    w.Key("model").Bool(c.model_violation);
    w.Key("walk").Bool(c.walk_violation);
    w.Key("sim").Bool(c.sim_probe);
    w.Key("verdict").String(ToString(c.verdict));
    w.Key("explained").Bool(c.explained);
    w.Key("note").String(c.note);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace cnv::conf
