#include "conf/script.h"

#include "stack/scenarios.h"
#include "util/strings.h"

namespace cnv::conf {

std::string ToString(Scenario s) {
  switch (s) {
    case Scenario::kS1:
      return "S1";
    case Scenario::kS2:
      return "S2";
    case Scenario::kS3:
      return "S3";
    case Scenario::kS4:
      return "S4";
  }
  return "?";
}

std::string ToString(const ScriptStep& s) {
  switch (s.op) {
    case Op::kPowerOn4g:
      return "power on (4G)";
    case Op::kPowerOn3g:
      return "power on (3G)";
    case Op::kAwaitAttach4g:
      return "await 4G attach";
    case Op::kSwitchTo3g:
      return "switch to 3G (" + model::ToString(s.reason) + ")";
    case Op::kSwitchTo4g:
      return "switch to 4G";
    case Op::kDeactivatePdp:
      return "network deactivates PDP context (" + nas::ToString(s.cause) +
             ")";
    case Op::kDataOff:
      return "user data off";
    case Op::kDataOn:
      return "user data on";
    case Op::kStartData:
      return Format("start data session (%.2f Mbps)", s.demand_mbps);
    case Op::kStopData:
      return "stop data session";
    case Op::kDial:
      return "dial";
    case Op::kAwaitCallActive:
      return "await active call";
    case Op::kHangUp:
      return "hang up";
    case Op::kCrossAreaBoundary:
      return "cross area boundary";
    case Op::kDropNextUplink4g:
      return Format("drop next %d 4G uplink packet(s)", s.count);
    case Op::kDeferNextUplink4g:
      return Format("defer next 4G uplink packet %lld ms",
                    static_cast<long long>(s.millis));
    case Op::kDuplicateAttachRejects:
      return s.flag ? "MME rejects reprocessed stale attaches"
                    : "MME re-accepts reprocessed stale attaches";
    case Op::kRun:
      return Format("run %lld ms", static_cast<long long>(s.millis));
  }
  return "?";
}

std::string FormatScript(const ScenarioScript& s) {
  std::string out = "scenario " + ToString(s.scenario) + " script";
  if (s.required_policy) {
    out += " (requires " + model::ToString(*s.required_policy) + ")";
  }
  out += ":\n";
  std::size_t step = 1;
  for (const auto& st : s.steps) {
    out += "  " + std::to_string(step++) + ". " + ToString(st) + "\n";
  }
  return out;
}

bool ReplayOutcome::HasProbe(Scenario s) const {
  const std::string id = ToString(s);
  for (const auto& p : probes) {
    if (p.id == id) return true;
  }
  return false;
}

ReplayOutcome Replay(const ScenarioScript& script,
                     const stack::CarrierProfile& profile,
                     const ReplayOptions& options) {
  stack::TestbedConfig cfg;
  cfg.profile = profile;
  if (script.isolate_background_faults) {
    cfg.profile.lu_failure_prob = 0.0;
    cfg.profile.pdp_deact_in_3g_prob = 0.0;
  }
  cfg.solutions = options.solutions;
  cfg.seed = options.seed;
  stack::Testbed tb(cfg);

  ReplayOutcome outcome;
  auto miss = [&](const ScriptStep& step) {
    if (outcome.awaits_satisfied) {
      outcome.awaits_satisfied = false;
      outcome.first_missed_await = ToString(step);
    }
  };

  for (const auto& step : script.steps) {
    switch (step.op) {
      case Op::kPowerOn4g:
        tb.ue().PowerOn(nas::System::k4G);
        break;
      case Op::kPowerOn3g:
        tb.ue().PowerOn(nas::System::k3G);
        break;
      case Op::kAwaitAttach4g:
        if (!stack::scenario::RunUntil(
                tb,
                [&] {
                  return tb.ue().emm_state() ==
                         stack::UeDevice::EmmState::kRegistered;
                },
                Seconds(30))) {
          miss(step);
        }
        break;
      case Op::kSwitchTo3g:
        tb.ue().SwitchTo3g(step.reason);
        break;
      case Op::kSwitchTo4g:
        tb.ue().SwitchTo4g();
        break;
      case Op::kDeactivatePdp:
        tb.sgsn().DeactivatePdp(step.cause);
        break;
      case Op::kDataOff:
        tb.ue().EnableData(false);
        break;
      case Op::kDataOn:
        tb.ue().EnableData(true);
        break;
      case Op::kStartData:
        tb.ue().StartDataSession(step.demand_mbps);
        break;
      case Op::kStopData:
        tb.ue().StopDataSession();
        break;
      case Op::kDial:
        tb.ue().Dial();
        break;
      case Op::kAwaitCallActive:
        if (!stack::scenario::RunUntil(
                tb,
                [&] {
                  return tb.ue().call_state() ==
                         stack::UeDevice::CallState::kActive;
                },
                Minutes(2))) {
          miss(step);
        }
        break;
      case Op::kHangUp:
        tb.ue().HangUp();
        break;
      case Op::kCrossAreaBoundary:
        tb.ue().CrossAreaBoundary();
        break;
      case Op::kDropNextUplink4g:
        tb.ul4g().ForceDropNext(step.count);
        break;
      case Op::kDeferNextUplink4g:
        tb.ul4g().DeferNext(Millis(step.millis));
        break;
      case Op::kDuplicateAttachRejects:
        tb.mme().set_duplicate_attach_rejects(step.flag);
        break;
      case Op::kRun:
        tb.Run(Millis(step.millis));
        break;
    }
  }

  outcome.probes = fault::RecoveryMonitor::ProbeFindings(tb);
  outcome.counters.detaches_no_eps_bearer = tb.ue().detaches_no_eps_bearer();
  outcome.counters.stale_attach_detaches = tb.mme().stale_attach_detaches();
  outcome.counters.deferred_call_requests = tb.ue().deferred_call_requests();
  if (!tb.ue().stuck_in_3g_seconds().Empty()) {
    outcome.counters.stuck_in_3g_max_s = tb.ue().stuck_in_3g_seconds().Max();
  }
  outcome.counters.stranded_in_3g_now =
      tb.ue().serving() == nas::System::k3G &&
      tb.ue().awaiting_cell_reselection();
  outcome.counters.out_of_service = tb.ue().out_of_service();
  outcome.records = tb.traces().records();
  return outcome;
}

}  // namespace cnv::conf
