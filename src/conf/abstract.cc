#include "conf/abstract.h"

#include <algorithm>
#include <string_view>

namespace cnv::conf {

std::string ToString(AbstractKind k) {
  switch (k) {
    case AbstractKind::kSwitch4gTo3g:
      return "switch-4g-to-3g";
    case AbstractKind::kCsfbFallback:
      return "csfb-fallback";
    case AbstractKind::kSwitch3gTo4g:
      return "switch-3g-to-4g";
    case AbstractKind::kCellReselection:
      return "cell-reselection";
    case AbstractKind::kAwaitReselection:
      return "await-reselection";
    case AbstractKind::kPdpDeactivated:
      return "pdp-deactivated";
    case AbstractKind::kUserDataOff:
      return "user-data-off";
    case AbstractKind::kUserDataOn:
      return "user-data-on";
    case AbstractKind::kAttachRequest:
      return "attach-request";
    case AbstractKind::kAttachAccept:
      return "attach-accept";
    case AbstractKind::kAttachComplete:
      return "attach-complete";
    case AbstractKind::kAttachReject:
      return "attach-reject";
    case AbstractKind::kTauRequest:
      return "tau-request";
    case AbstractKind::kTauReject:
      return "tau-reject";
    case AbstractKind::kNetworkDetach:
      return "network-detach";
    case AbstractKind::kServiceRecovered:
      return "service-recovered";
    case AbstractKind::kDataSessionStart:
      return "data-session-start";
    case AbstractKind::kDataSessionStop:
      return "data-session-stop";
    case AbstractKind::kCallDialed:
      return "call-dialed";
    case AbstractKind::kCmServiceRequest:
      return "cm-service-request";
    case AbstractKind::kCallDeferred:
      return "call-deferred";
    case AbstractKind::kCallEstablished:
      return "call-established";
    case AbstractKind::kCallEnded:
      return "call-ended";
    case AbstractKind::kLocationUpdateStart:
      return "location-update-start";
    case AbstractKind::kMmWaitNetCmd:
      return "mm-wait-net-cmd";
    case AbstractKind::kCongestionReject:
      return "congestion-reject";
    case AbstractKind::kCongestionBackoff:
      return "congestion-backoff";
    case AbstractKind::kOverloadReject:
      return "overload-reject";
    case AbstractKind::kAdversarialRejected:
      return "adversarial-rejected";
    case AbstractKind::kStormBegins:
      return "storm-begins";
    case AbstractKind::kLuDeferred:
      return "lu-deferred";
    case AbstractKind::kLuDisrupted:
      return "lu-disrupted";
    case AbstractKind::kChannelDegraded:
      return "channel-degraded";
    case AbstractKind::kChannelRestored:
      return "channel-restored";
  }
  return "?";
}

namespace {

// Mapping table entry: a record whose module equals `module` and whose
// description contains `needle` abstracts to `kind`. First match wins, so
// the CSFB-specific switch rule precedes the generic one.
struct Rule {
  const char* module;
  const char* needle;
  AbstractKind kind;
};

// The abstraction-mapping table (documented in DESIGN.md). Strings are the
// exact description fragments the UE emits in src/stack/ue.cc.
constexpr Rule kRules[] = {
    {"UE", "4G->3G switch (CSFB call)", AbstractKind::kCsfbFallback},
    {"UE", "4G->3G switch", AbstractKind::kSwitch4gTo3g},
    {"UE", "3G->4G switch", AbstractKind::kSwitch3gTo4g},
    {"3G-RRC", "inter-system cell reselection to 4G",
     AbstractKind::kCellReselection},
    {"3G-RRC", "awaiting RRC IDLE for inter-system cell reselection",
     AbstractKind::kAwaitReselection},
    {"SM", "PDP context deactivated", AbstractKind::kPdpDeactivated},
    {"SM", "Deactivate PDP Context Request sent",
     AbstractKind::kPdpDeactivated},
    {"UE", "user disables mobile data", AbstractKind::kUserDataOff},
    {"UE", "user enables mobile data", AbstractKind::kUserDataOn},
    // Congestion rejects must precede the generic reject rules: an
    // "Attach Reject received (cause: congestion)" is a backoff order, not
    // the S2-style detach trigger the models reason about.
    {"EMM", "Reject received (cause: congestion", AbstractKind::kCongestionReject},
    {"MM", "Reject received (cause: congestion", AbstractKind::kCongestionReject},
    {"GMM", "Reject received (cause: congestion", AbstractKind::kCongestionReject},
    {"EMM", "T3346 armed", AbstractKind::kCongestionBackoff},
    {"MM", "T3346 armed", AbstractKind::kCongestionBackoff},
    {"GMM", "T3346 armed", AbstractKind::kCongestionBackoff},
    {"SM", "SM backoff armed", AbstractKind::kCongestionBackoff},
    // Core-side overload and adversarial screening events.
    {"EMM", "Overload reject:", AbstractKind::kOverloadReject},
    {"MM", "Overload reject:", AbstractKind::kOverloadReject},
    {"GMM", "Overload reject:", AbstractKind::kOverloadReject},
    {"EMM", "Overload shed:", AbstractKind::kOverloadReject},
    {"MM", "Overload shed:", AbstractKind::kOverloadReject},
    {"GMM", "Overload shed:", AbstractKind::kOverloadReject},
    {"EMM", "Rejected malformed", AbstractKind::kAdversarialRejected},
    {"EMM", "Rejected truncated", AbstractKind::kAdversarialRejected},
    {"EMM", "Rejected wrong protocol", AbstractKind::kAdversarialRejected},
    {"MM", "Rejected malformed", AbstractKind::kAdversarialRejected},
    {"MM", "Rejected truncated", AbstractKind::kAdversarialRejected},
    {"MM", "Rejected wrong protocol", AbstractKind::kAdversarialRejected},
    {"GMM", "Rejected malformed", AbstractKind::kAdversarialRejected},
    {"GMM", "Rejected truncated", AbstractKind::kAdversarialRejected},
    {"GMM", "Rejected wrong protocol", AbstractKind::kAdversarialRejected},
    {"EMM", "Dropped replayed", AbstractKind::kAdversarialRejected},
    {"MM", "Dropped replayed", AbstractKind::kAdversarialRejected},
    {"GMM", "Dropped replayed", AbstractKind::kAdversarialRejected},
    {"STORM", "begins", AbstractKind::kStormBegins},
    // Module "EMM" keeps these from matching the 3G "GPRS Attach ..."
    // records, which belong to GMM.
    {"EMM", "Attach Request", AbstractKind::kAttachRequest},
    {"EMM", "Attach Accept received", AbstractKind::kAttachAccept},
    {"EMM", "Attach Complete sent", AbstractKind::kAttachComplete},
    {"EMM", "Attach Reject received", AbstractKind::kAttachReject},
    {"EMM", "Tracking Area Update Request sent", AbstractKind::kTauRequest},
    {"EMM", "Tracking Area Update Reject received", AbstractKind::kTauReject},
    {"EMM", "detached by network via", AbstractKind::kNetworkDetach},
    {"EMM", "service recovered", AbstractKind::kServiceRecovered},
    {"UE", "data session starts", AbstractKind::kDataSessionStart},
    {"UE", "data session ends", AbstractKind::kDataSessionStop},
    {"CM/CC", "user dials an outgoing call", AbstractKind::kCallDialed},
    // A dial from 4G surfaces as the CSFB extended service request.
    {"EMM", "Extended Service Request (CSFB) sent", AbstractKind::kCallDialed},
    {"MM", "CM Service Request sent", AbstractKind::kCmServiceRequest},
    {"MM", "CM service request deferred", AbstractKind::kCallDeferred},
    {"CM/CC", "a call is established", AbstractKind::kCallEstablished},
    {"CM/CC", "Disconnect sent (call ends)", AbstractKind::kCallEnded},
    {"MM", "Location Updating Request sent",
     AbstractKind::kLocationUpdateStart},
    {"MM", "MM-WAIT-FOR-NET-CMD", AbstractKind::kMmWaitNetCmd},
    // Location-update coupling and shared-channel vocabulary for the online
    // S5/S6 monitors (src/rtv). These sit after the core rules so the
    // established first-match semantics above are untouched.
    {"MM", "location update deferred until the CSFB call completes",
     AbstractKind::kLuDeferred},
    {"MM", "location update disrupted by inter-system switch",
     AbstractKind::kLuDisrupted},
    {"3G-RRC", "64QAM disabled during CS voice call",
     AbstractKind::kChannelDegraded},
    {"3G-RRC", "64QAM re-enabled after voice call",
     AbstractKind::kChannelRestored},
};

// The rules grouped by module, preserving table order within each group.
// Matching a record then costs one module lookup plus a scan of only that
// module's needles — the hot path of the runtime-verification gateway,
// which matches every record of a live stream instead of whole traces.
class RuleIndex {
 public:
  RuleIndex() {
    for (const Rule& rule : kRules) {
      auto it = std::find_if(groups_.begin(), groups_.end(),
                             [&](const Group& g) {
                               return g.module == rule.module;
                             });
      if (it == groups_.end()) {
        groups_.push_back({rule.module, {}});
        it = groups_.end() - 1;
      }
      it->rules.push_back(&rule);
    }
  }

  std::optional<AbstractKind> Match(const trace::TraceRecord& r) const {
    for (const Group& g : groups_) {
      if (r.module != g.module) continue;
      const std::string_view desc(r.description);
      for (const Rule* rule : g.rules) {
        if (desc.find(rule->needle) != std::string_view::npos) {
          return rule->kind;
        }
      }
      return std::nullopt;  // modules are unique across groups
    }
    return std::nullopt;
  }

 private:
  struct Group {
    std::string_view module;
    std::vector<const Rule*> rules;
  };
  std::vector<Group> groups_;
};

const RuleIndex& Index() {
  static const RuleIndex index;
  return index;
}

}  // namespace

std::optional<AbstractKind> MatchAbstractKind(const trace::TraceRecord& r) {
  return Index().Match(r);
}

std::vector<AbstractEvent> AbstractTrace(
    const std::vector<trace::TraceRecord>& records) {
  std::vector<AbstractEvent> out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (const auto kind = MatchAbstractKind(records[i])) {
      out.push_back({*kind, records[i].time, i});
    }
  }
  return out;
}

RefinementCheck CheckRefinement(const std::vector<AbstractEvent>& concrete,
                                const std::vector<AbstractKind>& expected) {
  RefinementCheck check;
  std::size_t pos = 0;
  for (std::size_t e = 0; e < expected.size(); ++e) {
    bool found = false;
    while (pos < concrete.size()) {
      if (concrete[pos].kind == expected[e]) {
        found = true;
        ++pos;
        break;
      }
      ++pos;
    }
    if (!found) {
      if (check.missing.empty()) check.failed_index = e;
      check.missing.push_back(expected[e]);
    }
  }
  check.refines = check.missing.empty();
  return check;
}

}  // namespace cnv::conf
