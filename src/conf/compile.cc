#include "conf/compile.h"

#include <optional>

namespace cnv::conf {

namespace {

using model::S1Model;
using model::S2Model;
using model::S3Model;
using model::S4Model;

// Actions carry no operator==; compare the fields their kind makes
// meaningful, so a stitched trace with e.g. the wrong deactivation cause is
// rejected.
bool SameAction(const S1Model::Action& a, const S1Model::Action& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case S1Model::Kind::kSwitchTo3G:
      return a.reason == b.reason;
    case S1Model::Kind::kDeactivatePdp:
      return a.cause == b.cause;
    default:
      return true;
  }
}
bool SameAction(const S2Model::Action& a, const S2Model::Action& b) {
  return a.kind == b.kind;
}
bool SameAction(const S3Model::Action& a, const S3Model::Action& b) {
  if (a.kind != b.kind) return false;
  return a.kind != S3Model::Kind::kStartData || a.rate == b.rate;
}
bool SameAction(const S4Model::Action& a, const S4Model::Action& b) {
  return a.kind == b.kind;
}

template <typename M>
mck::PropertySet<typename M::State> PropsOf(const M& m) {
  if constexpr (requires { M::Properties(); }) {
    (void)m;
    return M::Properties();
  } else {
    return m.Properties();
  }
}

// Replays the counterexample through the model: every action must be
// enabled where it appears, and the final state must actually violate the
// claimed property. Returns the final state, or nullopt with `error` set.
template <typename M>
std::optional<typename M::State> ValidateTrace(const M& m,
                                               const mck::Violation<M>& v,
                                               std::string* error) {
  auto s = m.initial();
  std::size_t step = 1;
  for (const auto& a : v.trace) {
    bool enabled = false;
    for (const auto& e : m.enabled(s)) {
      if (SameAction(e, a)) {
        enabled = true;
        break;
      }
    }
    if (!enabled) {
      *error = "step " + std::to_string(step) +
               " is not enabled in the model at its position: " +
               m.describe(a);
      return std::nullopt;
    }
    s = m.apply(s, a);
    ++step;
  }
  for (const auto& p : PropsOf(m)) {
    if (p.name != v.property) continue;
    if (p.holds(s)) {
      *error = "trace does not end in a state violating " + v.property +
               " (truncated counterexample?)";
      return std::nullopt;
    }
    return s;
  }
  *error = "model has no property named " + v.property;
  return std::nullopt;
}

ScriptStep Run(std::int64_t millis) {
  ScriptStep s;
  s.op = Op::kRun;
  s.millis = millis;
  return s;
}

ScriptStep Simple(Op op) {
  ScriptStep s;
  s.op = op;
  return s;
}

}  // namespace

CompileResult CompileS1(const S1Model& m, const mck::Violation<S1Model>& v) {
  CompileResult res;
  if (!ValidateTrace(m, v, &res.error)) return res;

  ScenarioScript& sc = res.script;
  sc.scenario = Scenario::kS1;
  sc.source = mck::FormatTrace(m, v);
  sc.steps.push_back(Simple(Op::kPowerOn4g));
  sc.steps.push_back(Simple(Op::kAwaitAttach4g));

  auto st = m.initial();
  for (const auto& a : v.trace) {
    const auto next = m.apply(st, a);
    switch (a.kind) {
      case S1Model::Kind::kSwitchTo3G: {
        ScriptStep s;
        s.op = Op::kSwitchTo3g;
        s.reason = a.reason;
        sc.steps.push_back(s);
        // Let the LAU / GPRS attach and context migration settle.
        sc.steps.push_back(Run(10'000));
        sc.expected.push_back(a.reason == model::SwitchReason::kCsfbCall
                                  ? AbstractKind::kCsfbFallback
                                  : AbstractKind::kSwitch4gTo3g);
        break;
      }
      case S1Model::Kind::kDeactivatePdp: {
        ScriptStep s;
        s.op = Op::kDeactivatePdp;
        s.cause = a.cause;
        sc.steps.push_back(s);
        sc.steps.push_back(Run(1'000));
        sc.expected.push_back(AbstractKind::kPdpDeactivated);
        break;
      }
      case S1Model::Kind::kUserDataOff:
        sc.steps.push_back(Simple(Op::kDataOff));
        sc.steps.push_back(Run(1'000));
        sc.expected.push_back(AbstractKind::kUserDataOff);
        if (st.serving == S1Model::Sys::k3G && st.pdp_active) {
          sc.expected.push_back(AbstractKind::kPdpDeactivated);
        }
        break;
      case S1Model::Kind::kUserDataOn:
        sc.steps.push_back(Simple(Op::kDataOn));
        sc.steps.push_back(Run(1'000));
        sc.expected.push_back(AbstractKind::kUserDataOn);
        break;
      case S1Model::Kind::kSwitchTo4G:
        sc.steps.push_back(Simple(Op::kSwitchTo4g));
        sc.expected.push_back(AbstractKind::kSwitch3gTo4g);
        if (next.out_of_service) {
          // The TAU is rejected for the missing EPS bearer context and the
          // device is detached (the S1 defect).
          sc.steps.push_back(Run(5'000));
          sc.expected.push_back(AbstractKind::kNetworkDetach);
        } else {
          sc.steps.push_back(Run(2'000));
        }
        break;
      case S1Model::Kind::kReattach:
        // Recovery is operator-paced in the testbed (Figure 4); give the
        // re-attach delay room to elapse.
        sc.steps.push_back(Run(150'000));
        sc.expected.push_back(AbstractKind::kServiceRecovered);
        break;
    }
    st = next;
  }
  res.ok = true;
  return res;
}

CompileResult CompileS2(const S2Model& m, const mck::Violation<S2Model>& v) {
  CompileResult res;
  if (!ValidateTrace(m, v, &res.error)) return res;

  // Classify the counterexample into the two Figure 5 failure shapes by
  // tracking what each loss/defer action hit in flight.
  bool defer_used = false;
  bool lose_complete = false;
  bool tau = false;
  bool stale_reject = false;
  auto st = m.initial();
  for (const auto& a : v.trace) {
    switch (a.kind) {
      case S2Model::Kind::kDeferUplink:
        defer_used = true;
        break;
      case S2Model::Kind::kLoseUplink:
        if (st.uplink == S2Model::Msg::kAttachComplete) lose_complete = true;
        break;
      case S2Model::Kind::kUeTriggerTau:
        tau = true;
        break;
      case S2Model::Kind::kMmeRejectStaleAttach:
        stale_reject = true;
        break;
      default:
        break;
    }
    st = m.apply(st, a);
  }

  ScenarioScript& sc = res.script;
  sc.scenario = Scenario::kS2;
  sc.source = mck::FormatTrace(m, v);

  if (defer_used) {
    // Figure 5(b): a loaded BS defers the Attach Request; the UE
    // retransmits and completes; the stale copy then reaches the MME.
    ScriptStep policy = Simple(Op::kDuplicateAttachRejects);
    policy.flag = stale_reject;
    sc.steps.push_back(policy);
    ScriptStep defer = Simple(Op::kDeferNextUplink4g);
    defer.millis = 16'000;  // past the T3410 retransmission
    sc.steps.push_back(defer);
    sc.steps.push_back(Simple(Op::kPowerOn4g));
    sc.steps.push_back(Run(30'000));
    sc.expected = {AbstractKind::kAttachRequest, AbstractKind::kAttachAccept,
                   AbstractKind::kAttachComplete};
    if (stale_reject) {
      sc.expected.push_back(AbstractKind::kAttachReject);
      sc.expected.push_back(AbstractKind::kNetworkDetach);
    }
  } else if (lose_complete && tau) {
    // Figure 5(a): the Attach Complete is lost over the air; the next TAU
    // hits an MME that believes the attach never finished.
    sc.steps.push_back(Simple(Op::kPowerOn4g));
    // The Attach Request is already in flight; arm the drop for the next
    // uplink packet — the Attach Complete.
    ScriptStep drop = Simple(Op::kDropNextUplink4g);
    drop.count = 1;
    sc.steps.push_back(drop);
    sc.steps.push_back(Run(2'000));
    sc.steps.push_back(Simple(Op::kCrossAreaBoundary));
    sc.steps.push_back(Run(10'000));
    sc.expected = {AbstractKind::kAttachRequest, AbstractKind::kAttachAccept,
                   AbstractKind::kAttachComplete, AbstractKind::kTauRequest,
                   AbstractKind::kNetworkDetach};
  } else {
    res.error =
        "unsupported S2 counterexample shape (neither a deferred-duplicate "
        "nor a lost-Attach-Complete trace)";
    return res;
  }
  res.ok = true;
  return res;
}

CompileResult CompileS3(const S3Model& m, const mck::Violation<S3Model>& v) {
  CompileResult res;
  const auto final_state = ValidateTrace(m, v, &res.error);
  if (!final_state) return res;

  ScenarioScript& sc = res.script;
  sc.scenario = Scenario::kS3;
  sc.source = mck::FormatTrace(m, v);
  // The stuck-in-3G state only exists under the cell-reselection return
  // policy; replaying on a release-with-redirect carrier is a category
  // error the runner reports as a carrier mismatch.
  sc.required_policy = m.config().policy;
  sc.steps.push_back(Simple(Op::kPowerOn4g));
  sc.steps.push_back(Simple(Op::kAwaitAttach4g));

  auto st = m.initial();
  for (const auto& a : v.trace) {
    const auto next = m.apply(st, a);
    switch (a.kind) {
      case S3Model::Kind::kStartData: {
        ScriptStep s = Simple(Op::kStartData);
        // Below the DCH demand threshold a session holds FACH; at or above
        // it the session pins DCH — both block the RRC IDLE the
        // reselection needs.
        s.demand_mbps = a.rate == model::DataRate::kHigh ? 1.0 : 0.10;
        sc.steps.push_back(s);
        sc.steps.push_back(Run(500));
        sc.expected.push_back(AbstractKind::kDataSessionStart);
        break;
      }
      case S3Model::Kind::kStopData:
        sc.steps.push_back(Simple(Op::kStopData));
        sc.steps.push_back(Run(500));
        sc.expected.push_back(AbstractKind::kDataSessionStop);
        break;
      case S3Model::Kind::kMakeCsfbCall:
        sc.steps.push_back(Simple(Op::kDial));
        sc.steps.push_back(Simple(Op::kAwaitCallActive));
        sc.steps.push_back(Run(5'000));
        sc.expected.push_back(AbstractKind::kCallDialed);
        sc.expected.push_back(AbstractKind::kCsfbFallback);
        sc.expected.push_back(AbstractKind::kCallEstablished);
        break;
      case S3Model::Kind::kEndCall:
        sc.steps.push_back(Simple(Op::kHangUp));
        sc.steps.push_back(Run(2'000));
        sc.expected.push_back(AbstractKind::kCallEnded);
        if (m.StuckIn3g(next)) {
          sc.expected.push_back(AbstractKind::kAwaitReselection);
        }
        break;
      case S3Model::Kind::kRrcDemote:
        // Inactivity demotions are timer-driven in the stack.
        sc.steps.push_back(Run(15'000));
        break;
      case S3Model::Kind::kSwitchBackTo4g:
        sc.steps.push_back(Run(5'000));
        if (m.config().policy == model::SwitchPolicy::kCellReselection) {
          sc.expected.push_back(AbstractKind::kCellReselection);
        }
        break;
    }
    st = next;
  }
  // Hold long past the 10 s stuck threshold: a stranded device stays
  // stranded; a healthy one returns to 4G well within this window.
  sc.steps.push_back(Run(120'000));
  res.ok = true;
  return res;
}

CompileResult CompileS4(const S4Model& m, const mck::Violation<S4Model>& v) {
  CompileResult res;
  if (!ValidateTrace(m, v, &res.error)) return res;

  ScenarioScript& sc = res.script;
  sc.scenario = Scenario::kS4;
  sc.source = mck::FormatTrace(m, v);
  sc.steps.push_back(Simple(Op::kPowerOn3g));
  // Complete the initial CS + PS registrations before the scripted updates.
  sc.steps.push_back(Run(15'000));

  for (const auto& a : v.trace) {
    switch (a.kind) {
      case S4Model::Kind::kTriggerLu:
      case S4Model::Kind::kTriggerRau:
        // Crossing a location/routing area boundary triggers the update(s);
        // the deferral window is open while the update runs, so the next
        // scripted action lands inside it.
        sc.steps.push_back(Simple(Op::kCrossAreaBoundary));
        sc.steps.push_back(Run(200));
        if (a.kind == S4Model::Kind::kTriggerLu) {
          sc.expected.push_back(AbstractKind::kLocationUpdateStart);
        }
        break;
      case S4Model::Kind::kLuComplete:
        sc.steps.push_back(Run(8'000));
        sc.expected.push_back(AbstractKind::kMmWaitNetCmd);
        break;
      case S4Model::Kind::kNetCmdDone:
      case S4Model::Kind::kRauComplete:
        sc.steps.push_back(Run(8'000));
        break;
      case S4Model::Kind::kUserDialsCall:
        sc.steps.push_back(Simple(Op::kDial));
        sc.expected.push_back(AbstractKind::kCallDialed);
        break;
      case S4Model::Kind::kDeferCall:
        // The deferral happens synchronously inside the dial; nothing more
        // to drive.
        sc.steps.push_back(Run(100));
        sc.expected.push_back(AbstractKind::kCallDeferred);
        break;
      case S4Model::Kind::kRejectCall:
        res.error =
            "unsupported S4 counterexample shape: the testbed's MM defers "
            "CM service requests rather than rejecting them";
        res.ok = false;
        return res;
      case S4Model::Kind::kServeCall:
        sc.steps.push_back(Simple(Op::kAwaitCallActive));
        sc.expected.push_back(AbstractKind::kCmServiceRequest);
        sc.expected.push_back(AbstractKind::kCallEstablished);
        break;
      case S4Model::Kind::kUserStartsData: {
        ScriptStep s = Simple(Op::kStartData);
        s.demand_mbps = 1.0;
        sc.steps.push_back(s);
        sc.expected.push_back(AbstractKind::kDataSessionStart);
        break;
      }
      case S4Model::Kind::kServeData:
      case S4Model::Kind::kDeferData:
        sc.steps.push_back(Run(500));
        break;
    }
  }
  sc.steps.push_back(Run(2'000));
  res.ok = true;
  return res;
}

}  // namespace cnv::conf
