#include "nas/ids.h"

#include "util/strings.h"

namespace cnv::nas {

std::string ToString(System s) {
  switch (s) {
    case System::kNone:
      return "none";
    case System::k3G:
      return "3G";
    case System::k4G:
      return "4G";
  }
  return "?";
}

std::string ToString(const Lai& lai) {
  return Format("LAI(%u,%u)", lai.plmn.id, lai.lac);
}

std::string ToString(const Rai& rai) {
  return Format("RAI(%u,%u,%u)", rai.lai.plmn.id, rai.lai.lac, rai.rac);
}

std::string ToString(const Tai& tai) {
  return Format("TAI(%u,%u)", tai.plmn.id, tai.tac);
}

std::string ToString(const CellId& cell) {
  return Format("%s-cell-%u", ToString(cell.system).c_str(), cell.id);
}

std::string ToString(const Imsi& imsi) {
  return Format("IMSI%llu", static_cast<unsigned long long>(imsi.value));
}

std::size_t HashValue(const Imsi& imsi) {
  return mck::Hasher().Mix(static_cast<std::uint64_t>(imsi.value)).Digest();
}

}  // namespace cnv::nas
