// Control-plane message vocabulary shared by the validation stack. One
// message struct covers all protocols (Table 2); the `kind` selects the
// procedure and `protocol` the generating layer, mirroring how the paper's
// traces tag each item with its module.
#pragma once

#include <cstdint>
#include <string>

#include "nas/causes.h"
#include "nas/context.h"
#include "nas/ids.h"
#include "util/time.h"

namespace cnv::nas {

// The protocol (module) that generates or consumes a message (Table 2).
enum class Protocol : std::uint8_t {
  kCm,     // 3G CS connectivity management (CM/CC)
  kSm,     // 3G PS session management
  kEsm,    // 4G session management
  kMm,     // 3G CS mobility management
  kGmm,    // 3G PS mobility management
  kEmm,    // 4G mobility management
  kRrc3g,  // 3G radio resource control
  kRrc4g,  // 4G radio resource control
};

std::string ToString(Protocol p);

enum class MsgKind : std::uint8_t {
  // --- 4G EMM (TS 24.301)
  kAttachRequest,
  kAttachAccept,
  kAttachComplete,
  kAttachReject,
  kTauRequest,
  kTauAccept,
  kTauReject,
  kDetachRequest,   // network- or UE-originated detach
  kDetachAccept,
  kServiceRequest,        // 4G service request (idle -> connected)
  kExtendedServiceRequest,  // CSFB trigger (TS 23.272)

  // --- 4G ESM
  kEsmActivateBearerRequest,
  kEsmActivateBearerAccept,
  kEsmDeactivateBearerRequest,

  // --- 3G MM (TS 24.008, CS domain)
  kLocationUpdateRequest,
  kLocationUpdateAccept,
  kLocationUpdateReject,
  kCmServiceRequest,
  kCmServiceAccept,
  kCmServiceReject,
  kImsiDetach,

  // --- 3G CC (call control)
  kCallSetup,
  kCallConnect,
  kCallDisconnect,
  kPagingRequest,
  kPagingResponse,

  // --- 3G GMM (PS domain)
  kGprsAttachRequest,
  kGprsAttachAccept,
  kGprsAttachReject,
  kRauRequest,
  kRauAccept,
  kRauReject,

  // --- 3G SM
  kPdpActivateRequest,
  kPdpActivateAccept,
  kPdpActivateReject,
  kPdpDeactivateRequest,  // carries a PdpDeactCause
  kPdpDeactivateAccept,

  // --- RRC (both systems)
  kRrcConnectionRequest,
  kRrcConnectionSetup,
  kRrcConnectionSetupComplete,
  kRrcConnectionRelease,              // plain release
  kRrcConnectionReleaseWithRedirect,  // inter-system switch option 1 (§5.3)
  kRrcHandoverCommand,                // inter-system switch option 2
  kRrcMeasurementReport,
  kRrcChannelConfig,  // modulation / channel assignment (Figure 10)

  // --- Core-network internal (MME <-> MSC/SGSN/HSS)
  kContextTransferRequest,  // EPS bearer <-> PDP context migration
  kContextTransferAck,
  kSgsLocationUpdateRequest,  // MME relays LU to the MSC over SGs (§6.3)
  kSgsLocationUpdateAccept,
  kSgsLocationUpdateReject,
  kHssUpdateLocation,
  kHssUpdateLocationAck,
};

std::string ToString(MsgKind k);

// Wire-level integrity of a message as seen by the receiver. Normal traffic
// is kOk; adversarial-UE storm generators inject the other values and the
// core must reject them without state corruption (correct cause, no crash).
enum class MsgIntegrity : std::uint8_t {
  kOk = 0,
  kMalformed,      // semantically incorrect contents (bit flips)
  kTruncated,      // mandatory IEs missing
  kWrongProtocol,  // protocol discriminator does not match the kind
};

std::string ToString(MsgIntegrity i);

// One control-plane message. Unused fields stay default-initialized; this is
// a modeling simplification (P.11: keep the mess in one place) that avoids a
// 40-type variant while staying cheap to copy.
struct Message {
  MsgKind kind = MsgKind::kAttachRequest;
  Protocol protocol = Protocol::kEmm;
  Imsi imsi;

  // Causes (reject / deactivate paths).
  EmmCause emm_cause = EmmCause::kNone;
  MmCause mm_cause = MmCause::kNone;
  PdpDeactCause pdp_cause = PdpDeactCause::kRegularDeactivation;

  // Location identifiers.
  Lai lai;
  Rai rai;
  Tai tai;
  CellId target_cell;  // for redirects / handover commands

  // Session payloads.
  PdpContext pdp;
  EpsBearerContext eps;

  // Radio configuration (kRrcChannelConfig).
  bool use_64qam = true;
  bool dedicated_cs_channel = false;  // solution: domain decoupling (§8)

  // Sequencing for the reliable shim layer (§8, layer extension).
  std::uint32_t seq = 0;
  bool is_shim_ack = false;

  // Monotone id for duplicate detection in experiments. Normal stack traffic
  // leaves it 0; storm generators stamp it so replayed duplicates are
  // detectable by the core's replay cache.
  std::uint64_t uid = 0;

  // Wire integrity (adversarial-UE injection); kOk for all normal traffic.
  MsgIntegrity integrity = MsgIntegrity::kOk;

  // Synthetic background load from a storm generator: occupies core
  // signalling capacity but expects no reply delivered over a link.
  bool synthetic = false;

  // T3346-style backoff the network grants with a congestion reject
  // (zero = none). The UE must not retry the procedure before it expires.
  SimDuration backoff{0};

  std::string Describe() const;
};

}  // namespace cnv::nas
