#include "nas/causes.h"

namespace cnv::nas {

const std::vector<PdpDeactCauseInfo>& AllPdpDeactCauses() {
  static const std::vector<PdpDeactCauseInfo> kCauses = {
      {PdpDeactCause::kInsufficientResources, CauseOriginator::kUserDevice,
       /*avoidable=*/false, "Insufficient resources"},
      {PdpDeactCause::kQosNotAccepted, CauseOriginator::kUserDevice,
       /*avoidable=*/true, "QoS not accepted"},
      {PdpDeactCause::kLowLayerFailure, CauseOriginator::kEither,
       /*avoidable=*/false, "Low layer failures"},
      {PdpDeactCause::kRegularDeactivation, CauseOriginator::kEither,
       /*avoidable=*/true, "Regular deactivation"},
      {PdpDeactCause::kIncompatiblePdpContext, CauseOriginator::kNetwork,
       /*avoidable=*/true, "Incompatible PDP context"},
      {PdpDeactCause::kOperatorDeterminedBarring, CauseOriginator::kNetwork,
       /*avoidable=*/false, "Operator determined barring"},
  };
  return kCauses;
}

std::string ToString(EmmCause c) {
  switch (c) {
    case EmmCause::kNone:
      return "none";
    case EmmCause::kImplicitlyDetached:
      return "implicitly detached";
    case EmmCause::kNoEpsBearerContextActive:
      return "no EPS bearer context activated";
    case EmmCause::kMscTemporarilyNotReachable:
      return "MSC temporarily not reachable";
    case EmmCause::kIllegalUe:
      return "illegal UE";
    case EmmCause::kPlmnNotAllowed:
      return "PLMN not allowed";
    case EmmCause::kTrackingAreaNotAllowed:
      return "tracking area not allowed";
    case EmmCause::kCongestion:
      return "congestion";
    case EmmCause::kNetworkFailure:
      return "network failure";
    case EmmCause::kSemanticallyIncorrect:
      return "semantically incorrect message";
  }
  return "?";
}

std::string ToString(MmCause c) {
  switch (c) {
    case MmCause::kNone:
      return "none";
    case MmCause::kLocationAreaNotAllowed:
      return "location area not allowed";
    case MmCause::kNetworkFailure:
      return "network failure";
    case MmCause::kCongestion:
      return "congestion";
    case MmCause::kMscTemporarilyNotReachable:
      return "MSC temporarily not reachable";
    case MmCause::kUpdateDisrupted:
      return "location update disrupted";
    case MmCause::kSemanticallyIncorrect:
      return "semantically incorrect message";
  }
  return "?";
}

std::string ToString(PdpDeactCause c) {
  for (const auto& info : AllPdpDeactCauses()) {
    if (info.cause == c) return info.description;
  }
  return "?";
}

std::string ToString(CauseOriginator o) {
  switch (o) {
    case CauseOriginator::kUserDevice:
      return "User device";
    case CauseOriginator::kNetwork:
      return "Network";
    case CauseOriginator::kEither:
      return "User device/Network";
  }
  return "?";
}

}  // namespace cnv::nas
