// Cause codes carried in NAS reject / deactivation messages. The subsets
// modeled here are the ones the paper's findings hinge on: EMM causes behind
// the S1/S2/S6 detaches, the PDP-context deactivation causes of Table 3, and
// MM causes for location-update failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cnv::nas {

// EMM (4G mobility management, TS 24.301) causes.
enum class EmmCause : std::uint8_t {
  kNone = 0,
  kImplicitlyDetached,        // "implicitly detach" (S2, S6)
  kNoEpsBearerContextActive,  // "No EPS Bearer Context Activated" (S1)
  kMscTemporarilyNotReachable,  // relayed 3G failure (S6, OP-II)
  kIllegalUe,
  kPlmnNotAllowed,
  kTrackingAreaNotAllowed,
  kCongestion,
  kNetworkFailure,
  kSemanticallyIncorrect,  // malformed / truncated NAS rejected by the core
};

// MM (3G CS mobility management, TS 24.008) causes.
enum class MmCause : std::uint8_t {
  kNone = 0,
  kLocationAreaNotAllowed,
  kNetworkFailure,
  kCongestion,
  kMscTemporarilyNotReachable,
  kUpdateDisrupted,  // first CSFB LU cut short by the switch back to 4G
  kSemanticallyIncorrect,  // malformed / truncated NAS rejected by the core
};

// PDP context deactivation causes (Table 3) with their originator.
enum class PdpDeactCause : std::uint8_t {
  kInsufficientResources = 0,   // user device
  kQosNotAccepted,              // user device
  kLowLayerFailure,             // user device or network
  kRegularDeactivation,         // user device or network
  kIncompatiblePdpContext,      // network
  kOperatorDeterminedBarring,   // network
};

enum class CauseOriginator : std::uint8_t {
  kUserDevice,
  kNetwork,
  kEither,
};

struct PdpDeactCauseInfo {
  PdpDeactCause cause;
  CauseOriginator originator;
  // Whether the paper (§5.1.2) argues the context could have been kept or
  // merely modified instead of deleted.
  bool avoidable;
  std::string description;
};

// The full Table 3 rows, in paper order.
const std::vector<PdpDeactCauseInfo>& AllPdpDeactCauses();

std::string ToString(EmmCause c);
std::string ToString(MmCause c);
std::string ToString(PdpDeactCause c);
std::string ToString(CauseOriginator o);

}  // namespace cnv::nas
