// Session contexts: the 3G PDP context and the 4G EPS bearer context. These
// hold the state vital to data sessions (IP address, QoS) and are translated
// into each other at inter-system switches (§5.1.1). S1 arises precisely
// because the translation source can be missing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "nas/causes.h"

namespace cnv::nas {

// Simplified QoS profile. `max_bitrate_kbps` drives the simulator's
// admission decisions; `qci` stands in for the full 3GPP QoS class.
struct QosProfile {
  std::uint32_t max_bitrate_kbps = 10'000;
  std::uint8_t qci = 9;  // default (best-effort) bearer class
  auto operator<=>(const QosProfile&) const = default;
};

// A (simplified, single-PDN) 3G PDP context.
struct PdpContext {
  std::uint32_t ip_address = 0;  // assigned IPv4, network order abstracted
  QosProfile qos;
  bool active = false;
  auto operator<=>(const PdpContext&) const = default;
};

// A (simplified, default-bearer-only) 4G EPS bearer context.
struct EpsBearerContext {
  std::uint32_t ip_address = 0;
  QosProfile qos;
  std::uint8_t bearer_id = 5;  // first default bearer id per TS 24.301
  bool active = false;
  auto operator<=>(const EpsBearerContext&) const = default;
};

// Context translation performed by the gateways + MME/SGSN during
// inter-system switches. The IP address and QoS must survive the mapping so
// that data sessions continue seamlessly.
PdpContext ToPdpContext(const EpsBearerContext& eps);
std::optional<EpsBearerContext> ToEpsBearerContext(const PdpContext& pdp);

// §5.1.2: for some deactivation causes the PDP context could be retained
// (possibly modified) instead of deleted; returns the retained context if
// the cause is avoidable, std::nullopt if deactivation is compelled.
std::optional<PdpContext> RetainOnDeactivation(const PdpContext& pdp,
                                               PdpDeactCause cause);

std::string ToString(const PdpContext& pdp);
std::string ToString(const EpsBearerContext& eps);

}  // namespace cnv::nas
