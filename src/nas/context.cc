#include "nas/context.h"

#include <algorithm>

#include "util/strings.h"

namespace cnv::nas {

PdpContext ToPdpContext(const EpsBearerContext& eps) {
  PdpContext pdp;
  pdp.ip_address = eps.ip_address;
  pdp.qos = eps.qos;
  pdp.active = eps.active;
  return pdp;
}

std::optional<EpsBearerContext> ToEpsBearerContext(const PdpContext& pdp) {
  // 4G mandates an active context: with no active PDP context there is
  // nothing to translate, which is exactly the S1 failure condition.
  if (!pdp.active) return std::nullopt;
  EpsBearerContext eps;
  eps.ip_address = pdp.ip_address;
  eps.qos = pdp.qos;
  eps.active = true;
  return eps;
}

std::optional<PdpContext> RetainOnDeactivation(const PdpContext& pdp,
                                               PdpDeactCause cause) {
  switch (cause) {
    case PdpDeactCause::kQosNotAccepted: {
      // Keep the context with a downgraded QoS policy (§5.1.2).
      PdpContext kept = pdp;
      kept.qos.max_bitrate_kbps =
          std::max<std::uint32_t>(64, kept.qos.max_bitrate_kbps / 4);
      return kept;
    }
    case PdpDeactCause::kIncompatiblePdpContext: {
      // Modify (re-type) the context rather than deleting it.
      PdpContext kept = pdp;
      kept.qos.qci = 9;
      return kept;
    }
    case PdpDeactCause::kRegularDeactivation:
      // Keep until a pending switch to 4G succeeds.
      return pdp;
    case PdpDeactCause::kInsufficientResources:
    case PdpDeactCause::kLowLayerFailure:
    case PdpDeactCause::kOperatorDeterminedBarring:
      return std::nullopt;
  }
  return std::nullopt;
}

std::string ToString(const PdpContext& pdp) {
  return Format("PDP{ip=%u, %ukbps, qci=%u, %s}", pdp.ip_address,
                pdp.qos.max_bitrate_kbps, pdp.qos.qci,
                pdp.active ? "active" : "inactive");
}

std::string ToString(const EpsBearerContext& eps) {
  return Format("EPS{ip=%u, %ukbps, qci=%u, ebi=%u, %s}", eps.ip_address,
                eps.qos.max_bitrate_kbps, eps.qos.qci, eps.bearer_id,
                eps.active ? "active" : "inactive");
}

}  // namespace cnv::nas
