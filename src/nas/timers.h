// 3GPP protocol timer values used by the validation stack. Names follow the
// standards the paper cites (TS 24.301, TS 24.008, TS 25.331); values are the
// spec defaults scaled where noted to keep simulations short.
#pragma once

#include "util/time.h"

namespace cnv::nas::timers {

// --- EMM (TS 24.301)
inline constexpr SimDuration kT3410AttachGuard = Seconds(15);
inline constexpr SimDuration kT3411AttachRetry = Seconds(10);
inline constexpr SimDuration kT3402AttachBackoff = Minutes(12);
inline constexpr SimDuration kT3430TauGuard = Seconds(15);
inline constexpr int kMaxAttachAttempts = 5;

// --- MM / GMM / SM (TS 24.008)
inline constexpr SimDuration kT3210LuGuard = Seconds(20);
inline constexpr SimDuration kT3230CmGuard = Seconds(15);
inline constexpr SimDuration kT3330RauGuard = Seconds(15);
inline constexpr SimDuration kT3380PdpGuard = Seconds(30);
// Quick retransmissions a robust UE fires before falling back to
// exponential backoff (capped at kNasBackoffCap per cycle).
inline constexpr int kMaxNasQuickRetries = 3;
inline constexpr SimDuration kNasBackoffCap = Seconds(120);
// Congestion-control backoff (T3346, TS 24.301 §5.3.5 / TS 24.008 §4.1.1.7):
// after a reject with cause "congestion" the UE must not retry mobility
// management procedures until this timer expires. Networks may override the
// value per reject (Message::backoff); this is the default grant.
inline constexpr SimDuration kT3346CongestionBackoff = Seconds(20);
// Periodic updates. The spec default for T3212 is carrier-configured
// (tens of minutes); experiments override these per scenario.
inline constexpr SimDuration kT3212PeriodicLu = Minutes(30);
inline constexpr SimDuration kT3312PeriodicRau = Minutes(30);

// --- RRC (TS 25.331 / TS 36.331) inactivity demotions
inline constexpr SimDuration kRrc3gDchToFach = Seconds(5);
inline constexpr SimDuration kRrc3gFachToIdle = Seconds(12);
inline constexpr SimDuration kRrc4gConnectedToIdle = Seconds(10);

// Radio-leg one-way latencies (typical air-interface + backhaul figures).
inline constexpr SimDuration kRadioLegDelay = Millis(30);
inline constexpr SimDuration kCoreLegDelay = Millis(10);

}  // namespace cnv::nas::timers
