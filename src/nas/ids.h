// 3GPP identities used across the stack: PLMN, location/routing/tracking
// areas, cell and subscriber identities. These are the keys under which the
// network elements (MSC / SGSN / MME / HSS) store registration state.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "mck/hash.h"

namespace cnv::nas {

// Which radio system a cell or procedure belongs to (Figure 1).
enum class System : std::uint8_t { kNone, k3G, k4G };

std::string ToString(System s);

// Public Land Mobile Network: a carrier. The experiments use two, OP-I and
// OP-II, matching the paper's anonymized US operators.
struct Plmn {
  std::uint16_t id = 0;
  auto operator<=>(const Plmn&) const = default;
};

// Location Area (3G CS domain, managed by the MSC).
struct Lai {
  Plmn plmn;
  std::uint16_t lac = 0;
  auto operator<=>(const Lai&) const = default;
};

// Routing Area (3G PS domain, managed by the SGSN / 3G gateways).
struct Rai {
  Lai lai;
  std::uint8_t rac = 0;
  auto operator<=>(const Rai&) const = default;
};

// Tracking Area (4G, managed by the MME).
struct Tai {
  Plmn plmn;
  std::uint16_t tac = 0;
  auto operator<=>(const Tai&) const = default;
};

// A cell: one sector of one base station of one system.
struct CellId {
  System system = System::kNone;
  std::uint32_t id = 0;
  auto operator<=>(const CellId&) const = default;
};

// Subscriber identity (IMSI, abbreviated).
struct Imsi {
  std::uint64_t value = 0;
  auto operator<=>(const Imsi&) const = default;
};

std::string ToString(const Lai& lai);
std::string ToString(const Rai& rai);
std::string ToString(const Tai& tai);
std::string ToString(const CellId& cell);
std::string ToString(const Imsi& imsi);

std::size_t HashValue(const Imsi& imsi);

}  // namespace cnv::nas
