#include "nas/messages.h"

#include "util/strings.h"

namespace cnv::nas {

std::string ToString(Protocol p) {
  switch (p) {
    case Protocol::kCm:
      return "CM/CC";
    case Protocol::kSm:
      return "SM";
    case Protocol::kEsm:
      return "ESM";
    case Protocol::kMm:
      return "MM";
    case Protocol::kGmm:
      return "GMM";
    case Protocol::kEmm:
      return "EMM";
    case Protocol::kRrc3g:
      return "3G-RRC";
    case Protocol::kRrc4g:
      return "4G-RRC";
  }
  return "?";
}

std::string ToString(MsgKind k) {
  switch (k) {
    case MsgKind::kAttachRequest:
      return "Attach Request";
    case MsgKind::kAttachAccept:
      return "Attach Accept";
    case MsgKind::kAttachComplete:
      return "Attach Complete";
    case MsgKind::kAttachReject:
      return "Attach Reject";
    case MsgKind::kTauRequest:
      return "Tracking Area Update Request";
    case MsgKind::kTauAccept:
      return "Tracking Area Update Accept";
    case MsgKind::kTauReject:
      return "Tracking Area Update Reject";
    case MsgKind::kDetachRequest:
      return "Detach Request";
    case MsgKind::kDetachAccept:
      return "Detach Accept";
    case MsgKind::kServiceRequest:
      return "Service Request";
    case MsgKind::kExtendedServiceRequest:
      return "Extended Service Request (CSFB)";
    case MsgKind::kEsmActivateBearerRequest:
      return "Activate EPS Bearer Request";
    case MsgKind::kEsmActivateBearerAccept:
      return "Activate EPS Bearer Accept";
    case MsgKind::kEsmDeactivateBearerRequest:
      return "Deactivate EPS Bearer Request";
    case MsgKind::kLocationUpdateRequest:
      return "Location Updating Request";
    case MsgKind::kLocationUpdateAccept:
      return "Location Updating Accept";
    case MsgKind::kLocationUpdateReject:
      return "Location Updating Reject";
    case MsgKind::kCmServiceRequest:
      return "CM Service Request";
    case MsgKind::kCmServiceAccept:
      return "CM Service Accept";
    case MsgKind::kCmServiceReject:
      return "CM Service Reject";
    case MsgKind::kImsiDetach:
      return "IMSI Detach Indication";
    case MsgKind::kCallSetup:
      return "Setup";
    case MsgKind::kCallConnect:
      return "Connect";
    case MsgKind::kCallDisconnect:
      return "Disconnect";
    case MsgKind::kPagingRequest:
      return "Paging Request";
    case MsgKind::kPagingResponse:
      return "Paging Response";
    case MsgKind::kGprsAttachRequest:
      return "GPRS Attach Request";
    case MsgKind::kGprsAttachAccept:
      return "GPRS Attach Accept";
    case MsgKind::kGprsAttachReject:
      return "GPRS Attach Reject";
    case MsgKind::kRauRequest:
      return "Routing Area Update Request";
    case MsgKind::kRauAccept:
      return "Routing Area Update Accept";
    case MsgKind::kRauReject:
      return "Routing Area Update Reject";
    case MsgKind::kPdpActivateRequest:
      return "Activate PDP Context Request";
    case MsgKind::kPdpActivateAccept:
      return "Activate PDP Context Accept";
    case MsgKind::kPdpActivateReject:
      return "Activate PDP Context Reject";
    case MsgKind::kPdpDeactivateRequest:
      return "Deactivate PDP Context Request";
    case MsgKind::kPdpDeactivateAccept:
      return "Deactivate PDP Context Accept";
    case MsgKind::kRrcConnectionRequest:
      return "RRC Connection Request";
    case MsgKind::kRrcConnectionSetup:
      return "RRC Connection Setup";
    case MsgKind::kRrcConnectionSetupComplete:
      return "RRC Connection Setup Complete";
    case MsgKind::kRrcConnectionRelease:
      return "RRC Connection Release";
    case MsgKind::kRrcConnectionReleaseWithRedirect:
      return "RRC Connection Release (redirect)";
    case MsgKind::kRrcHandoverCommand:
      return "RRC Handover Command";
    case MsgKind::kRrcMeasurementReport:
      return "RRC Measurement Report";
    case MsgKind::kRrcChannelConfig:
      return "RRC Channel Config";
    case MsgKind::kContextTransferRequest:
      return "Context Transfer Request";
    case MsgKind::kContextTransferAck:
      return "Context Transfer Ack";
    case MsgKind::kSgsLocationUpdateRequest:
      return "SGs Location Update Request";
    case MsgKind::kSgsLocationUpdateAccept:
      return "SGs Location Update Accept";
    case MsgKind::kSgsLocationUpdateReject:
      return "SGs Location Update Reject";
    case MsgKind::kHssUpdateLocation:
      return "HSS Update Location";
    case MsgKind::kHssUpdateLocationAck:
      return "HSS Update Location Ack";
  }
  return "?";
}

std::string ToString(MsgIntegrity i) {
  switch (i) {
    case MsgIntegrity::kOk:
      return "ok";
    case MsgIntegrity::kMalformed:
      return "malformed";
    case MsgIntegrity::kTruncated:
      return "truncated";
    case MsgIntegrity::kWrongProtocol:
      return "wrong protocol";
  }
  return "?";
}

std::string Message::Describe() const {
  std::string out = ToString(protocol) + ": " + ToString(kind);
  if (emm_cause != EmmCause::kNone) {
    out += " (cause: " + ToString(emm_cause) + ")";
  }
  if (mm_cause != MmCause::kNone) {
    out += " (cause: " + ToString(mm_cause) + ")";
  }
  if (kind == MsgKind::kPdpDeactivateRequest) {
    out += " (cause: " + ToString(pdp_cause) + ")";
  }
  if (kind == MsgKind::kRrcChannelConfig) {
    out += use_64qam ? " [64QAM enabled]" : " [64QAM disabled, 16QAM]";
    if (dedicated_cs_channel) out += " [dedicated CS channel]";
  }
  return out;
}

}  // namespace cnv::nas
