// S3 screening model — inconsistent cross-domain / cross-system RRC state
// transition (§5.3). A 4G user makes a CSFB call (falling back to 3G) while
// carrying a data session. When the call ends the device should return to
// 4G, but the RRC state is shared by the CS and PS domains: ongoing PS data
// keeps RRC at FACH/DCH, and if the carrier's switch-back option is
// "inter-system cell reselection" (which requires RRC IDLE) the device is
// stuck in 3G — the MM_OK property is violated.
//
// The carrier policy (Figure 6a) is a config knob, as are the data-session
// intensity and the §8 remedy (`fix_csfb_tag`: the BS tags the RRC
// connection as CSFB-induced and forces a proper state for switching back
// when the call ends).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mck/hash.h"
#include "mck/property.h"
#include "mck/reduction.h"
#include "model/vocab.h"

namespace cnv::model {

struct S3Model {
  struct Config {
    SwitchPolicy policy = SwitchPolicy::kCellReselection;
    // Which data intensities the environment may start (paper: prior work
    // covered low-rate; this paper adds high-rate).
    bool allow_low_rate = true;
    bool allow_high_rate = true;
    bool fix_csfb_tag = false;
  };

  S3Model() = default;
  explicit S3Model(Config config) : config_(config) {}

  enum class Sys : std::uint8_t { k3G, k4G };
  enum class Call : std::uint8_t { kNone, kActive, kEnded };

  struct State {
    Sys serving = Sys::k4G;
    Rrc3g rrc3g = Rrc3g::kIdle;
    Rrc4g rrc4g = Rrc4g::kConnected;
    Call call = Call::kNone;
    DataRate data = DataRate::kNone;
    bool pdp_active = false;       // PS session continues in 3G during CSFB
    bool data_disrupted = false;   // release-with-redirect side effect
    std::uint8_t calls = 0;        // bound on environment call loop

    bool operator==(const State&) const = default;
  };

  enum class Kind : std::uint8_t {
    kStartData,       // carries a DataRate
    kStopData,
    kMakeCsfbCall,    // 4G -> 3G fallback; RRC goes to DCH
    kEndCall,
    kRrcDemote,       // inactivity: DCH -> FACH -> IDLE (only without data)
    kSwitchBackTo4g,  // per-policy attempt to return to 4G
  };

  struct Action {
    Kind kind = Kind::kMakeCsfbCall;
    DataRate rate = DataRate::kNone;
  };

  State initial() const { return State{}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  // MM_OK (§3.2.2): an inter-system switch request must be served when both
  // systems are available. After a CSFB call ends the device must not be
  // stranded in 3G with no enabled path back to 4G.
  mck::PropertySet<State> Properties() const;

  // Trivial reduction spec: a single-UE slice has no second component to
  // commute against and no symmetry orbit, so enabling --por/--symmetry on
  // a screening sweep is a sound no-op here (identical results).
  mck::ReductionSpec<S3Model> reduction() const;

  // True when the post-call switch back to 4G cannot proceed in `s`.
  bool StuckIn3g(const State& s) const;

  const Config& config() const { return config_; }

 private:
  Config config_{};
};

std::size_t HashValue(const S3Model::State& s);

}  // namespace cnv::model
