// S1 screening model — unprotected shared context across 3G/4G (§5.1).
//
// Models the SM/GMM (3G) and ESM/EMM (4G) interaction around inter-system
// switches: the EPS bearer context and the PDP context are translations of
// each other, 4G mandates an active context while 3G does not, and 3G may
// deactivate the PDP context for any of the Table 3 causes. The property
// PacketService_OK is violated when the device ends up deregistered
// ("out of service") without the user ever asking to detach.
//
// Solution knobs (§8, cross-system coordination):
//  * `fix_keep_context`      — retain/modify the PDP context for avoidable
//                              deactivation causes instead of deleting it;
//  * `fix_reactivate_bearer` — on 3G->4G switch with no PDP context, stay
//                              registered and activate a fresh EPS bearer
//                              instead of detaching.
// With both fixes the model is violation-free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mck/hash.h"
#include "mck/property.h"
#include "mck/reduction.h"
#include "model/vocab.h"
#include "nas/causes.h"

namespace cnv::model {

struct S1Model {
  struct Config {
    bool fix_keep_context = false;
    bool fix_reactivate_bearer = false;
    // Whether the user may toggle mobile data off (the WiFi-switch variant
    // the paper observed on HTC One / LG Optimus G).
    bool allow_user_data_toggle = true;
  };

  S1Model() = default;
  explicit S1Model(Config config) : config_(config) {}

  enum class Sys : std::uint8_t { k3G, k4G };

  struct State {
    Sys serving = Sys::k4G;
    bool emm_registered = true;   // 4G registration
    bool gmm_registered = false;  // 3G PS registration
    bool eps_active = true;       // EPS bearer context (UE + MME + gateways)
    bool pdp_active = false;      // PDP context (UE + SGSN)
    bool data_enabled = true;     // user's mobile-data switch
    bool out_of_service = false;  // deregistered from both systems
    bool user_initiated_detach = false;
    std::uint8_t switches = 0;  // bound on env switch actions

    bool operator==(const State&) const = default;
  };

  enum class Kind : std::uint8_t {
    kSwitchTo3G,      // carries a SwitchReason
    kDeactivatePdp,   // carries a PdpDeactCause
    kUserDataOff,
    kUserDataOn,
    kSwitchTo4G,      // TAU; succeeds or detaches depending on PDP context
    kReattach,        // recovery after an S1 detach
  };

  struct Action {
    Kind kind = Kind::kSwitchTo3G;
    SwitchReason reason = SwitchReason::kMobility;
    nas::PdpDeactCause cause = nas::PdpDeactCause::kRegularDeactivation;
  };

  State initial() const;
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  // PacketService_OK (§3.2.2): the device must never be involuntarily
  // out of service.
  static mck::PropertySet<State> Properties();

  // Trivial reduction spec: a single-UE slice has no second component to
  // commute against and no symmetry orbit, so enabling --por/--symmetry on
  // a screening sweep is a sound no-op here (identical results).
  mck::ReductionSpec<S1Model> reduction() const;

  const Config& config() const { return config_; }

 private:
  Config config_{};
};

std::size_t HashValue(const S1Model::State& s);

}  // namespace cnv::model
