#include "model/vocab.h"

namespace cnv::model {

std::string ToString(Rrc3g s) {
  switch (s) {
    case Rrc3g::kIdle:
      return "IDLE";
    case Rrc3g::kFach:
      return "FACH";
    case Rrc3g::kDch:
      return "DCH";
  }
  return "?";
}

std::string ToString(Rrc4g s) {
  switch (s) {
    case Rrc4g::kIdle:
      return "IDLE";
    case Rrc4g::kConnected:
      return "CONNECTED";
  }
  return "?";
}

std::string ToString(SwitchPolicy p) {
  switch (p) {
    case SwitchPolicy::kReleaseWithRedirect:
      return "RRC connection release with redirect";
    case SwitchPolicy::kHandover:
      return "inter-system handover";
    case SwitchPolicy::kCellReselection:
      return "inter-system cell reselection";
  }
  return "?";
}

std::string ToString(DataRate r) {
  switch (r) {
    case DataRate::kNone:
      return "no data";
    case DataRate::kLow:
      return "low-rate data";
    case DataRate::kHigh:
      return "high-rate data";
  }
  return "?";
}

std::string ToString(SwitchReason r) {
  switch (r) {
    case SwitchReason::kMobility:
      return "user mobility";
    case SwitchReason::kCsfbCall:
      return "CSFB call";
    case SwitchReason::kLoadBalancing:
      return "carrier load balancing";
  }
  return "?";
}

}  // namespace cnv::model
