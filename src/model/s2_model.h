// S2 screening model — out-of-sequenced signaling between EMM and RRC
// (§5.2). EMM assumes reliable, in-sequence signal transfer; RRC does not
// guarantee it. Two failure shapes are modeled exactly as in Figure 5:
//
//  * Lost signal: the Attach Complete is lost over the air. The UE believes
//    it is attached, the MME is still waiting; the next tracking area update
//    is rejected with "implicitly detached" and the UE deregisters.
//  * Duplicate signal: the Attach Request is deferred by a loaded BS1, the
//    UE retransmits via BS2 and completes the attach; the stale request then
//    reaches the MME, which per TS 24.301 deletes the bearer contexts and
//    reprocesses it — either rejecting (out of service) or re-accepting
//    (transient loss of packet service while the bearer is rebuilt).
//
// Solution knob: `reliable_shim` inserts the §8 slim layer between EMM and
// RRC, restoring reliable in-order end-to-end delivery (implemented for the
// validation phase in src/solution/shim_layer.h); at this abstraction level
// it removes the loss / defer transitions, and the model becomes
// violation-free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mck/hash.h"
#include "mck/property.h"
#include "mck/reduction.h"
#include "model/vocab.h"

namespace cnv::model {

struct S2Model {
  struct Config {
    bool reliable_shim = false;
    bool allow_loss = true;       // exercise Figure 5(a)
    bool allow_duplicate = true;  // exercise Figure 5(b)
  };

  S2Model() = default;
  explicit S2Model(Config config) : config_(config) {}

  enum class Msg : std::uint8_t {
    kNone,
    kAttachRequest,
    kAttachAccept,
    kAttachComplete,
    kTauRequest,
    kTauAccept,
    kTauRejectImplicitDetach,
    kAttachReject,
  };

  enum class UeEmm : std::uint8_t {
    kDeregistered,
    kWaitAccept,    // attach request sent
    kRegistered,
    kWaitTauAnswer,
    kDetached,      // out of service after a reject
  };

  enum class MmeEmm : std::uint8_t {
    kDeregistered,
    kWaitComplete,  // accept sent, waiting for Attach Complete
    kRegistered,
  };

  struct State {
    UeEmm ue = UeEmm::kDeregistered;
    MmeEmm mme = MmeEmm::kDeregistered;
    bool ue_bearer = false;
    bool mme_bearer = false;
    Msg uplink = Msg::kNone;     // in flight UE -> MME
    Msg deferred = Msg::kNone;   // stale copy held by a loaded BS1
    Msg downlink = Msg::kNone;   // in flight MME -> UE
    std::uint8_t attach_sends = 0;
    std::uint8_t taus = 0;
    bool service_interrupted = false;  // bearer torn down while registered
    bool out_of_service = false;

    bool operator==(const State&) const = default;
  };

  enum class Kind : std::uint8_t {
    kUeSendAttach,
    kUeResendAttach,    // guard timer expiry
    kDeferUplink,       // BS1 under heavy load defers delivery
    kLoseUplink,        // lost over the air
    kDeliverUplink,
    kDeliverDeferred,   // the stale copy finally reaches the MME
    kDeliverDownlink,
    kUeTriggerTau,      // mobility / periodic tracking area update
    kMmeRejectStaleAttach,  // MME chooses to reject the reprocessed attach
    kMmeAcceptStaleAttach,  // ... or to accept it (bearer rebuilt)
  };

  struct Action {
    Kind kind = Kind::kUeSendAttach;
  };

  State initial() const { return State{}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  // PacketService_OK is violated by an involuntary detach; the secondary
  // invariant flags the transient teardown on the duplicate-accept path.
  static mck::PropertySet<State> Properties();

  // Trivial reduction spec: a single-UE slice has no second component to
  // commute against and no symmetry orbit, so enabling --por/--symmetry on
  // a screening sweep is a sound no-op here (identical results).
  mck::ReductionSpec<S2Model> reduction() const;

  const Config& config() const { return config_; }

 private:
  Config config_{};
};

std::size_t HashValue(const S2Model::State& s);

}  // namespace cnv::model
