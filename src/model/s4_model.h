// S4 screening model — head-of-line blocking between independent
// cross-layer procedures (§6.1). In 3G, outgoing CS calls (CM) and PS data
// requests (SM) are queued behind location/routing area updates running in
// the lower MM/GMM layer, although the two procedures are logically
// independent (serving the outbound request first would even update the
// location implicitly). The standards let MM defer — or outright reject —
// the CM service request while a location update runs, and MM additionally
// lingers in MM-WAIT-FOR-NET-CMD after the update (the "chain effect"
// adding ~4.3 s in the paper's measurements).
//
// Solution knob: `decoupled` gives MM/GMM two parallel threads (§8, layer
// extension) — one for location updates, one for service requests — which
// removes the deferral transitions entirely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mck/hash.h"
#include "mck/property.h"
#include "mck/reduction.h"
#include "model/vocab.h"

namespace cnv::model {

struct S4Model {
  struct Config {
    bool decoupled = false;
    bool model_cs = true;  // CM/MM pair
    bool model_ps = true;  // SM/GMM pair
  };

  S4Model() = default;
  explicit S4Model(Config config) : config_(config) {}

  enum class Mm : std::uint8_t { kIdle, kLuInProgress, kWaitNetCmd };
  enum class Gmm : std::uint8_t { kIdle, kRauInProgress };

  struct State {
    Mm mm = Mm::kIdle;
    Gmm gmm = Gmm::kIdle;
    bool call_pending = false;
    bool call_active = false;
    bool data_pending = false;
    bool data_active = false;
    bool call_delayed = false;   // HOL blocking hit the CS request
    bool call_rejected = false;  // MM rejected outright (also allowed)
    bool data_delayed = false;   // HOL blocking hit the PS request
    std::uint8_t lus = 0;
    std::uint8_t raus = 0;
    std::uint8_t calls = 0;
    std::uint8_t datas = 0;

    bool operator==(const State&) const = default;
  };

  enum class Kind : std::uint8_t {
    kTriggerLu,      // any Table 4 scenario: roaming, periodic, post-CSFB
    kLuComplete,
    kNetCmdDone,     // leave MM-WAIT-FOR-NET-CMD
    kTriggerRau,
    kRauComplete,
    kUserDialsCall,
    kServeCall,
    kDeferCall,      // MM prioritizes the location update (the defect)
    kRejectCall,
    kUserStartsData,
    kServeData,
    kDeferData,
  };

  struct Action {
    Kind kind = Kind::kTriggerLu;
  };

  State initial() const { return State{}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  static mck::PropertySet<State> Properties();

  // Trivial reduction spec: a single-UE slice has no second component to
  // commute against and no symmetry orbit, so enabling --por/--symmetry on
  // a screening sweep is a sound no-op here (identical results).
  mck::ReductionSpec<S4Model> reduction() const;

  const Config& config() const { return config_; }

 private:
  Config config_{};
};

std::size_t HashValue(const S4Model::State& s);

}  // namespace cnv::model
