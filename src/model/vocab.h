// Shared vocabulary for the screening-phase models. Following standard
// model-checking practice (and how Promela models are written in pieces per
// scenario), the screening models are sliced per interaction under test:
// each of S1-S4 gets a small model whose full state space the explorer can
// exhaust. The slices share this vocabulary, and core::ScreeningRunner
// presents them as one catalog of usage scenarios (§3.2.1).
#pragma once

#include <cstdint>
#include <string>

namespace cnv::model {

// RRC connection states (§2, "Radio resource control").
enum class Rrc3g : std::uint8_t { kIdle, kFach, kDch };
enum class Rrc4g : std::uint8_t { kIdle, kConnected };

std::string ToString(Rrc3g s);
std::string ToString(Rrc4g s);

// The three inter-system switching options of Figure 6(a).
enum class SwitchPolicy : std::uint8_t {
  kReleaseWithRedirect,   // forces an RRC release; disrupts data
  kHandover,              // DCH <-> CONNECTED; costly for carriers
  kCellReselection,       // works only from RRC IDLE (S3 trigger)
};

std::string ToString(SwitchPolicy p);

// Abstract data-session intensity, the S3 discriminator: low-rate sessions
// hold FACH, high-rate sessions hold DCH.
enum class DataRate : std::uint8_t { kNone, kLow, kHigh };

std::string ToString(DataRate r);

// Why the network or user triggered a 4G->3G switch (§5.1.1 lists three
// usage settings). Recorded on actions for readable counterexamples; the
// defect is reason-independent, so it is not part of the state.
enum class SwitchReason : std::uint8_t {
  kMobility,
  kCsfbCall,
  kLoadBalancing,
};

std::string ToString(SwitchReason r);

// Names of the paper's cellular-oriented properties (§3.2.2).
inline constexpr const char* kPacketServiceOk = "PacketService_OK";
inline constexpr const char* kCallServiceOk = "CallService_OK";
inline constexpr const char* kMmOk = "MM_OK";

}  // namespace cnv::model
