#include "model/s3_model.h"

namespace cnv::model {

namespace {
constexpr std::uint8_t kMaxCalls = 2;
}

bool S3Model::StuckIn3g(const State& s) const {
  // The call has ended, the device wants to go back to 4G (CSFB design),
  // 4G is available, yet the switch cannot be activated: the carrier uses
  // cell reselection, which requires RRC IDLE, and the ongoing PS session
  // pins RRC at FACH/DCH for its whole lifetime.
  return s.serving == Sys::k3G && s.call == Call::kEnded &&
         config_.policy == SwitchPolicy::kCellReselection &&
         !config_.fix_csfb_tag && s.rrc3g != Rrc3g::kIdle &&
         s.data != DataRate::kNone;
}

std::vector<S3Model::Action> S3Model::enabled(const State& s) const {
  std::vector<Action> out;
  if (s.data == DataRate::kNone) {
    if (config_.allow_low_rate) out.push_back({Kind::kStartData, DataRate::kLow});
    if (config_.allow_high_rate)
      out.push_back({Kind::kStartData, DataRate::kHigh});
  } else {
    out.push_back({Kind::kStopData, {}});
  }
  if (s.serving == Sys::k4G && s.call == Call::kNone && s.calls < kMaxCalls) {
    out.push_back({Kind::kMakeCsfbCall, {}});
  }
  if (s.call == Call::kActive) {
    out.push_back({Kind::kEndCall, {}});
  }
  // RRC inactivity demotion in 3G: only while no call holds the channel;
  // a low-rate session keeps at least FACH, a high-rate session keeps DCH.
  if (s.serving == Sys::k3G && s.call != Call::kActive &&
      s.rrc3g != Rrc3g::kIdle) {
    const bool can_leave_dch = s.data != DataRate::kHigh;
    const bool can_leave_fach = s.data == DataRate::kNone;
    if ((s.rrc3g == Rrc3g::kDch && can_leave_dch) ||
        (s.rrc3g == Rrc3g::kFach && can_leave_fach)) {
      out.push_back({Kind::kRrcDemote, {}});
    }
  }
  if (s.serving == Sys::k3G && s.call == Call::kEnded) {
    const bool switch_enabled = [&] {
      if (config_.fix_csfb_tag) return true;  // §8: BS forces a usable state
      switch (config_.policy) {
        case SwitchPolicy::kReleaseWithRedirect:
        case SwitchPolicy::kHandover:
          return true;  // both work from RRC non-IDLE
        case SwitchPolicy::kCellReselection:
          return s.rrc3g == Rrc3g::kIdle;
      }
      return false;
    }();
    if (switch_enabled) out.push_back({Kind::kSwitchBackTo4g, {}});
  }
  return out;
}

S3Model::State S3Model::apply(const State& s, const Action& a) const {
  State n = s;
  switch (a.kind) {
    case Kind::kStartData:
      n.data = a.rate;
      if (s.serving == Sys::k3G) {
        n.pdp_active = true;
        n.rrc3g = (a.rate == DataRate::kHigh) ? Rrc3g::kDch : Rrc3g::kFach;
        if (s.call == Call::kActive) n.rrc3g = Rrc3g::kDch;
      } else {
        n.rrc4g = Rrc4g::kConnected;
      }
      break;

    case Kind::kStopData:
      n.data = DataRate::kNone;
      n.pdp_active = false;
      break;

    case Kind::kMakeCsfbCall:
      // 4G -> 3G fallback. The CS call plus any migrated PS session put
      // RRC at DCH (Figure 6b, step 1).
      n.serving = Sys::k3G;
      n.call = Call::kActive;
      ++n.calls;
      n.rrc3g = Rrc3g::kDch;
      n.rrc4g = Rrc4g::kIdle;
      n.pdp_active = s.data != DataRate::kNone;
      break;

    case Kind::kEndCall:
      n.call = Call::kEnded;
      // RRC remains at DCH if high-rate data is ongoing (Figure 6b, step
      // 2); with only low-rate data the demotion stops at FACH.
      break;

    case Kind::kRrcDemote:
      n.rrc3g = (s.rrc3g == Rrc3g::kDch) ? Rrc3g::kFach : Rrc3g::kIdle;
      break;

    case Kind::kSwitchBackTo4g:
      n.serving = Sys::k4G;
      n.call = Call::kNone;
      n.rrc3g = Rrc3g::kIdle;
      n.rrc4g = Rrc4g::kConnected;
      n.pdp_active = false;
      if (!config_.fix_csfb_tag &&
          config_.policy == SwitchPolicy::kReleaseWithRedirect &&
          s.data != DataRate::kNone) {
        // Forcing the RRC release disrupts the ongoing data session (§5.3.1).
        n.data_disrupted = true;
      }
      break;
  }
  return n;
}

std::string S3Model::describe(const Action& a) const {
  switch (a.kind) {
    case Kind::kStartData:
      return "user starts " + ToString(a.rate) + " PS session";
    case Kind::kStopData:
      return "PS data session ends";
    case Kind::kMakeCsfbCall:
      return "user makes CSFB call: 4G->3G fallback, 3G-RRC enters DCH";
    case Kind::kEndCall:
      return "CSFB call ends; device should return to 4G";
    case Kind::kRrcDemote:
      return "3G-RRC inactivity demotion";
    case Kind::kSwitchBackTo4g:
      return "switch back to 4G via " + ToString(config_.policy);
  }
  return "?";
}

mck::PropertySet<S3Model::State> S3Model::Properties() const {
  return {
      {kMmOk,
       [this](const State& s) { return !StuckIn3g(s); },
       "an inter-system switch request is served whenever both systems are "
       "available"},
  };
}

mck::ReductionSpec<S3Model> S3Model::reduction() const { return {}; }

std::size_t HashValue(const S3Model::State& s) {
  return mck::Hasher()
      .Mix(s.serving)
      .Mix(s.rrc3g)
      .Mix(s.rrc4g)
      .Mix(s.call)
      .Mix(s.data)
      .Mix(s.pdp_active)
      .Mix(s.data_disrupted)
      .Mix(s.calls)
      .Digest();
}

}  // namespace cnv::model
