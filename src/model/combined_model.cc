#include "model/combined_model.h"

#include <cstddef>

#include "mck/symmetry.h"

namespace cnv::model {

namespace {

using Sys = CombinedModel::Sys;
using Mm = CombinedModel::Mm;
using Cm = CombinedModel::Cm;
using Kind = CombinedModel::Kind;
using Ue = CombinedModel::Ue;

}  // namespace

std::vector<CombinedModel::Action> CombinedModel::enabled(
    const State& s) const {
  std::vector<Action> acts;
  for (int i = 0; i < config_.ues; ++i) {
    const Ue& u = s.ue[static_cast<std::size_t>(i)];
    const std::uint8_t id = static_cast<std::uint8_t>(i);
    if (u.out_of_service) {
      acts.push_back({Kind::kReattach, id});
      continue;
    }
    if (u.cm == Cm::kIdle && u.calls < config_.max_calls) {
      acts.push_back({Kind::kDial, id});
    }
    if (u.cm == Cm::kWant && u.serving == Sys::k4G) {
      acts.push_back({Kind::kCsfbFallback, id});
    }
    if (u.serving == Sys::k3G && u.mm == Mm::kLuPending && !s.msc_busy) {
      acts.push_back({Kind::kLuStart, id});
    }
    if (u.mm == Mm::kLuRun) {
      acts.push_back({Kind::kLuDone, id});
    }
    if (u.serving == Sys::k3G && u.mm == Mm::kReg3G && u.cm == Cm::kWant) {
      if (!s.msc_busy) {
        acts.push_back({Kind::kCallConnect, id});
      } else if (!config_.fix_queue_call) {
        acts.push_back({Kind::kCallGiveUp, id});
      }
    }
    if (u.cm == Cm::kActive) {
      acts.push_back({Kind::kHangup, id});
    }
    if (u.serving == Sys::k3G && u.ctx) {
      acts.push_back({Kind::kPdpDeact, id});
    }
    if (config_.switch_back && u.serving == Sys::k3G && u.cm == Cm::kDone &&
        u.mm == Mm::kReg3G && u.switches < config_.max_switches) {
      acts.push_back({Kind::kSwitchBack, id});
    }
  }
  return acts;
}

CombinedModel::State CombinedModel::apply(const State& s,
                                          const Action& a) const {
  State next = s;
  Ue& u = next.ue[static_cast<std::size_t>(a.ue)];
  switch (a.kind) {
    case Kind::kDial:
      u.cm = Cm::kWant;
      ++u.calls;
      break;
    case Kind::kCsfbFallback:
      u.serving = Sys::k3G;
      u.mm = Mm::kLuPending;
      // The EPS bearer does not survive the fallback unless the §8
      // cross-system coordination keeps the translated PDP context alive.
      if (!config_.fix_keep_context) u.ctx = false;
      break;
    case Kind::kLuStart:
      next.msc_busy = true;
      u.mm = Mm::kLuRun;
      break;
    case Kind::kLuDone:
      next.msc_busy = false;
      u.mm = Mm::kReg3G;
      break;
    case Kind::kCallConnect:
      next.msc_busy = true;
      u.cm = Cm::kActive;
      break;
    case Kind::kCallGiveUp:
      u.cm = Cm::kDone;
      u.call_dropped = true;
      break;
    case Kind::kHangup:
      next.msc_busy = false;
      u.cm = Cm::kDone;
      break;
    case Kind::kPdpDeact:
      u.ctx = false;
      break;
    case Kind::kSwitchBack:
      ++u.switches;
      if (u.ctx || config_.fix_reactivate_bearer) {
        u.serving = Sys::k4G;
        u.mm = Mm::kReg4G;
        u.ctx = true;  // 4G mandates an active context
      } else {
        // The S1 interaction: TAU with no context to translate -> detach.
        u.serving = Sys::k4G;
        u.mm = Mm::kReg4G;
        u.ctx = false;
        u.out_of_service = true;
      }
      break;
    case Kind::kReattach:
      u.out_of_service = false;
      u.serving = Sys::k4G;
      u.mm = Mm::kReg4G;
      u.ctx = true;
      break;
  }
  return next;
}

std::string CombinedModel::describe(const Action& a) const {
  std::string who = "UE" + std::to_string(static_cast<int>(a.ue)) + ": ";
  switch (a.kind) {
    case Kind::kDial:
      return who + "dial";
    case Kind::kCsfbFallback:
      return who + "CSFB fallback 4G->3G";
    case Kind::kLuStart:
      return who + "location update starts (MSC busy)";
    case Kind::kLuDone:
      return who + "location update done (MSC free)";
    case Kind::kCallConnect:
      return who + "call connects (MSC busy)";
    case Kind::kCallGiveUp:
      return who + "call abandoned (MSC held by another UE)";
    case Kind::kHangup:
      return who + "hangup (MSC free)";
    case Kind::kPdpDeact:
      return who + "3G deactivates PDP context";
    case Kind::kSwitchBack:
      return who + "switch back 3G->4G";
    case Kind::kReattach:
      return who + "reattach";
  }
  return who + "?";
}

bool CombinedModel::is_final(const State& s) const {
  for (int i = 0; i < config_.ues; ++i) {
    const Ue& u = s.ue[static_cast<std::size_t>(i)];
    if (u.out_of_service) return false;
    if (u.cm != Cm::kDone &&
        !(u.cm == Cm::kIdle && u.calls >= config_.max_calls)) {
      return false;
    }
  }
  return true;
}

mck::PropertySet<CombinedModel::State> CombinedModel::Properties() const {
  const int n = config_.ues;
  const bool switch_back = config_.switch_back;
  return {
      {kPacketServiceOk,
       [n](const State& s) {
         for (int i = 0; i < n; ++i) {
           if (s.ue[static_cast<std::size_t>(i)].out_of_service) return false;
         }
         return true;
       },
       "no UE is involuntarily detached from packet service"},
      {kCallServiceOk,
       [n](const State& s) {
         for (int i = 0; i < n; ++i) {
           if (s.ue[static_cast<std::size_t>(i)].call_dropped) return false;
         }
         return true;
       },
       "no UE abandons a dialed call"},
      {kMmOk,
       [n, switch_back](const State& s) {
         if (switch_back) return true;
         for (int i = 0; i < n; ++i) {
           const Ue& u = s.ue[static_cast<std::size_t>(i)];
           if (u.cm == Cm::kDone && u.serving == Sys::k3G) return false;
         }
         return true;
       },
       "a UE whose CSFB call ended is not left camped on 3G"},
  };
}

mck::ReductionSpec<CombinedModel> CombinedModel::reduction() const {
  mck::ReductionSpec<CombinedModel> spec;
  spec.components = config_.ues;
  spec.owner = [](const State&, const Action& a) {
    return static_cast<int>(a.ue);
  };
  spec.local = [](const State&, const Action& a) {
    switch (a.kind) {
      // Guard and effect confined to the owning UE's block.
      case Kind::kDial:
      case Kind::kCsfbFallback:
      case Kind::kPdpDeact:
      case Kind::kSwitchBack:
      case Kind::kReattach:
        return true;
      // Reads or writes the shared MSC.
      default:
        return false;
    }
  };
  spec.visible = [](const State&, const Action& a) {
    switch (a.kind) {
      case Kind::kSwitchBack:  // may set out_of_service (PacketService_OK)
      case Kind::kReattach:    // clears out_of_service
      case Kind::kCallGiveUp:  // sets call_dropped (CallService_OK)
      case Kind::kHangup:      // cm -> kDone can flip MM_OK
        return true;
      default:
        return false;
    }
  };
  spec.unsafe = [](const State& s, int c) {
    // The MSC-guarded actions (kLuStart/kCallConnect when free, kCallGiveUp
    // when busy) are disabled-but-pending exactly in these control states;
    // another UE's grab or release of the MSC would enable them, so the
    // component may not be ample here.
    const Ue& u = s.ue[static_cast<std::size_t>(c)];
    return u.mm == Mm::kLuPending ||
           (u.cm == Cm::kWant && u.serving == Sys::k3G);
  };
  const int n = config_.ues;
  spec.canonicalize = [n](const State& s) {
    State c = s;
    mck::SortBlocks(c.ue, static_cast<std::size_t>(n));
    return c;
  };
  spec.orbit_size = [n](const State& s) {
    return mck::MultisetOrbitSize(s.ue, static_cast<std::size_t>(n));
  };
  return spec;
}

std::size_t HashValue(const CombinedModel::State& s) {
  mck::Hasher h;
  for (const Ue& u : s.ue) {
    h.Mix(u.serving)
        .Mix(u.mm)
        .Mix(u.cm)
        .Mix(u.ctx)
        .Mix(u.out_of_service)
        .Mix(u.call_dropped)
        .Mix(u.calls)
        .Mix(u.switches);
  }
  h.Mix(s.msc_busy);
  return h.Digest();
}

}  // namespace cnv::model
