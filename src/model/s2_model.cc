#include "model/s2_model.h"

namespace cnv::model {

namespace {
constexpr std::uint8_t kMaxAttachSends = 2;
constexpr std::uint8_t kMaxTaus = 1;
}  // namespace

std::vector<S2Model::Action> S2Model::enabled(const State& s) const {
  std::vector<Action> out;
  const bool unreliable = !config_.reliable_shim;

  if (s.ue == UeEmm::kDeregistered && s.uplink == Msg::kNone &&
      s.attach_sends == 0) {
    out.push_back({Kind::kUeSendAttach});
  }
  // Guard-timer expiry (T3410): no answer and nothing of ours in flight.
  if (s.ue == UeEmm::kWaitAccept && s.uplink == Msg::kNone &&
      s.downlink == Msg::kNone && s.attach_sends < kMaxAttachSends) {
    out.push_back({Kind::kUeResendAttach});
  }
  if (s.uplink != Msg::kNone) {
    out.push_back({Kind::kDeliverUplink});
    if (unreliable && config_.allow_duplicate &&
        s.uplink == Msg::kAttachRequest && s.deferred == Msg::kNone) {
      out.push_back({Kind::kDeferUplink});
    }
    if (unreliable && config_.allow_loss &&
        (s.uplink == Msg::kAttachRequest ||
         s.uplink == Msg::kAttachComplete)) {
      out.push_back({Kind::kLoseUplink});
    }
  }
  if (s.deferred != Msg::kNone) {
    if (s.mme == MmeEmm::kRegistered) {
      // TS 24.301: delete the bearer contexts, then reprocess the stale
      // request; both outcomes are stipulated as possible.
      out.push_back({Kind::kMmeRejectStaleAttach});
      out.push_back({Kind::kMmeAcceptStaleAttach});
    } else {
      out.push_back({Kind::kDeliverDeferred});
    }
  }
  if (s.downlink != Msg::kNone) {
    // Delivering an Attach Accept makes the UE send Attach Complete, so the
    // uplink slot must be free.
    if (s.downlink != Msg::kAttachAccept || s.uplink == Msg::kNone) {
      out.push_back({Kind::kDeliverDownlink});
    }
  }
  if (s.ue == UeEmm::kRegistered && s.uplink == Msg::kNone &&
      s.downlink == Msg::kNone && s.taus < kMaxTaus) {
    out.push_back({Kind::kUeTriggerTau});
  }
  return out;
}

S2Model::State S2Model::apply(const State& s, const Action& a) const {
  State n = s;
  switch (a.kind) {
    case Kind::kUeSendAttach:
    case Kind::kUeResendAttach:
      n.uplink = Msg::kAttachRequest;
      n.ue = UeEmm::kWaitAccept;
      ++n.attach_sends;
      break;

    case Kind::kDeferUplink:
      n.deferred = s.uplink;
      n.uplink = Msg::kNone;
      break;

    case Kind::kLoseUplink:
      n.uplink = Msg::kNone;
      break;

    case Kind::kDeliverUplink:
    case Kind::kDeliverDeferred: {
      const Msg m = (a.kind == Kind::kDeliverUplink) ? s.uplink : s.deferred;
      if (a.kind == Kind::kDeliverUplink) {
        n.uplink = Msg::kNone;
      } else {
        n.deferred = Msg::kNone;
      }
      switch (m) {
        case Msg::kAttachRequest:
          // Fresh attach handling (MME deregistered or already waiting).
          n.mme = MmeEmm::kWaitComplete;
          n.downlink = Msg::kAttachAccept;
          break;
        case Msg::kAttachComplete:
          if (s.mme == MmeEmm::kWaitComplete) {
            n.mme = MmeEmm::kRegistered;
            n.mme_bearer = true;
          }
          break;
        case Msg::kTauRequest:
          if (s.mme == MmeEmm::kRegistered) {
            n.downlink = Msg::kTauAccept;
          } else {
            // The MME believes the attach never completed: implicit detach
            // (§5.2.1, lost-signal case).
            n.downlink = Msg::kTauRejectImplicitDetach;
            n.mme = MmeEmm::kDeregistered;
            n.mme_bearer = false;
          }
          break;
        default:
          break;
      }
      break;
    }

    case Kind::kDeliverDownlink:
      n.downlink = Msg::kNone;
      switch (s.downlink) {
        case Msg::kAttachAccept:
          n.ue = UeEmm::kRegistered;
          n.ue_bearer = true;
          n.uplink = Msg::kAttachComplete;
          break;
        case Msg::kTauAccept:
          n.ue = UeEmm::kRegistered;
          break;
        case Msg::kTauRejectImplicitDetach:
        case Msg::kAttachReject:
          n.ue = UeEmm::kDetached;
          n.ue_bearer = false;
          n.out_of_service = true;
          break;
        default:
          break;
      }
      break;

    case Kind::kUeTriggerTau:
      n.uplink = Msg::kTauRequest;
      n.ue = UeEmm::kWaitTauAnswer;
      ++n.taus;
      break;

    case Kind::kMmeRejectStaleAttach:
      n.deferred = Msg::kNone;
      n.mme = MmeEmm::kDeregistered;
      n.mme_bearer = false;
      n.downlink = Msg::kAttachReject;
      break;

    case Kind::kMmeAcceptStaleAttach:
      n.deferred = Msg::kNone;
      // The EPS bearer context is deleted and must be re-constructed;
      // packet service is unavailable during the transition (§5.2.1).
      n.mme = MmeEmm::kWaitComplete;
      n.mme_bearer = false;
      n.service_interrupted = true;
      n.downlink = Msg::kAttachAccept;
      break;
  }
  return n;
}

std::string S2Model::describe(const Action& a) const {
  switch (a.kind) {
    case Kind::kUeSendAttach:
      return "UE EMM sends Attach Request (via RRC)";
    case Kind::kUeResendAttach:
      return "T3410 expires; UE retransmits Attach Request via a new BS";
    case Kind::kDeferUplink:
      return "BS1 under heavy load defers delivery of the Attach Request";
    case Kind::kLoseUplink:
      return "RRC loses the uplink signal over the air";
    case Kind::kDeliverUplink:
      return "uplink signal delivered to the MME";
    case Kind::kDeliverDeferred:
      return "stale deferred signal finally reaches the MME";
    case Kind::kDeliverDownlink:
      return "downlink signal delivered to the UE";
    case Kind::kUeTriggerTau:
      return "UE triggers tracking area update";
    case Kind::kMmeRejectStaleAttach:
      return "MME deletes EPS bearer context and rejects the duplicate "
             "Attach Request";
    case Kind::kMmeAcceptStaleAttach:
      return "MME deletes EPS bearer context and re-accepts the duplicate "
             "Attach Request";
  }
  return "?";
}

mck::PropertySet<S2Model::State> S2Model::Properties() {
  return {
      {kPacketServiceOk,
       [](const State& s) { return !s.out_of_service; },
       "the device is never involuntarily detached from 4G"},
      {"PacketService_NoTransientLoss",
       [](const State& s) { return !s.service_interrupted; },
       "the EPS bearer is never torn down while the user is registered"},
  };
}

mck::ReductionSpec<S2Model> S2Model::reduction() const { return {}; }

std::size_t HashValue(const S2Model::State& s) {
  return mck::Hasher()
      .Mix(s.ue)
      .Mix(s.mme)
      .Mix(s.ue_bearer)
      .Mix(s.mme_bearer)
      .Mix(s.uplink)
      .Mix(s.deferred)
      .Mix(s.downlink)
      .Mix(s.attach_sends)
      .Mix(s.taus)
      .Mix(s.service_interrupted)
      .Mix(s.out_of_service)
      .Digest();
}

}  // namespace cnv::model
