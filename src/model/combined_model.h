// Combined multi-UE protocol model — CSFB call setup, location update and
// PDP-context management running concurrently over N interchangeable UEs
// that share one MSC. Where the S1-S4 screening slices each isolate a
// single protocol interaction, this model composes the call (CM/CSFB),
// mobility (MM/LU) and data (SM/PDP) machines of every UE, so the
// cross-layer *and* cross-UE interactions of the paper are reachable in one
// state space:
//
//  * PacketService_OK — a CSFB fallback (or a 3G network-initiated PDP
//    deactivation) leaves the UE with no packet context; the switch back to
//    4G then detaches it (the S1 inter-system interaction).
//  * CallService_OK  — a UE that finished its location update finds the
//    shared MSC held by another UE's LU or call and abandons the call
//    (CSFB x LU contention; needs >= 2 UEs, unreachable in any slice).
//  * MM_OK           — with the network's switch-back disabled the UE stays
//    camped on 3G after the CSFB call ends (the stuck-in-3G interaction).
//
// The full product over N UEs is what the state-space reductions are for:
// UEs are symmetric (canonical form = sorted UE blocks) and their private
// actions are independent (single-UE ample sets), so the model declares a
// full ReductionSpec. Every violation reachable in the full product is
// reachable in the reduced one — pinned by tests/mck_por_test.cc and
// tests/mck_symmetry_test.cc.
//
// Solution knobs (§8):
//  * `fix_keep_context`      — retain the PDP context across the CSFB
//                              fallback (removes the main detach path);
//  * `fix_reactivate_bearer` — a context-less switch-back activates a fresh
//                              EPS bearer instead of detaching;
//  * `fix_queue_call`        — hold the call until the MSC frees up instead
//                              of abandoning it.
// With fix_reactivate_bearer and fix_queue_call set (and switch_back on,
// the default) the model is violation-free.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "mck/hash.h"
#include "mck/property.h"
#include "mck/reduction.h"
#include "model/vocab.h"

namespace cnv::model {

struct CombinedModel {
  static constexpr std::size_t kMaxUes = 4;

  struct Config {
    int ues = 2;  // active UEs, in [1, kMaxUes]
    bool fix_keep_context = false;
    bool fix_reactivate_bearer = false;
    bool fix_queue_call = false;
    // Whether the network returns the UE to 4G once its CSFB call ends;
    // disabling it models the stuck-in-3G misconfiguration (MM_OK).
    bool switch_back = true;
    std::uint8_t max_calls = 1;     // dial budget per UE
    std::uint8_t max_switches = 1;  // switch-back budget per UE
  };

  CombinedModel() = default;
  explicit CombinedModel(Config config) : config_(config) {}

  enum class Sys : std::uint8_t { k4G, k3G };
  // Mobility management: registered on 4G; after a fallback the UE owes the
  // 3G core a location update (pending -> running -> registered).
  enum class Mm : std::uint8_t { kReg4G, kLuPending, kLuRun, kReg3G };
  // Call management: one CSFB call lifecycle per dial.
  enum class Cm : std::uint8_t { kIdle, kWant, kActive, kDone };

  // Per-UE block. Ordered (not just equality-comparable) so symmetry
  // reduction can sort the blocks into a canonical representative.
  struct Ue {
    Sys serving = Sys::k4G;
    Mm mm = Mm::kReg4G;
    Cm cm = Cm::kIdle;
    bool ctx = true;  // packet context (EPS bearer on 4G / PDP on 3G)
    bool out_of_service = false;
    bool call_dropped = false;
    std::uint8_t calls = 0;
    std::uint8_t switches = 0;
    auto operator<=>(const Ue&) const = default;
  };

  struct State {
    std::array<Ue, kMaxUes> ue{};
    // The shared MSC/RNC resource: serves one location update or call setup
    // at a time. The only cross-UE coupling in the model.
    bool msc_busy = false;
    bool operator==(const State&) const = default;
  };

  enum class Kind : std::uint8_t {
    kDial,          // user asks for a voice call
    kCsfbFallback,  // 4G -> 3G circuit-switched fallback
    kLuStart,       // location update grabs the MSC
    kLuDone,        // location update completes, MSC freed
    kCallConnect,   // call setup grabs the MSC
    kCallGiveUp,    // MSC held by another UE: call abandoned
    kHangup,        // call ends, MSC freed
    kPdpDeact,      // 3G deactivates the PDP context (any Table 3 cause)
    kSwitchBack,    // network moves the idle UE back to 4G
    kReattach,      // user recovers an out-of-service UE
  };

  struct Action {
    Kind kind = Kind::kDial;
    std::uint8_t ue = 0;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  // Every UE either completed its call lifecycle or never owed one; such
  // states end the run without counting as deadlocks.
  bool is_final(const State& s) const;

  // PacketService_OK / CallService_OK / MM_OK over all active UEs (§3.2.2).
  // Member (not static): MM_OK depends on the switch_back knob.
  mck::PropertySet<State> Properties() const;

  // POR + symmetry spec: UEs are the components; the MSC is the only shared
  // state; UE blocks sort into the canonical form.
  mck::ReductionSpec<CombinedModel> reduction() const;

  const Config& config() const { return config_; }

 private:
  Config config_{};
};

std::size_t HashValue(const CombinedModel::State& s);

}  // namespace cnv::model
