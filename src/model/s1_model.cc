#include "model/s1_model.h"

#include "nas/context.h"

namespace cnv::model {

namespace {
constexpr std::uint8_t kMaxSwitches = 3;  // bounds the environment loop
}

S1Model::State S1Model::initial() const {
  // The device starts attached to 4G with an activated EPS bearer (§5.1.2).
  return State{};
}

std::vector<S1Model::Action> S1Model::enabled(const State& s) const {
  std::vector<Action> out;
  if (s.out_of_service) {
    out.push_back({Kind::kReattach, {}, {}});
    return out;
  }
  if (s.serving == Sys::k4G && s.switches < kMaxSwitches) {
    // All three usage settings of §5.1.1 can trigger the 4G->3G switch.
    for (SwitchReason r : {SwitchReason::kMobility, SwitchReason::kCsfbCall,
                           SwitchReason::kLoadBalancing}) {
      out.push_back({Kind::kSwitchTo3G, r, {}});
    }
  }
  if (s.serving == Sys::k3G) {
    if (s.pdp_active) {
      // The network or device may deactivate the PDP context for any of the
      // Table 3 causes; all are enumerated (§3.2.1, bounded options).
      for (const auto& info : nas::AllPdpDeactCauses()) {
        out.push_back({Kind::kDeactivatePdp, {}, info.cause});
      }
    }
    if (config_.allow_user_data_toggle && s.data_enabled) {
      out.push_back({Kind::kUserDataOff, {}, {}});
    }
    if (config_.allow_user_data_toggle && !s.data_enabled) {
      out.push_back({Kind::kUserDataOn, {}, {}});
    }
    if (s.switches < kMaxSwitches) {
      out.push_back({Kind::kSwitchTo4G, {}, {}});
    }
  }
  return out;
}

S1Model::State S1Model::apply(const State& s, const Action& a) const {
  State n = s;
  switch (a.kind) {
    case Kind::kSwitchTo3G:
      n.serving = Sys::k3G;
      ++n.switches;
      n.gmm_registered = true;
      // EPS bearer -> PDP context migration; the 4G-side reservation is
      // released after the conversion (§5.1.1).
      n.pdp_active = s.eps_active && s.data_enabled;
      n.eps_active = false;
      break;

    case Kind::kDeactivatePdp: {
      nas::PdpContext pdp;
      pdp.active = true;
      if (config_.fix_keep_context &&
          nas::RetainOnDeactivation(pdp, a.cause).has_value()) {
        // §8: keep (or modify) the context; it stays active.
        n.pdp_active = true;
      } else {
        n.pdp_active = false;
      }
      break;
    }

    case Kind::kUserDataOff:
      // Some phones deactivate all PDP contexts when mobile data is
      // disabled (observed on HTC One / LG Optimus G, §5.1.3).
      n.data_enabled = false;
      n.pdp_active = false;
      break;

    case Kind::kUserDataOn:
      n.data_enabled = true;
      n.pdp_active = true;  // PDP context re-activated on demand
      break;

    case Kind::kSwitchTo4G:
      ++n.switches;
      if (s.pdp_active) {
        // PDP -> EPS bearer translation during the tracking area update.
        n.serving = Sys::k4G;
        n.eps_active = true;
        n.emm_registered = true;
        n.pdp_active = false;
        n.gmm_registered = false;
      } else if (config_.fix_reactivate_bearer) {
        // §8 remedy: the device is still registered in 4G; activate a
        // fresh EPS bearer instead of detaching.
        n.serving = Sys::k4G;
        n.eps_active = true;
        n.emm_registered = true;
        n.gmm_registered = false;
      } else {
        // TS 24.301: 4G requires an EPS bearer context; none can be
        // constructed, so the TAU is rejected ("No EPS Bearer Context
        // Activated") and the device is detached -> out of service.
        n.serving = Sys::k4G;
        n.emm_registered = false;
        n.gmm_registered = false;
        n.eps_active = false;
        n.out_of_service = true;
      }
      break;

    case Kind::kReattach:
      n.out_of_service = false;
      n.emm_registered = true;
      n.eps_active = true;
      n.serving = Sys::k4G;
      break;
  }
  return n;
}

std::string S1Model::describe(const Action& a) const {
  switch (a.kind) {
    case Kind::kSwitchTo3G:
      return "4G->3G switch (" + ToString(a.reason) +
             "); EPS bearer context migrated to PDP context";
    case Kind::kDeactivatePdp:
      return "3G deactivates PDP context (cause: " + nas::ToString(a.cause) +
             ")";
    case Kind::kUserDataOff:
      return "user disables mobile data; phone deactivates all PDP contexts";
    case Kind::kUserDataOn:
      return "user re-enables mobile data";
    case Kind::kSwitchTo4G:
      return "3G->4G switch (tracking area update)";
    case Kind::kReattach:
      return "device re-attaches to 4G";
  }
  return "?";
}

mck::PropertySet<S1Model::State> S1Model::Properties() {
  return {
      {kPacketServiceOk,
       [](const State& s) {
         return !(s.out_of_service && !s.user_initiated_detach);
       },
       "packet service available once attached, unless explicitly "
       "deactivated by the user"},
  };
}

mck::ReductionSpec<S1Model> S1Model::reduction() const { return {}; }

std::size_t HashValue(const S1Model::State& s) {
  return mck::Hasher()
      .Mix(s.serving)
      .Mix(s.emm_registered)
      .Mix(s.gmm_registered)
      .Mix(s.eps_active)
      .Mix(s.pdp_active)
      .Mix(s.data_enabled)
      .Mix(s.out_of_service)
      .Mix(s.user_initiated_detach)
      .Mix(s.switches)
      .Digest();
}

}  // namespace cnv::model
