#include "model/s4_model.h"

namespace cnv::model {

namespace {
constexpr std::uint8_t kBound = 2;
}

std::vector<S4Model::Action> S4Model::enabled(const State& s) const {
  std::vector<Action> out;
  if (config_.model_cs) {
    if (s.mm == Mm::kIdle && s.lus < kBound) out.push_back({Kind::kTriggerLu});
    if (s.mm == Mm::kLuInProgress) out.push_back({Kind::kLuComplete});
    if (s.mm == Mm::kWaitNetCmd) out.push_back({Kind::kNetCmdDone});
    if (!s.call_pending && !s.call_active && s.calls < kBound) {
      out.push_back({Kind::kUserDialsCall});
    }
    if (s.call_pending) {
      const bool mm_busy = s.mm != Mm::kIdle;
      if (config_.decoupled || !mm_busy) {
        out.push_back({Kind::kServeCall});
      } else {
        // TS 24.008 allows MM to hold or reject the CM service request
        // while the location update runs.
        out.push_back({Kind::kDeferCall});
        out.push_back({Kind::kRejectCall});
      }
    }
  }
  if (config_.model_ps) {
    if (s.gmm == Gmm::kIdle && s.raus < kBound) {
      out.push_back({Kind::kTriggerRau});
    }
    if (s.gmm == Gmm::kRauInProgress) out.push_back({Kind::kRauComplete});
    if (!s.data_pending && !s.data_active && s.datas < kBound) {
      out.push_back({Kind::kUserStartsData});
    }
    if (s.data_pending) {
      const bool gmm_busy = s.gmm != Gmm::kIdle;
      if (config_.decoupled || !gmm_busy) {
        out.push_back({Kind::kServeData});
      } else {
        out.push_back({Kind::kDeferData});
      }
    }
  }
  return out;
}

S4Model::State S4Model::apply(const State& s, const Action& a) const {
  State n = s;
  switch (a.kind) {
    case Kind::kTriggerLu:
      n.mm = Mm::kLuInProgress;
      ++n.lus;
      break;
    case Kind::kLuComplete:
      // Chain effect (§6.1.2): after the update MM processes cross-layer
      // MM/RRC commands in MM-WAIT-FOR-NET-CMD before serving anything.
      n.mm = Mm::kWaitNetCmd;
      break;
    case Kind::kNetCmdDone:
      n.mm = Mm::kIdle;
      break;
    case Kind::kTriggerRau:
      n.gmm = Gmm::kRauInProgress;
      ++n.raus;
      break;
    case Kind::kRauComplete:
      n.gmm = Gmm::kIdle;
      break;
    case Kind::kUserDialsCall:
      n.call_pending = true;
      ++n.calls;
      break;
    case Kind::kServeCall:
      n.call_pending = false;
      n.call_active = true;
      break;
    case Kind::kDeferCall:
      n.call_delayed = true;
      break;
    case Kind::kRejectCall:
      n.call_pending = false;
      n.call_rejected = true;
      break;
    case Kind::kUserStartsData:
      n.data_pending = true;
      ++n.datas;
      break;
    case Kind::kServeData:
      n.data_pending = false;
      n.data_active = true;
      break;
    case Kind::kDeferData:
      n.data_delayed = true;
      break;
  }
  return n;
}

std::string S4Model::describe(const Action& a) const {
  switch (a.kind) {
    case Kind::kTriggerLu:
      return "MM starts location area update";
    case Kind::kLuComplete:
      return "location update done; MM enters MM-WAIT-FOR-NET-CMD";
    case Kind::kNetCmdDone:
      return "MM finishes pending network commands";
    case Kind::kTriggerRau:
      return "GMM starts routing area update";
    case Kind::kRauComplete:
      return "routing area update done";
    case Kind::kUserDialsCall:
      return "user dials an outgoing call (CM service request)";
    case Kind::kServeCall:
      return config_.decoupled
                 ? "MM serves the call concurrently (implicit location "
                   "update as a byproduct)"
                 : "MM serves the CM service request";
    case Kind::kDeferCall:
      return "MM defers the CM service request behind the location update "
             "(HOL blocking)";
    case Kind::kRejectCall:
      return "MM rejects the CM service request during the location update";
    case Kind::kUserStartsData:
      return "user starts PS data (SM request)";
    case Kind::kServeData:
      return "GMM serves the SM data request";
    case Kind::kDeferData:
      return "GMM defers the SM data request behind the routing area update "
             "(HOL blocking)";
  }
  return "?";
}

mck::PropertySet<S4Model::State> S4Model::Properties() {
  return {
      {kCallServiceOk,
       [](const State& s) { return !s.call_delayed && !s.call_rejected; },
       "an outgoing call request is neither rejected nor delayed without "
       "explicit user operation"},
      {kPacketServiceOk,
       [](const State& s) { return !s.data_delayed; },
       "a PS data request is served without artificial delay"},
  };
}

mck::ReductionSpec<S4Model> S4Model::reduction() const { return {}; }

std::size_t HashValue(const S4Model::State& s) {
  return mck::Hasher()
      .Mix(s.mm)
      .Mix(s.gmm)
      .Mix(s.call_pending)
      .Mix(s.call_active)
      .Mix(s.data_pending)
      .Mix(s.data_active)
      .Mix(s.call_delayed)
      .Mix(s.call_rejected)
      .Mix(s.data_delayed)
      .Mix(s.lus)
      .Mix(s.raus)
      .Mix(s.calls)
      .Mix(s.datas)
      .Digest();
}

}  // namespace cnv::model
