// Modem-style protocol trace records. The paper's validation phase collects
// five fields per item from the phone's diagnostic mode (§3.3): timestamp
// (hh:mm:ss.ms), trace type, network system, generating module, and a
// description. TraceRecord reproduces exactly those fields.
#pragma once

#include <cstdint>
#include <string>

#include "nas/ids.h"
#include "util/time.h"

namespace cnv::trace {

enum class TraceType : std::uint8_t {
  kState,     // protocol state change
  kMsg,       // signaling message sent/received
  kEvent,     // local event (timer expiry, user action, measurement)
  kFault,     // injected fault (chaos campaigns: link/element/timer faults)
  kRecovery,  // monitored property transition (outage begins/ends)
};

std::string ToString(TraceType t);

struct TraceRecord {
  SimTime time = 0;
  TraceType type = TraceType::kEvent;
  nas::System system = nas::System::kNone;
  std::string module;       // e.g. "MM", "CM/CC", "EMM", "3G-RRC"
  std::string description;  // e.g. "a call is established"

  bool operator==(const TraceRecord&) const = default;
};

}  // namespace cnv::trace
