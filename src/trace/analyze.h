// Trace analyzers: the measurements the paper derives from collected logs —
// call setup time (Figure 7), location/routing update durations (Figure 8),
// recovery time after a detach (Figure 4), stuck-in-3G duration (Table 6).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/record.h"
#include "util/stats.h"

namespace cnv::trace {

// Time of the first record at/after `from` whose description contains
// `needle`; std::nullopt if none.
std::optional<SimTime> TimeOfFirst(const std::vector<TraceRecord>& records,
                                   const std::string& needle,
                                   SimTime from = 0);

// Number of records whose description contains `needle`.
std::size_t CountContaining(const std::vector<TraceRecord>& records,
                            const std::string& needle);

// Pairs each `start_needle` record with the next `end_needle` record after
// it and returns the durations. Unmatched starts are skipped. This is how
// update durations and setup times are measured from logs.
std::vector<SimDuration> IntervalsBetween(
    const std::vector<TraceRecord>& records, const std::string& start_needle,
    const std::string& end_needle);

// Same, but as a Samples of seconds, ready for CDF / summary rendering.
Samples IntervalSecondsBetween(const std::vector<TraceRecord>& records,
                               const std::string& start_needle,
                               const std::string& end_needle);

// Records whose module matches exactly (e.g. all "MM" items).
std::vector<TraceRecord> FilterByModule(
    const std::vector<TraceRecord>& records, const std::string& module);

}  // namespace cnv::trace
