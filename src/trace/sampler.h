// O(1) sampling sink for population-scale tracing. A city run generates
// hundreds of millions of trace-worthy protocol events; recording them all
// is neither affordable nor useful. The sampler admits a deterministic
// 1-in-N subset keyed by a stable id (the UE), so a sampled UE contributes
// its *entire* protocol history — procedures stay reconstructible — while
// per-record cost for everyone else is a hash and a counter bump.
//
// The admit decision is a multiplicative hash of (seed, key): constant
// time, no per-key state, identical across runs and worker counts, and
// unbiased with respect to UE id patterns (sequential ids don't alias into
// the same decision stripe the way `id % N` would).
//
// Aggregate records (storm onset, cell overload) bypass sampling via
// EmitAlways — rarity is their relevance, so they must never be dropped.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "trace/record.h"

namespace cnv::trace {

class SamplingSink {
 public:
  using Emit = std::function<void(const TraceRecord&)>;

  // Admits roughly one key in `every` (1 = record everything). `seed`
  // decorrelates the sampled subset from other hash uses of the same ids.
  SamplingSink(std::uint32_t every, std::uint64_t seed, Emit out)
      : every_(every == 0 ? 1 : every), seed_(seed), out_(std::move(out)) {}

  // Whether `key`'s records are admitted. Pure; callers on hot paths check
  // once per procedure and skip record construction entirely when false.
  bool Admits(std::uint64_t key) const {
    if (every_ == 1) return true;
    std::uint64_t h = key + seed_ + 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h % every_ == 0;
  }

  // Forwards `r` if `key` is admitted; otherwise counts it as dropped.
  void Offer(std::uint64_t key, const TraceRecord& r) {
    if (Admits(key)) {
      ++emitted_;
      out_(r);
    } else {
      ++dropped_;
    }
  }

  // Counts `n` records that were suppressed before construction (the caller
  // checked Admits() first). Keeps sampled-vs-dropped accounting honest
  // without paying for record objects nobody will see.
  void CountSuppressed(std::uint64_t n) { dropped_ += n; }

  // Unconditional pass-through for aggregate/alarm records.
  void EmitAlways(const TraceRecord& r) {
    ++emitted_;
    out_(r);
  }

  std::uint32_t every() const { return every_; }
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::uint32_t every_;
  std::uint64_t seed_;
  Emit out_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cnv::trace
