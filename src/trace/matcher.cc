#include "trace/matcher.h"

namespace cnv::trace {

SequenceMatch MatchesSequence(const std::vector<TraceRecord>& records,
                              const std::vector<std::string>& needles) {
  std::size_t next = 0;
  for (const auto& r : records) {
    if (next >= needles.size()) break;
    if (r.description.find(needles[next]) != std::string::npos) {
      ++next;
    }
  }
  if (next == needles.size()) return {true, 0, ""};
  return {false, next, needles[next]};
}

const std::vector<std::string>& AnticipatedS1Sequence() {
  static const std::vector<std::string> kSeq = {
      "EPS bearer context activated",
      "4G->3G switch",
      "Deactivate PDP Context Request received",
      "3G->4G switch",
      "Tracking Area Update Request sent",
      "Tracking Area Update Reject received",
      "detached by network",
      "re-attach succeeded",
  };
  return kSeq;
}

const std::vector<std::string>& AnticipatedS2LossSequence() {
  static const std::vector<std::string> kSeq = {
      "Attach Request sent",
      "Attach Accept received",
      "Attach Complete sent",
      "Tracking Area Update Request sent",
      "Tracking Area Update Reject received",
      "detached by network",
  };
  return kSeq;
}

const std::vector<std::string>& AnticipatedCsfbSequence() {
  static const std::vector<std::string> kSeq = {
      "Extended Service Request (CSFB) sent",
      "RRC Connection Release (redirect to 3G) received",
      "4G->3G switch",
      "CM Service Request sent",
      "a call is established",
      "Disconnect sent",
  };
  return kSeq;
}

}  // namespace cnv::trace
