#include "trace/analyze.h"

namespace cnv::trace {

std::optional<SimTime> TimeOfFirst(const std::vector<TraceRecord>& records,
                                   const std::string& needle, SimTime from) {
  for (const auto& r : records) {
    if (r.time >= from && r.description.find(needle) != std::string::npos) {
      return r.time;
    }
  }
  return std::nullopt;
}

std::size_t CountContaining(const std::vector<TraceRecord>& records,
                            const std::string& needle) {
  std::size_t n = 0;
  for (const auto& r : records) {
    if (r.description.find(needle) != std::string::npos) ++n;
  }
  return n;
}

std::vector<SimDuration> IntervalsBetween(
    const std::vector<TraceRecord>& records, const std::string& start_needle,
    const std::string& end_needle) {
  std::vector<SimDuration> out;
  std::optional<SimTime> open_start;
  for (const auto& r : records) {
    if (!open_start &&
        r.description.find(start_needle) != std::string::npos) {
      open_start = r.time;
      continue;
    }
    if (open_start && r.description.find(end_needle) != std::string::npos) {
      out.push_back(r.time - *open_start);
      open_start.reset();
    }
  }
  return out;
}

Samples IntervalSecondsBetween(const std::vector<TraceRecord>& records,
                               const std::string& start_needle,
                               const std::string& end_needle) {
  Samples s;
  for (const SimDuration d :
       IntervalsBetween(records, start_needle, end_needle)) {
    s.Add(ToSeconds(d));
  }
  return s;
}

std::vector<TraceRecord> FilterByModule(
    const std::vector<TraceRecord>& records, const std::string& module) {
  std::vector<TraceRecord> out;
  for (const auto& r : records) {
    if (r.module == module) out.push_back(r);
  }
  return out;
}

}  // namespace cnv::trace
