#include "trace/collector.h"

#include "util/log.h"
#include "util/strings.h"

namespace cnv::trace {

std::string ToString(TraceType t) {
  switch (t) {
    case TraceType::kState:
      return "STATE";
    case TraceType::kMsg:
      return "MSG";
    case TraceType::kEvent:
      return "EVENT";
    case TraceType::kFault:
      return "FAULT";
    case TraceType::kRecovery:
      return "RECOV";
  }
  return "?";
}

void Collector::Add(TraceType type, nas::System system, std::string module,
                    std::string description) {
  records_.push_back(TraceRecord{sim_.now(), type, system, std::move(module),
                                 std::move(description)});
  const TraceRecord& r = records_.back();
  CNV_LOG_DEBUG << FormatClock(r.time) << " [" << ToString(r.type) << "] ["
                << nas::ToString(r.system) << "] [" << r.module << "] "
                << r.description;
  if (tap_) tap_(r);
}

}  // namespace cnv::trace
