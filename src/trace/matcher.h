// Sequence matching on collected traces: the validation phase compares a
// captured log against the message sequence the screening counterexample
// anticipates (§3.3, "compare them with the anticipated operations").
#pragma once

#include <string>
#include <vector>

#include "trace/record.h"

namespace cnv::trace {

struct SequenceMatch {
  bool matched = false;
  // When not matched: index of the first expectation that never occurred
  // (in order) and its text.
  std::size_t failed_index = 0;
  std::string missing;
};

// Checks that the records contain, in order (not necessarily adjacent), one
// record per needle whose description contains that needle.
SequenceMatch MatchesSequence(const std::vector<TraceRecord>& records,
                              const std::vector<std::string>& needles);

// Convenience: the anticipated sequences for the six findings, usable
// directly against a device log from the corresponding scenario.
const std::vector<std::string>& AnticipatedS1Sequence();
const std::vector<std::string>& AnticipatedS2LossSequence();
const std::vector<std::string>& AnticipatedCsfbSequence();

}  // namespace cnv::trace
