#include "trace/qxdm.h"

#include <cstdio>

#include "util/strings.h"

namespace cnv::trace {
namespace {

std::optional<TraceType> ParseType(const std::string& s) {
  if (s == "STATE") return TraceType::kState;
  if (s == "MSG") return TraceType::kMsg;
  if (s == "EVENT") return TraceType::kEvent;
  if (s == "FAULT") return TraceType::kFault;
  if (s == "RECOV") return TraceType::kRecovery;
  return std::nullopt;
}

std::optional<nas::System> ParseSystem(const std::string& s) {
  if (s == "3G") return nas::System::k3G;
  if (s == "4G") return nas::System::k4G;
  if (s == "none") return nas::System::kNone;
  return std::nullopt;
}

// Extracts the next "[field]" starting at `pos`; advances `pos` past it.
std::optional<std::string> TakeBracketed(const std::string& line,
                                         std::size_t& pos) {
  const auto open = line.find('[', pos);
  if (open == std::string::npos) return std::nullopt;
  const auto close = line.find(']', open);
  if (close == std::string::npos) return std::nullopt;
  pos = close + 1;
  return line.substr(open + 1, close - open - 1);
}

}  // namespace

std::string FormatRecord(const TraceRecord& r) {
  return FormatClock(r.time) + " [" + ToString(r.type) + "] [" +
         nas::ToString(r.system) + "] [" + r.module + "] " + r.description;
}

std::string FormatLog(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += FormatRecord(r);
    out += '\n';
  }
  return out;
}

std::optional<TraceRecord> ParseRecord(const std::string& line) {
  // Timestamp: "hh:mm:ss.mmm".
  int h = 0, m = 0, s = 0, ms = 0;
  int consumed = 0;
  if (std::sscanf(line.c_str(), "%d:%d:%d.%d%n", &h, &m, &s, &ms,
                  &consumed) != 4) {
    return std::nullopt;
  }
  if (m < 0 || m > 59 || s < 0 || s > 59 || ms < 0 || ms > 999 || h < 0) {
    return std::nullopt;
  }
  TraceRecord r;
  r.time = static_cast<SimTime>(h) * kHour + static_cast<SimTime>(m) * kMinute +
           static_cast<SimTime>(s) * kSecond +
           static_cast<SimTime>(ms) * kMillisecond;

  std::size_t pos = static_cast<std::size_t>(consumed);
  const auto type_s = TakeBracketed(line, pos);
  const auto sys_s = TakeBracketed(line, pos);
  const auto module_s = TakeBracketed(line, pos);
  if (!type_s || !sys_s || !module_s) return std::nullopt;

  const auto type = ParseType(*type_s);
  const auto sys = ParseSystem(*sys_s);
  if (!type || !sys) return std::nullopt;

  r.type = *type;
  r.system = *sys;
  r.module = *module_s;
  r.description = Trim(line.substr(pos));
  return r;
}

std::vector<TraceRecord> ParseLog(const std::string& text) {
  std::vector<TraceRecord> out;
  for (const auto& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    if (auto r = ParseRecord(line)) out.push_back(std::move(*r));
  }
  return out;
}

}  // namespace cnv::trace
