#include "trace/qxdm.h"

#include <cstdio>

#include "util/strings.h"

namespace cnv::trace {
namespace {

std::optional<TraceType> ParseType(const std::string& s) {
  if (s == "STATE") return TraceType::kState;
  if (s == "MSG") return TraceType::kMsg;
  if (s == "EVENT") return TraceType::kEvent;
  if (s == "FAULT") return TraceType::kFault;
  if (s == "RECOV") return TraceType::kRecovery;
  return std::nullopt;
}

std::optional<nas::System> ParseSystem(const std::string& s) {
  if (s == "3G") return nas::System::k3G;
  if (s == "4G") return nas::System::k4G;
  if (s == "none") return nas::System::kNone;
  return std::nullopt;
}

// Extracts the next "[field]" starting at `pos`; advances `pos` past it.
std::optional<std::string> TakeBracketed(const std::string& line,
                                         std::size_t& pos) {
  const auto open = line.find('[', pos);
  if (open == std::string::npos) return std::nullopt;
  const auto close = line.find(']', open);
  if (close == std::string::npos) return std::nullopt;
  pos = close + 1;
  return line.substr(open + 1, close - open - 1);
}

// --- fast path -------------------------------------------------------------
//
// The canonical FormatRecord grammar, parsed with no sscanf and no
// intermediate strings:
//
//   <h+>:<mm>:<ss>.<mmm> [<TYPE>] [<SYS>] [<MOD>] <description>
//
// Anything that deviates (leading whitespace, doubled separators, a '+'
// sign sscanf would tolerate, ...) returns nullopt here and is re-parsed by
// the permissive scanner, so the two-tier parser accepts exactly what the
// old one did and produces identical records.

bool TakeDigits(std::string_view& s, int min_digits, int max_digits,
                int* out) {
  int n = 0;
  int digits = 0;
  while (digits < max_digits && !s.empty() && s.front() >= '0' &&
         s.front() <= '9') {
    n = n * 10 + (s.front() - '0');
    s.remove_prefix(1);
    ++digits;
  }
  if (digits < min_digits) return false;
  *out = n;
  return true;
}

bool TakeLiteral(std::string_view& s, std::string_view lit) {
  if (s.substr(0, lit.size()) != lit) return false;
  s.remove_prefix(lit.size());
  return true;
}

// " [<field>]" where <field> runs to the first ']'.
bool TakeField(std::string_view& s, std::string_view* out) {
  if (!TakeLiteral(s, " [")) return false;
  const auto close = s.find(']');
  if (close == std::string_view::npos) return false;
  *out = s.substr(0, close);
  s.remove_prefix(close + 1);
  return true;
}

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

std::optional<TraceRecord> ParseRecordFast(std::string_view line) {
  std::string_view s = line;
  int h = 0, m = 0, sec = 0, ms = 0;
  // Hours may exceed two digits on long runs; minutes/seconds/millis are
  // fixed-width in the canonical format.
  if (!TakeDigits(s, 1, 9, &h)) return std::nullopt;
  if (!TakeLiteral(s, ":") || !TakeDigits(s, 2, 2, &m)) return std::nullopt;
  if (!TakeLiteral(s, ":") || !TakeDigits(s, 2, 2, &sec)) return std::nullopt;
  if (!TakeLiteral(s, ".") || !TakeDigits(s, 3, 3, &ms)) return std::nullopt;
  if (m > 59 || sec > 59) return std::nullopt;

  std::string_view type_s, sys_s, module_s;
  if (!TakeField(s, &type_s) || !TakeField(s, &sys_s) ||
      !TakeField(s, &module_s)) {
    return std::nullopt;
  }
  // The permissive scanner finds '[' anywhere; the fast path only claims
  // the canonical single-space separation, and within a field the scanner
  // would have stopped at the first ']' just like TakeField does. A '[' in
  // a *description* is fine — the description is everything that remains.
  const auto type = ParseType(std::string(type_s));
  const auto sys = ParseSystem(std::string(sys_s));
  if (!type || !sys) return std::nullopt;

  // Trim(s) without the temporary: the canonical separator is one space,
  // the description itself is stored trimmed.
  while (!s.empty() && IsAsciiSpace(s.front())) s.remove_prefix(1);
  while (!s.empty() && IsAsciiSpace(s.back())) s.remove_suffix(1);

  TraceRecord r;
  r.time = static_cast<SimTime>(h) * kHour + static_cast<SimTime>(m) * kMinute +
           static_cast<SimTime>(sec) * kSecond +
           static_cast<SimTime>(ms) * kMillisecond;
  r.type = *type;
  r.system = *sys;
  r.module.assign(module_s);
  r.description.assign(s);
  return r;
}

}  // namespace

std::string FormatRecord(const TraceRecord& r) {
  return FormatClock(r.time) + " [" + ToString(r.type) + "] [" +
         nas::ToString(r.system) + "] [" + r.module + "] " + r.description;
}

std::string FormatLog(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += FormatRecord(r);
    out += '\n';
  }
  return out;
}

std::optional<TraceRecord> ParseRecord(std::string_view sv_line) {
  if (auto fast = ParseRecordFast(sv_line)) return fast;
  // The permissive scanner needs a null-terminated buffer for sscanf; the
  // fast path above already handled the canonical (hot) shape copy-free.
  const std::string line(sv_line);
  // Timestamp: "hh:mm:ss.mmm".
  int h = 0, m = 0, s = 0, ms = 0;
  int consumed = 0;
  if (std::sscanf(line.c_str(), "%d:%d:%d.%d%n", &h, &m, &s, &ms,
                  &consumed) != 4) {
    return std::nullopt;
  }
  if (m < 0 || m > 59 || s < 0 || s > 59 || ms < 0 || ms > 999 || h < 0) {
    return std::nullopt;
  }
  TraceRecord r;
  r.time = static_cast<SimTime>(h) * kHour + static_cast<SimTime>(m) * kMinute +
           static_cast<SimTime>(s) * kSecond +
           static_cast<SimTime>(ms) * kMillisecond;

  std::size_t pos = static_cast<std::size_t>(consumed);
  const auto type_s = TakeBracketed(line, pos);
  const auto sys_s = TakeBracketed(line, pos);
  const auto module_s = TakeBracketed(line, pos);
  if (!type_s || !sys_s || !module_s) return std::nullopt;

  const auto type = ParseType(*type_s);
  const auto sys = ParseSystem(*sys_s);
  if (!type || !sys) return std::nullopt;

  r.type = *type;
  r.system = *sys;
  r.module = *module_s;
  r.description = Trim(line.substr(pos));
  return r;
}

std::vector<TraceRecord> ParseLog(const std::string& text) {
  return ParseLogStrict(text, nullptr);
}

std::vector<TraceRecord> ParseLogStrict(const std::string& text,
                                        ParseLogStats* stats) {
  std::vector<TraceRecord> out;
  auto pieces = Split(text, '\n');
  // A trailing '\n' produces one empty final piece; that is the line
  // terminator, not an extra blank line.
  if (!pieces.empty() && pieces.back().empty()) pieces.pop_back();
  std::size_t line_no = 0;
  for (const auto& line : pieces) {
    ++line_no;
    if (stats) stats->lines = line_no;
    if (Trim(line).empty()) {
      if (stats) ++stats->blank;
      continue;
    }
    if (auto r = ParseRecord(line)) {
      out.push_back(std::move(*r));
      if (stats) ++stats->parsed;
    } else if (stats) {
      ++stats->skipped;
      if (stats->skipped_lines.size() < ParseLogStats::kMaxSkippedLines) {
        stats->skipped_lines.push_back(line_no);
      }
    }
  }
  return out;
}

}  // namespace cnv::trace
