// In-memory trace collector attached to a simulated device (the stand-in
// for QXDM / XCAL-Mobile debugging mode).
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.h"
#include "trace/record.h"

namespace cnv::trace {

class Collector {
 public:
  explicit Collector(const sim::Simulator& sim) : sim_(sim) {}
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  void Add(TraceType type, nas::System system, std::string module,
           std::string description);

  void State(nas::System system, std::string module, std::string description) {
    Add(TraceType::kState, system, std::move(module), std::move(description));
  }
  void Msg(nas::System system, std::string module, std::string description) {
    Add(TraceType::kMsg, system, std::move(module), std::move(description));
  }
  void Event(nas::System system, std::string module,
             std::string description) {
    Add(TraceType::kEvent, system, std::move(module), std::move(description));
  }
  void Fault(nas::System system, std::string module, std::string description) {
    Add(TraceType::kFault, system, std::move(module), std::move(description));
  }
  void Recovery(nas::System system, std::string module,
                std::string description) {
    Add(TraceType::kRecovery, system, std::move(module),
        std::move(description));
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

 private:
  const sim::Simulator& sim_;
  std::vector<TraceRecord> records_;
};

}  // namespace cnv::trace
