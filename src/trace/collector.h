// In-memory trace collector attached to a simulated device (the stand-in
// for QXDM / XCAL-Mobile debugging mode).
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "trace/record.h"

namespace cnv::trace {

class Collector {
 public:
  explicit Collector(const sim::Simulator& sim) : sim_(sim) {}
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  void Add(TraceType type, nas::System system, std::string module,
           std::string description);

  void State(nas::System system, std::string module, std::string description) {
    Add(TraceType::kState, system, std::move(module), std::move(description));
  }
  void Msg(nas::System system, std::string module, std::string description) {
    Add(TraceType::kMsg, system, std::move(module), std::move(description));
  }
  void Event(nas::System system, std::string module,
             std::string description) {
    Add(TraceType::kEvent, system, std::move(module), std::move(description));
  }
  void Fault(nas::System system, std::string module, std::string description) {
    Add(TraceType::kFault, system, std::move(module), std::move(description));
  }
  void Recovery(nas::System system, std::string module,
                std::string description) {
    Add(TraceType::kRecovery, system, std::move(module),
        std::move(description));
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // Live tap: invoked with every record the moment it is collected, after
  // it is appended to records(). Lets an online consumer (the rtv gateway)
  // verify a running testbed in real time instead of post-processing the
  // buffer. Pass nullptr to detach.
  using Tap = std::function<void(const TraceRecord&)>;
  void SetTap(Tap tap) { tap_ = std::move(tap); }

 private:
  const sim::Simulator& sim_;
  std::vector<TraceRecord> records_;
  Tap tap_;
};

}  // namespace cnv::trace
