// Text serialization of trace records in the modem-log style of §3.3:
//
//   12:01:05.250 [MSG] [3G] [MM] Location Updating Request sent
//
// The parser round-trips the formatter's output, so captured logs can be
// saved and re-analyzed offline like real QXDM exports. Timestamps are
// millisecond-granular (the paper's hh:mm:ss.ms format), so parsing a
// formatted log truncates sub-millisecond detail.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.h"

namespace cnv::trace {

std::string FormatRecord(const TraceRecord& r);
std::string FormatLog(const std::vector<TraceRecord>& records);

// Parses one formatted line; std::nullopt on malformed input. Lines in the
// canonical FormatRecord shape take an allocation-light fast path (the
// streaming gateway parses millions of records per second through this);
// anything else falls back to the permissive scanner, so accepted inputs
// and parse results are unchanged.
std::optional<TraceRecord> ParseRecord(std::string_view line);

// Parses a whole log, skipping blank and malformed lines.
std::vector<TraceRecord> ParseLog(const std::string& text);

// What ParseLog silently skips, made visible: line counts plus the
// 1-based numbers of the malformed (non-blank, unparseable) lines.
struct ParseLogStats {
  std::size_t lines = 0;    // total lines seen (split on '\n')
  std::size_t parsed = 0;   // lines that yielded a record
  std::size_t blank = 0;    // whitespace-only lines (skipped, not an error)
  std::size_t skipped = 0;  // malformed lines (skipped with a count)
  // 1-based line numbers of the skipped lines, capped at kMaxSkippedLines
  // so a corrupt multi-gigabyte capture cannot balloon the report.
  std::vector<std::size_t> skipped_lines;
  static constexpr std::size_t kMaxSkippedLines = 64;
};

// ParseLog with malformed-line accounting: same records, same order, but
// `stats` (optional) reports exactly which lines were dropped.
std::vector<TraceRecord> ParseLogStrict(const std::string& text,
                                        ParseLogStats* stats);

}  // namespace cnv::trace
