// Text serialization of trace records in the modem-log style of §3.3:
//
//   12:01:05.250 [MSG] [3G] [MM] Location Updating Request sent
//
// The parser round-trips the formatter's output, so captured logs can be
// saved and re-analyzed offline like real QXDM exports. Timestamps are
// millisecond-granular (the paper's hh:mm:ss.ms format), so parsing a
// formatted log truncates sub-millisecond detail.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/record.h"

namespace cnv::trace {

std::string FormatRecord(const TraceRecord& r);
std::string FormatLog(const std::vector<TraceRecord>& records);

// Parses one formatted line; std::nullopt on malformed input.
std::optional<TraceRecord> ParseRecord(const std::string& line);

// Parses a whole log, skipping blank and malformed lines.
std::vector<TraceRecord> ParseLog(const std::string& text);

}  // namespace cnv::trace
