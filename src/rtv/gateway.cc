#include "rtv/gateway.h"

#include <chrono>

#include "obs/export.h"
#include "trace/qxdm.h"

namespace cnv::rtv {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Monitor-latency buckets in microseconds: sub-microsecond steady state,
// tail capturing scheduler hiccups.
std::vector<double> LatencyMicrosBounds() {
  return {0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000};
}

}  // namespace

Gateway::Gateway(GatewayConfig config)
    : config_(config), ring_(config.ring_capacity) {}

Gateway::~Gateway() { Finish(); }

void Gateway::Start() {
  if (started_ || !config_.threaded) return;
  started_ = true;
  consumer_ = std::thread([this] { ConsumeLoop(); });
}

void Gateway::Feed(std::uint32_t stream, std::string_view bytes) {
  auto [it, inserted] =
      parsers_.try_emplace(stream, config_.max_line_bytes);
  if (inserted) streams_.fetch_add(1, std::memory_order_relaxed);
  it->second.Feed(bytes, [&](trace::TraceRecord&& r, std::uint64_t ordinal) {
    Item item;
    item.stream = stream;
    item.ordinal = ordinal;
    item.record = std::move(r);
    Enqueue(std::move(item));
  });
  MirrorIngestStats(stream, it->second);
}

void Gateway::CloseStream(std::uint32_t stream) {
  const auto it = parsers_.find(stream);
  if (it == parsers_.end()) return;
  it->second.Finish([&](trace::TraceRecord&& r, std::uint64_t ordinal) {
    Item item;
    item.stream = stream;
    item.ordinal = ordinal;
    item.record = std::move(r);
    Enqueue(std::move(item));
  });
  MirrorIngestStats(stream, it->second);
}

// Republishes this stream's (monotonic) parser totals into the shared
// atomics by adding the delta since the last mirror, so the consumer can
// snapshot ingest counters without touching the producer-owned parser map.
void Gateway::MirrorIngestStats(std::uint32_t stream,
                                const StreamParser& parser) {
  const auto& ps = parser.stats();
  StreamParser::Stats& prev = mirrored_[stream];
  bytes_in_.fetch_add(ps.bytes - prev.bytes, std::memory_order_relaxed);
  lines_in_.fetch_add(ps.lines - prev.lines, std::memory_order_relaxed);
  records_in_.fetch_add(ps.records - prev.records, std::memory_order_relaxed);
  lines_skipped_.fetch_add(ps.skipped - prev.skipped,
                           std::memory_order_relaxed);
  lines_overlong_.fetch_add(ps.overlong - prev.overlong,
                            std::memory_order_relaxed);
  prev = ps;
}

void Gateway::Enqueue(Item item) {
  if (config_.latency_sample_every != 0 &&
      item.ordinal % config_.latency_sample_every == 0) {
    item.pushed_ns = NowNs();
  }
  if (!config_.threaded || !started_) {
    Process(item);
    return;
  }
  if (config_.backpressure == Backpressure::kBlock) {
    while (!ring_.TryPush(std::move(item))) {
      std::this_thread::yield();
    }
  } else if (!ring_.TryPush(std::move(item))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Gateway::Process(Item& item) {
  const std::size_t before = alerts_.size();
  auto [it, inserted] = monitors_.try_emplace(item.stream, item.stream);
  it->second.Step(item.record, item.ordinal, &alerts_);
  ++processed_;
  last_record_time_ = item.record.time;
  for (std::size_t i = before; i < alerts_.size(); ++i) {
    registry_.GetCounter("rtv.alerts", "alerts emitted by the S1-S6 monitors")
        .Increment();
    registry_
        .GetCounter("rtv.alerts." + ToString(alerts_[i].kind),
                    "alerts for one finding")
        .Increment();
    if (on_alert_) on_alert_(alerts_[i]);
  }
  if (item.pushed_ns != 0) {
    const double us =
        static_cast<double>(NowNs() - item.pushed_ns) / 1000.0;
    registry_
        .GetHistogram("rtv.record_latency_us", LatencyMicrosBounds(),
                      "sampled push-to-processed latency per record")
        .Observe(us);
  }
  if ((processed_ & 1023) == 0) {
    const std::size_t depth = ring_.SizeApprox();
    if (depth > queue_peak_) queue_peak_ = depth;
    registry_.GetGauge("rtv.queue_depth", "ring occupancy, sampled")
        .Set(static_cast<double>(depth));
  }
  MaybeSnapshot();
}

void Gateway::ConsumeLoop() {
  Item item;
  for (;;) {
    if (ring_.TryPop(&item)) {
      Process(item);
      continue;
    }
    if (done_.load(std::memory_order_acquire)) {
      // The producer has stopped pushing; drain whatever raced in between
      // the failed pop above and the flag read, then exit.
      while (ring_.TryPop(&item)) Process(item);
      return;
    }
    std::this_thread::yield();
  }
}

void Gateway::MaybeSnapshot() {
  if (config_.snapshot_every == 0 || config_.snapshot_path.empty()) return;
  if (processed_ % config_.snapshot_every != 0) return;
  FoldCountersIntoRegistry();
  ++snapshots_;
  obs::WriteFile(config_.snapshot_path, registry_.ToJson(last_record_time_));
}

void Gateway::FoldCountersIntoRegistry() {
  // Ingest-side totals live in plain counters on the producer; the consumer
  // reads them only through this fold, which either runs on the consumer
  // against monotonic values (snapshot: slightly stale is fine) or after
  // the join (exact). Counters are monotonic, so Set-style overwrite via
  // a gauge would lose the help text; instead recreate increments.
  const auto set_counter = [&](const std::string& name, std::uint64_t v,
                               const std::string& help) {
    auto& c = registry_.GetCounter(name, help);
    if (v >= c.value()) c.Increment(v - c.value());
  };
  GatewayStats s = stats();
  set_counter("rtv.bytes_in", s.bytes_in, "trace bytes ingested");
  set_counter("rtv.lines_in", s.lines_in, "log lines seen");
  set_counter("rtv.records_in", s.records_in, "records parsed");
  set_counter("rtv.lines_skipped", s.lines_skipped, "malformed lines");
  set_counter("rtv.lines_overlong", s.lines_overlong,
              "lines discarded at the length cap");
  set_counter("rtv.records_dropped", s.records_dropped,
              "records dropped by count-and-drop backpressure");
  set_counter("rtv.records_processed", s.records_processed,
              "records stepped through the monitors");
  registry_.GetGauge("rtv.streams", "distinct ingest streams")
      .Set(static_cast<double>(s.streams));
  registry_.GetGauge("rtv.queue_peak", "highest sampled ring occupancy")
      .Set(static_cast<double>(queue_peak_));
}

void Gateway::Finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& [stream, parser] : parsers_) {
    CloseStream(stream);
  }
  done_.store(true, std::memory_order_release);
  if (started_ && consumer_.joinable()) consumer_.join();
  started_ = false;
  FoldCountersIntoRegistry();
}

GatewayStats Gateway::stats() const {
  GatewayStats s;
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.lines_in = lines_in_.load(std::memory_order_relaxed);
  s.records_in = records_in_.load(std::memory_order_relaxed);
  s.lines_skipped = lines_skipped_.load(std::memory_order_relaxed);
  s.lines_overlong = lines_overlong_.load(std::memory_order_relaxed);
  s.streams = static_cast<std::size_t>(
      streams_.load(std::memory_order_relaxed));
  s.records_dropped = dropped_.load(std::memory_order_relaxed);
  s.records_processed = processed_;
  s.alerts = alerts_.size();
  s.snapshots = snapshots_;
  s.queue_peak = queue_peak_;
  return s;
}

void FeedRecord(Gateway& gw, std::uint32_t stream,
                const trace::TraceRecord& r) {
  std::string line = trace::FormatRecord(r);
  line += '\n';
  gw.Feed(stream, line);
}

}  // namespace cnv::rtv
