// Online property monitors: the paper's S1-S6 findings recast as streaming
// automata over one trace stream. Each record is abstracted through conf's
// kRules mapping table (conf::MatchAbstractKind) and stepped through a set
// of small per-stream state machines; the moment a finding's signature
// completes, a typed Alert is emitted — instead of probing defect counters
// after the run, as the batch harness does.
//
// The signatures (also documented in DESIGN.md "Runtime verification"):
//
//   S1  4G->3G switch, PDP context deactivated while away in 3G, switch
//       back to 4G, TAU Reject "no EPS bearer context activated".
//   S2  TAU Reject "implicitly detached" followed by the network detach —
//       the observable of a lost Attach Complete.
//   S3  CSFB call ends in 3G while a data session is active, and the RRC
//       layer reports waiting for IDLE to reselect back to 4G (stranded).
//   S4  An outgoing call dialed at the CM layer is deferred behind an
//       in-progress location update (HOL blocking).
//   S5  64QAM disabled for a CS voice call while an independent data
//       session is active on a *native* 3G attachment (a CSFB visit is
//       S3's territory, not a coupling defect).
//   S6  A location update disrupted by an inter-system switch, followed by
//       a network-originated Detach Request.
//
// Monitors see the abstract kind *and* the raw record: causes ("implicitly
// detached" vs "no EPS bearer context activated") and the dialing module
// (CM/CC vs an EMM extended service request) distinguish findings that
// share an abstract event.
#pragma once

#include <cstdint>
#include <vector>

#include "rtv/alert.h"
#include "trace/record.h"

namespace cnv::rtv {

class FindingMonitors {
 public:
  explicit FindingMonitors(std::uint32_t stream = 0) : stream_(stream) {}

  // Steps every automaton with the next record of this stream; appends any
  // alerts whose signature completed on this record. `ordinal` is the
  // record's 0-based index within the stream.
  void Step(const trace::TraceRecord& r, std::uint64_t ordinal,
            std::vector<Alert>* out);

 private:
  std::uint32_t stream_;

  // Inter-system context shared by several automata.
  bool in_3g_ = false;        // a 4G->3G switch happened, no switch back yet
  bool in_3g_csfb_ = false;   // ... and it was a CSFB fallback
  bool data_session_ = false; // UE-level data session active

  // S1: switch-out / context-loss / switch-back progression.
  bool pdp_lost_in_3g_ = false;
  bool returned_after_loss_ = false;

  // S2: a TAU Reject with the implicit-detach cause is pending.
  bool tau_implicit_reject_ = false;

  // S3: the CSFB call ended but the UE is still camped on 3G.
  bool csfb_call_ended_ = false;

  // S4: an unresolved CM-layer dial.
  bool dialed_cm_ = false;

  // S6: a location update was torn down by an inter-system switch.
  bool lu_disrupted_ = false;
};

}  // namespace cnv::rtv
