// Typed alerts emitted by the online property monitors: the moment a
// finding's signature completes in a live trace stream, the monitor emits
// one of these instead of waiting for the run to end (VeriFi-style runtime
// verification, inverted from the batch conformance harness).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace cnv::rtv {

enum class AlertKind : std::uint8_t {
  kS1,  // PDP context loss across a 4G->3G->4G round trip detaches the UE
  kS2,  // lost Attach Complete surfaces as a TAU Reject "implicitly detached"
  kS3,  // stranded in 3G after a CSFB call because data holds the channel
  kS4,  // outgoing call head-of-line blocked behind a location update
  kS5,  // CS voice call throttles an independent PS data session
  kS6,  // post-CSFB location update disrupted, network implicitly detaches
  kOverload,  // signalling storm / congestion-control activity
};

// "S1".."S6" / "OVERLOAD".
std::string ToString(AlertKind k);

struct Alert {
  AlertKind kind = AlertKind::kS1;
  std::uint32_t stream = 0;       // ingest stream the signature completed on
  SimTime time = 0;               // timestamp of the completing record
  std::uint64_t record_index = 0; // per-stream ordinal of that record
  std::string detail;             // what the signature saw

  bool operator==(const Alert&) const = default;
};

// One deterministic line per alert:
//   00:00:11.338 [ALERT] [S1] [stream 0] <detail>
// Derived only from record content, so the alert log is byte-identical for
// a given byte stream regardless of ingest chunking or wall-clock timing.
std::string FormatAlert(const Alert& a);

std::string FormatAlertLog(const std::vector<Alert>& alerts);

}  // namespace cnv::rtv
