// The online runtime-verification gateway: streaming trace ingest, a
// bounded SPSC ring hand-off, per-stream incremental abstraction and the
// S1-S6 online monitors, with live counters/gauges/histograms in an
// obs::Registry and an optional periodic JSON snapshot.
//
//   bytes --Feed()--> StreamParser (ingest thread)
//         --SpscRing<Item>--> abstraction + FindingMonitors (monitor thread)
//         --> Alert callback / alert log + metrics
//
// Threading contract: all Feed/CloseStream/Finish calls must come from one
// thread (the single producer); the gateway owns the single consumer. With
// backpressure kBlock the alert log is a pure function of the byte stream
// and the per-stream interleaving — byte-identical at any chunking. With
// kDropNewest, records arriving into a full ring are counted and dropped
// (bounded memory under bursty ingest), which trades that determinism away;
// the drop counter says exactly how much was lost.
//
// Memory is bounded by: ring capacity x record size + per-stream parser
// carry-over (<= max_line_bytes each) + per-stream monitor state (a few
// flags), so a million idle UE streams cost only their map entries.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "rtv/alert.h"
#include "rtv/monitors.h"
#include "rtv/ring.h"
#include "rtv/stream.h"

namespace cnv::rtv {

enum class Backpressure : std::uint8_t {
  kBlock,       // producer waits for ring space (lossless, deterministic)
  kDropNewest,  // count-and-drop the arriving record when the ring is full
};

struct GatewayConfig {
  std::size_t ring_capacity = 1 << 14;  // entries; rounded up to a power of 2
  Backpressure backpressure = Backpressure::kBlock;
  // false = single-threaded: Feed() runs the monitors inline (no ring, no
  // thread). Useful for offline analysis and as the bench baseline.
  bool threaded = true;
  std::size_t max_line_bytes = 64 * 1024;  // per-stream carry-over cap
  // Per-record monitor latency is wall-clock and therefore sampled, not
  // exhaustive: every Nth record is timed from ring push to monitor exit.
  std::size_t latency_sample_every = 256;
  // When nonzero, every N processed records the registry is serialized to
  // `snapshot_path` (atomic rename), so an operator can poll live state.
  std::size_t snapshot_every = 0;
  std::string snapshot_path;
};

struct GatewayStats {
  std::uint64_t bytes_in = 0;
  std::uint64_t lines_in = 0;
  std::uint64_t records_in = 0;        // parsed on the ingest side
  std::uint64_t lines_skipped = 0;     // malformed lines
  std::uint64_t lines_overlong = 0;    // discarded at the line-length cap
  std::uint64_t records_dropped = 0;   // kDropNewest rejections
  std::uint64_t records_processed = 0; // stepped through the monitors
  std::uint64_t alerts = 0;
  std::uint64_t snapshots = 0;
  std::size_t queue_peak = 0;
  std::size_t streams = 0;
};

class Gateway {
 public:
  // Invoked on the monitor thread the moment an alert fires.
  using AlertCallback = std::function<void(const Alert&)>;

  explicit Gateway(GatewayConfig config = {});
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Optional; set before Start().
  void set_alert_callback(AlertCallback cb) { on_alert_ = std::move(cb); }

  // Spawns the monitor thread (no-op when !threaded). Idempotent.
  void Start();

  // Feeds one chunk of QXDM-format bytes for `stream`. Single producer.
  void Feed(std::uint32_t stream, std::string_view bytes);

  // Flushes a trailing unterminated line of `stream`.
  void CloseStream(std::uint32_t stream);

  // Closes every stream, drains the ring, joins the monitor thread and
  // folds the final counters into the registry. Idempotent; the accessors
  // below are safe (and exact) only after Finish().
  void Finish();

  const std::vector<Alert>& alerts() const { return alerts_; }
  std::string AlertLog() const { return FormatAlertLog(alerts_); }
  GatewayStats stats() const;

  // Monitor-thread-owned while running; read it after Finish().
  obs::Registry& registry() { return registry_; }

  // Simulated timestamp of the last processed record (0 before any).
  SimTime last_record_time() const { return last_record_time_; }

 private:
  struct Item {
    std::uint32_t stream = 0;
    std::uint64_t ordinal = 0;
    std::uint64_t pushed_ns = 0;  // 0 = not latency-sampled
    trace::TraceRecord record;
  };

  void Enqueue(Item item);
  void MirrorIngestStats(std::uint32_t stream, const StreamParser& parser);
  void Process(Item& item);
  void ConsumeLoop();
  void MaybeSnapshot();
  void FoldCountersIntoRegistry();

  GatewayConfig config_;
  AlertCallback on_alert_;

  // Ingest side (producer thread). The aggregate counters are mirrored
  // into relaxed atomics after every Feed so the consumer can fold them
  // into snapshots without touching the producer-owned parser map.
  std::unordered_map<std::uint32_t, StreamParser> parsers_;
  std::unordered_map<std::uint32_t, StreamParser::Stats> mirrored_;
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> lines_in_{0};
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> lines_skipped_{0};
  std::atomic<std::uint64_t> lines_overlong_{0};
  std::atomic<std::uint64_t> streams_{0};

  // Hand-off.
  SpscRing<Item> ring_;
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> dropped_{0};

  // Monitor side (consumer thread; main thread after Finish()).
  std::unordered_map<std::uint32_t, FindingMonitors> monitors_;
  std::vector<Alert> alerts_;
  obs::Registry registry_;
  std::uint64_t processed_ = 0;
  std::uint64_t snapshots_ = 0;
  std::size_t queue_peak_ = 0;
  SimTime last_record_time_ = 0;

  std::thread consumer_;
  bool started_ = false;
  bool finished_ = false;
};

// Formats `r` as one QXDM log line and feeds it to `gw` on `stream`: the
// glue a live tap uses (see stack::Testbed::TapTraces) to verify a running
// testbed in real time over the same byte-stream boundary files and
// sockets use.
void FeedRecord(Gateway& gw, std::uint32_t stream,
                const trace::TraceRecord& r);

}  // namespace cnv::rtv
