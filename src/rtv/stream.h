// Incremental, chunk-boundary-safe QXDM log parser: the ingest boundary of
// the runtime-verification gateway. Bytes arrive in arbitrary chunks (pipe
// reads, socket segments); complete lines are parsed in place through
// trace::ParseRecord and a partial trailing line is carried over to the
// next chunk, so the record stream is byte-for-byte identical to parsing
// the whole buffer at once — at any chunking, including one byte at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "trace/qxdm.h"
#include "trace/record.h"

namespace cnv::rtv {

class StreamParser {
 public:
  struct Stats {
    std::uint64_t bytes = 0;     // bytes fed
    std::uint64_t lines = 0;     // complete lines seen (incl. blank)
    std::uint64_t records = 0;   // lines that parsed into a record
    std::uint64_t blank = 0;     // whitespace-only lines
    std::uint64_t skipped = 0;   // malformed lines (counted, then dropped)
    std::uint64_t overlong = 0;  // lines discarded at the length cap
  };

  // `max_line_bytes` bounds the carry-over buffer: a stream that never
  // produces a newline (a binary file, a hostile peer) costs at most this
  // much memory; the oversized pseudo-line is counted and discarded.
  explicit StreamParser(std::size_t max_line_bytes = 64 * 1024)
      : max_line_bytes_(max_line_bytes) {}

  // Feeds one chunk; calls sink(record, ordinal) for every record that
  // completes, where ordinal is the 0-based index of the record within this
  // stream (identical to its index in a whole-buffer ParseLog).
  template <typename Sink>
  void Feed(std::string_view chunk, Sink&& sink) {
    stats_.bytes += chunk.size();
    while (!chunk.empty()) {
      const auto nl = chunk.find('\n');
      if (nl == std::string_view::npos) {
        Carry(chunk);
        return;
      }
      if (pending_.empty() && !overflow_) {
        // Whole line inside this chunk: parse without copying.
        EmitLine(chunk.substr(0, nl), sink);
      } else {
        Carry(chunk.substr(0, nl));
        if (overflow_) {
          ++stats_.lines;
          ++stats_.overlong;
          overflow_ = false;
        } else {
          EmitLine(pending_, sink);
        }
        pending_.clear();
      }
      chunk.remove_prefix(nl + 1);
    }
  }

  // Flushes a trailing line that never got its newline (ParseLog parses the
  // final unterminated segment too). Idempotent once drained.
  template <typename Sink>
  void Finish(Sink&& sink) {
    if (overflow_) {
      ++stats_.lines;
      ++stats_.overlong;
      overflow_ = false;
    } else if (!pending_.empty()) {
      EmitLine(pending_, sink);
    }
    pending_.clear();
  }

  const Stats& stats() const { return stats_; }

 private:
  template <typename Sink>
  void EmitLine(std::string_view line, Sink&& sink) {
    ++stats_.lines;
    if (IsBlank(line)) {
      ++stats_.blank;
      return;
    }
    if (auto r = trace::ParseRecord(line)) {
      sink(std::move(*r), stats_.records);
      ++stats_.records;
    } else {
      ++stats_.skipped;
    }
  }

  static bool IsBlank(std::string_view line) {
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n' && c != '\v' &&
          c != '\f') {
        return false;
      }
    }
    return true;
  }

  void Carry(std::string_view piece) {
    if (overflow_) return;  // already discarding this pseudo-line
    if (pending_.size() + piece.size() > max_line_bytes_) {
      pending_.clear();
      overflow_ = true;
      return;
    }
    pending_.append(piece);
  }

  const std::size_t max_line_bytes_;
  std::string pending_;   // partial line carried across chunk boundaries
  bool overflow_ = false; // current line blew the cap; discard until '\n'
  Stats stats_;
};

}  // namespace cnv::rtv
