#include "rtv/monitors.h"

#include <string_view>

#include "conf/abstract.h"
#include "util/strings.h"
#include "util/time.h"

namespace cnv::rtv {

std::string ToString(AlertKind k) {
  switch (k) {
    case AlertKind::kS1:
      return "S1";
    case AlertKind::kS2:
      return "S2";
    case AlertKind::kS3:
      return "S3";
    case AlertKind::kS4:
      return "S4";
    case AlertKind::kS5:
      return "S5";
    case AlertKind::kS6:
      return "S6";
    case AlertKind::kOverload:
      return "OVERLOAD";
  }
  return "?";
}

std::string FormatAlert(const Alert& a) {
  return FormatClock(a.time) + " [ALERT] [" + ToString(a.kind) + "] [stream " +
         std::to_string(a.stream) + "] " + a.detail;
}

std::string FormatAlertLog(const std::vector<Alert>& alerts) {
  std::string out;
  for (const auto& a : alerts) {
    out += FormatAlert(a);
    out += '\n';
  }
  return out;
}

namespace {

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

void FindingMonitors::Step(const trace::TraceRecord& r, std::uint64_t ordinal,
                           std::vector<Alert>* out) {
  // A power-on is a session boundary: whatever episode the previous capture
  // ended in (e.g. stranded in 3G after a CSFB call) must not bleed into
  // the new one. Matched on the raw record because power-on is not part of
  // conf's abstraction vocabulary.
  if (r.module == "UE" && Contains(r.description, "device powers on")) {
    *this = FindingMonitors(stream_);
    return;
  }
  const auto kind = conf::MatchAbstractKind(r);
  if (!kind) return;

  const auto emit = [&](AlertKind k, std::string detail) {
    out->push_back(Alert{k, stream_, r.time, ordinal, std::move(detail)});
  };

  using conf::AbstractKind;
  switch (*kind) {
    case AbstractKind::kCsfbFallback:
      in_3g_ = true;
      in_3g_csfb_ = true;
      csfb_call_ended_ = false;
      break;
    case AbstractKind::kSwitch4gTo3g:
      in_3g_ = true;
      in_3g_csfb_ = false;
      csfb_call_ended_ = false;
      break;
    case AbstractKind::kSwitch3gTo4g:
      if (pdp_lost_in_3g_) returned_after_loss_ = true;
      in_3g_ = false;
      in_3g_csfb_ = false;
      csfb_call_ended_ = false;
      break;

    case AbstractKind::kPdpDeactivated:
      if (in_3g_) pdp_lost_in_3g_ = true;
      break;

    case AbstractKind::kTauReject:
      if (returned_after_loss_ &&
          Contains(r.description, "no EPS bearer context activated")) {
        emit(AlertKind::kS1,
             "TAU rejected for the PDP context lost during the 3G visit; "
             "network detach imminent");
        pdp_lost_in_3g_ = false;
        returned_after_loss_ = false;
      }
      if (Contains(r.description, "implicitly detached")) {
        tau_implicit_reject_ = true;
      }
      break;

    case AbstractKind::kNetworkDetach:
      if (tau_implicit_reject_ &&
          Contains(r.description, "Tracking Area Update Reject")) {
        emit(AlertKind::kS2,
             "network had already dropped the registration (lost Attach "
             "Complete): TAU Reject \"implicitly detached\"");
        tau_implicit_reject_ = false;
      }
      if (lu_disrupted_ && Contains(r.description, "network Detach Request")) {
        emit(AlertKind::kS6,
             "implicit detach after the post-CSFB location update was "
             "disrupted by the inter-system switch");
        lu_disrupted_ = false;
      }
      break;

    case AbstractKind::kDataSessionStart:
      data_session_ = true;
      break;
    case AbstractKind::kDataSessionStop:
      data_session_ = false;
      break;

    case AbstractKind::kCallEnded:
      if (in_3g_csfb_) csfb_call_ended_ = true;
      dialed_cm_ = false;
      break;
    case AbstractKind::kAwaitReselection:
      if (csfb_call_ended_ && data_session_) {
        emit(AlertKind::kS3,
             "stranded in 3G after the CSFB call: active data session keeps "
             "the RRC channel, blocking reselection to 4G");
        csfb_call_ended_ = false;
      }
      break;

    case AbstractKind::kCallDialed:
      // Only a CM-layer dial can be HOL-blocked behind a location update;
      // a 4G dial surfaces as an EMM extended service request and rides
      // the CSFB path instead.
      if (r.module == "CM/CC") dialed_cm_ = true;
      break;
    case AbstractKind::kCmServiceRequest:
    case AbstractKind::kCallEstablished:
      dialed_cm_ = false;
      break;
    case AbstractKind::kCallDeferred:
      if (dialed_cm_) {
        emit(AlertKind::kS4,
             "outgoing call head-of-line blocked behind the in-progress "
             "location update");
        dialed_cm_ = false;
      }
      break;

    case AbstractKind::kChannelDegraded:
      if (data_session_ && !in_3g_csfb_) {
        emit(AlertKind::kS5,
             "CS voice call throttles the active data session (64QAM "
             "disabled on the shared channel)");
      }
      break;

    case AbstractKind::kLuDisrupted:
      lu_disrupted_ = true;
      break;

    case AbstractKind::kServiceRecovered:
      // Re-attach closes the mobility-management episode: stale partial
      // signatures must not bleed into the next one.
      pdp_lost_in_3g_ = false;
      returned_after_loss_ = false;
      tau_implicit_reject_ = false;
      lu_disrupted_ = false;
      break;

    case AbstractKind::kStormBegins:
      emit(AlertKind::kOverload, Trim(r.description));
      break;
    case AbstractKind::kCongestionBackoff:
      emit(AlertKind::kOverload,
           "UE entered congestion backoff: " + Trim(r.description));
      break;

    default:
      break;  // vocabulary the automata do not consume
  }
}

}  // namespace cnv::rtv
