// Bounded lock-free single-producer/single-consumer ring buffer: the
// hand-off between the runtime-verification gateway's ingest thread (which
// parses trace bytes into records) and its monitor thread (which abstracts
// records and steps the property automata).
//
// The contract is the classic SPSC one (cf. the ZMQ push/pull pattern the
// ngic-rtc data plane uses between its interface and worker threads): one
// thread calls TryPush, one thread calls TryPop, and the indices are
// published with release stores / consumed with acquire loads so every slot
// written by the producer is fully visible to the consumer before it can be
// popped. No locks, no allocation after construction, TSan-clean.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace cnv::rtv {

// Rounds up to the next power of two (minimum 2) so the index masks stay
// branch-free.
constexpr std::size_t RingCapacityFor(std::size_t requested) {
  std::size_t cap = 2;
  while (cap < requested) cap <<= 1;
  return cap;
}

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : slots_(RingCapacityFor(capacity)), mask_(slots_.size() - 1) {}
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  // Producer side. Returns false when the ring is full (the caller decides
  // whether to spin — backpressure — or count-and-drop); the value is left
  // untouched on failure, so a blocked push can simply retry.
  bool TryPush(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool TryPush(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    slots_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;  // empty
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Racy size estimate for gauges; exact only when both threads are quiet.
  std::size_t SizeApprox() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> slots_;
  const std::size_t mask_;
  // Head (consumer cursor) and tail (producer cursor) live on separate
  // cache lines so the two threads do not false-share.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace cnv::rtv
