// The one in-process dispatch implementation of the distributed execution
// core. Every parallel runner — the grid coordinator's thread backend,
// mck::ParallelExplore's wave phases, and anything else that needs
// deterministic fan-out — dispatches through an Executor rather than
// wiring its own pool, so slice determinism, drain semantics and busy
// accounting live in exactly one place.
//
// The Executor wraps par::WorkerPool (the low-level thread primitive) and
// re-exports its two deterministic shapes:
//
//   ParallelFor        contiguous slices of [0, n); the split depends only
//                      on (n, jobs) — the shape wave-synchronized
//                      algorithms need for byte-identical merges.
//   ParallelEachUntil  dynamically claimed indices with a graceful drain —
//                      the shape for irregular cell grids, where results
//                      are merged by index so scheduling never shows.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "par/pool.h"

namespace cnv::dist {

class Executor {
 public:
  // jobs == 0 selects hardware concurrency; jobs == 1 runs inline with no
  // threads (byte-identical to the pre-pool serial code paths).
  explicit Executor(int jobs = 0) : pool_(jobs) {}

  int jobs() const { return pool_.jobs(); }

  void ParallelFor(
      std::size_t n,
      const std::function<void(int, std::size_t, std::size_t)>& fn) {
    pool_.ParallelFor(n, fn);
  }

  void ParallelEach(std::size_t n,
                    const std::function<void(int, std::size_t)>& fn) {
    pool_.ParallelEach(n, fn);
  }

  // Once *stop becomes true, workers finish claimed indices and claim no
  // more; the call still barriers. stop == nullptr never drains.
  void ParallelEachUntil(std::size_t n,
                         const std::function<void(int, std::size_t)>& fn,
                         const std::atomic<bool>* stop) {
    pool_.ParallelEachUntil(n, fn, stop);
  }

  // Cumulative per-worker busy seconds; telemetry only.
  std::vector<double> BusySeconds() const { return pool_.BusySeconds(); }

 private:
  par::WorkerPool pool_;
};

}  // namespace cnv::dist
