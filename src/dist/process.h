// Multi-process backend of the distributed execution core: a supervised
// fleet of forked worker processes, each speaking the length-prefixed frame
// protocol (dist/frame.h) over a socketpair. Failure-domain isolation is
// the headline contract — a worker that crashes (SIGKILL, OOM, abort,
// nonzero exit), hangs (heartbeat silence) or overruns the cell watchdog
// takes down nothing but itself: the coordinator detects it, reassigns the
// lease deterministically, respawns a replacement, and keeps going.
//
// Robustness machinery:
//   heartbeats   every worker pings at heartbeat_ms / 4; a worker silent
//                for heartbeat_ms is declared dead and SIGKILLed
//   leases       a cell is leased to exactly one worker; a dead worker's
//                lease is reassigned (requeued) immediately
//   strikes      each death/failure/timeout attributed to a cell counts a
//                strike; at quarantine_after strikes the cell is
//                *quarantined* into the report instead of livelocking the
//                fleet on a poisoned input
//   drain        a cancel token stops new leases; in-flight cells finish
//                and are merged, idle workers get a drain frame and exit
//
// Determinism: results merge by cell index, so the final grid output is
// byte-identical to the in-process backends at any worker count and under
// any kill schedule (kill plans are the fuzzer's injection seam).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/grid.h"

namespace cnv::dist {

// Exit status of a worker that drained after a direct SIGTERM; mirrors
// ckpt::kInterruptedExitCode.
inline constexpr int kWorkerDrainExitCode = 75;

struct FleetCallbacks {
  // A cell completed; merge + checkpoint. Called on the coordinator thread.
  std::function<void(std::size_t cell, std::string outcome, std::string carry)>
      on_result;
  // A cell accumulated quarantine_after strikes and was quarantined.
  std::function<void(const QuarantineRecord&)> on_quarantine;
  // Carry-in for a cell about to be leased (chained grids thread their
  // chain token through this; unchained grids return "").
  std::function<std::string(std::size_t cell)> carry_for;
};

struct FleetStats {
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_respawns = 0;
  std::uint64_t heartbeat_timeouts = 0;
  std::uint64_t watchdog_kills = 0;
  std::uint64_t clean_failures = 0;  // kError results
  bool interrupted = false;
};

// Runs `pending` (cell indices, ascending) on a fleet of worker processes.
// Chained grids keep exactly one lease in flight; unchained grids keep one
// lease per worker. Returns supervision stats; per-cell outcomes are
// delivered through the callbacks.
FleetStats RunProcessFleet(CellGrid& grid, const DistOptions& options,
                           const std::vector<std::size_t>& pending,
                           const FleetCallbacks& callbacks);

}  // namespace cnv::dist
