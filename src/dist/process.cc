#include "dist/process.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "dist/frame.h"
#include "par/pool.h"

namespace cnv::dist {

namespace {

using Clock = std::chrono::steady_clock;

// --- worker side ------------------------------------------------------------

// Direct-SIGTERM drain flag of the *worker* process (the coordinator's
// CancelToken lives in a different process entirely).
volatile std::sig_atomic_t g_worker_drain = 0;

extern "C" void WorkerSigterm(int) { g_worker_drain = 1; }

// Serializes frame writes between the cell-running thread and the
// heartbeat thread of one worker.
struct WorkerLink {
  int fd = -1;
  std::mutex mu;

  bool Send(const Frame& f) {
    std::lock_guard<std::mutex> lock(mu);
    return WriteFrame(fd, f);
  }
};

// The forked child's main loop; never returns. Runs leases, heartbeats in a
// side thread, drains on SIGTERM or a drain frame.
[[noreturn]] void WorkerMain(int fd, std::uint32_t slot, CellGrid& grid,
                             std::int64_t heartbeat_ms) {
  // SIGTERM must interrupt the blocking read (no SA_RESTART) so a drain
  // request is noticed between frames.
  struct sigaction sa {};
  sa.sa_handler = WorkerSigterm;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  WorkerLink link;
  link.fd = fd;

  {
    ckpt::BinaryWriter hello;
    hello.U64(static_cast<std::uint64_t>(getpid()));
    link.Send({FrameType::kHello, slot, kNoCell, hello.Take()});
  }

  // Heartbeat thread: pings at a quarter of the liveness deadline, always —
  // only a genuinely stopped process (hang, SIGSTOP, livelock) goes silent.
  std::atomic<bool> stop_heartbeat{false};
  const auto tick = std::chrono::milliseconds(
      std::max<std::int64_t>(1, heartbeat_ms / 4));
  std::thread heartbeat([&] {
    while (!stop_heartbeat.load(std::memory_order_relaxed)) {
      if (!link.Send({FrameType::kHeartbeat, slot, kNoCell, {}})) return;
      std::this_thread::sleep_for(tick);
    }
  });
  heartbeat.detach();

  FrameParser parser;
  char buf[64 * 1024];
  int exit_code = 0;
  for (;;) {
    if (g_worker_drain != 0) {
      exit_code = kWorkerDrainExitCode;
      break;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;  // drain flag checked at loop top
      break;                         // coordinator gone
    }
    if (n == 0) break;  // coordinator closed (crashed or finished)
    parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));

    Frame frame;
    bool done = false;
    while (parser.Next(&frame) == FrameParser::Status::kFrame) {
      if (frame.type == FrameType::kDrain) {
        done = true;
        break;
      }
      if (frame.type != FrameType::kLease) continue;
      CellOutcome out;
      try {
        out = grid.RunCell(static_cast<std::size_t>(frame.cell),
                           frame.payload);
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
      } catch (...) {
        out.ok = false;
        out.error = "unknown exception";
      }
      if (out.ok) {
        link.Send({FrameType::kResult, slot, frame.cell,
                   EncodeResultPayload(out.payload, out.carry)});
      } else {
        link.Send({FrameType::kError, slot, frame.cell, out.error});
      }
      if (g_worker_drain != 0) {
        exit_code = kWorkerDrainExitCode;
        done = true;
        break;
      }
    }
    if (parser.poisoned() || done) break;
  }

  link.Send({FrameType::kBye, slot, kNoCell, {}});
  stop_heartbeat.store(true, std::memory_order_relaxed);
  // _exit: no destructors, no atexit — the worker shares nothing with the
  // coordinator beyond its socket.
  _exit(exit_code);
}

// --- coordinator side -------------------------------------------------------

struct WorkerSlot {
  pid_t pid = -1;
  int fd = -1;
  bool alive = false;
  bool draining = false;                    // drain frame sent
  std::uint64_t lease = kNoCell;            // cell in flight, or none
  Clock::time_point last_seen{};
  Clock::time_point lease_start{};
  FrameParser parser;
};

class Fleet {
 public:
  Fleet(CellGrid& grid, const DistOptions& options,
        const std::vector<std::size_t>& pending,
        const FleetCallbacks& callbacks)
      : grid_(grid),
        options_(options),
        callbacks_(callbacks),
        queue_(pending.begin(), pending.end()) {
    unresolved_ = pending.size();
    strikes_.assign(grid.size(), 0);
    resolved_.assign(grid.size(), false);
    const int requested = par::ResolveJobs(options.workers);
    fleet_size_ = grid.chained()
                      ? 1
                      : static_cast<int>(std::min<std::size_t>(
                            static_cast<std::size_t>(requested),
                            std::max<std::size_t>(pending.size(), 1)));
    slots_.resize(static_cast<std::size_t>(fleet_size_));
    kill_events_ = options.kill_plan.events;
    std::stable_sort(kill_events_.begin(), kill_events_.end(),
                     [](const KillEvent& a, const KillEvent& b) {
                       return a.after_results < b.after_results;
                     });
  }

  FleetStats Run() {
    // A dead worker's socket raises EPIPE on write; that must be a return
    // value, not a process-killing signal.
    struct sigaction ign {}, old_pipe {};
    ign.sa_handler = SIG_IGN;
    sigemptyset(&ign.sa_mask);
    sigaction(SIGPIPE, &ign, &old_pipe);

    for (int s = 0; s < fleet_size_; ++s) Spawn(s);

    while (unresolved_ > 0 && !halt_) {
      if (Cancelled() && LeasesInFlight() == 0) {
        stats_.interrupted = true;
        break;
      }
      if (AliveCount() == 0) {
        // Every worker is gone with work left (fork failures); one respawn
        // sweep, then give up rather than spin.
        for (int s = 0; s < fleet_size_ && AliveCount() == 0; ++s) Spawn(s);
        if (AliveCount() == 0) {
          stats_.interrupted = true;
          break;
        }
      }
      GrantLeases();
      FireKillPlan();
      PollOnce();
      CheckDeadlines();
      ReapChildren();
    }
    if (Cancelled() && unresolved_ > 0) stats_.interrupted = true;

    Shutdown();
    sigaction(SIGPIPE, &old_pipe, nullptr);
    return stats_;
  }

 private:
  bool Cancelled() const {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  }

  int LeasesInFlight() const {
    int n = 0;
    for (const auto& s : slots_) {
      if (s.alive && s.lease != kNoCell) ++n;
    }
    return n;
  }

  int AliveCount() const {
    int n = 0;
    for (const auto& s : slots_) {
      if (s.alive) ++n;
    }
    return n;
  }

  void Spawn(int slot) {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;
    const pid_t pid = fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return;
    }
    if (pid == 0) {
      // Child: drop every coordinator-side fd, keep only our channel.
      ::close(sv[0]);
      for (const auto& s : slots_) {
        if (s.fd >= 0) ::close(s.fd);
      }
      WorkerMain(sv[1], static_cast<std::uint32_t>(slot), grid_,
                 options_.heartbeat_ms);
    }
    ::close(sv[1]);
    WorkerSlot& w = slots_[static_cast<std::size_t>(slot)];
    w = WorkerSlot{};
    w.pid = pid;
    w.fd = sv[0];
    w.alive = true;
    w.last_seen = Clock::now();
  }

  void GrantLeases() {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      WorkerSlot& w = slots_[s];
      if (!w.alive || w.lease != kNoCell || w.draining) continue;
      if (Cancelled() || queue_.empty()) {
        // Nothing more for this worker: drain it once the grid is done or
        // cancelled (idle workers linger until Shutdown otherwise).
        if (Cancelled()) {
          w.draining = true;
          WriteFrame(w.fd, {FrameType::kDrain, kCoordinatorSlot, kNoCell, {}});
        }
        continue;
      }
      // Chained grids: one lease in flight, strictly in index order.
      if (grid_.chained() && LeasesInFlight() > 0) return;
      const std::size_t cell = queue_.front();
      queue_.pop_front();
      const std::string carry =
          callbacks_.carry_for ? callbacks_.carry_for(cell) : std::string();
      if (!WriteFrame(w.fd, {FrameType::kLease, kCoordinatorSlot,
                             static_cast<std::uint64_t>(cell), carry})) {
        queue_.push_front(cell);
        HandleDeath(static_cast<int>(s));
        continue;
      }
      w.lease = cell;
      w.lease_start = Clock::now();
    }
  }

  void FireKillPlan() {
    while (next_kill_ < kill_events_.size() &&
           kill_events_[next_kill_].after_results <= merged_results_) {
      const int slot = kill_events_[next_kill_].slot;
      ++next_kill_;
      if (slot < 0 || slot >= fleet_size_) continue;
      WorkerSlot& w = slots_[static_cast<std::size_t>(slot)];
      if (!w.alive) continue;
      kill(w.pid, SIGKILL);
      // Death is then observed through the normal EOF/reap path.
    }
  }

  void PollOnce() {
    std::vector<pollfd> fds;
    std::vector<int> fd_slot;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (!slots_[s].alive) continue;
      fds.push_back({slots_[s].fd, POLLIN, 0});
      fd_slot.push_back(static_cast<int>(s));
    }
    if (fds.empty()) return;
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc <= 0) return;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      ReadWorker(fd_slot[k]);
    }
  }

  void ReadWorker(int slot) {
    WorkerSlot& w = slots_[static_cast<std::size_t>(slot)];
    if (!w.alive) return;
    char buf[64 * 1024];
    const ssize_t n = ::read(w.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return;
      HandleDeath(slot);
      return;
    }
    if (n == 0) {
      HandleDeath(slot);
      return;
    }
    w.parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    Frame frame;
    for (;;) {
      const FrameParser::Status st = w.parser.Next(&frame);
      if (st == FrameParser::Status::kNeedMore) break;
      if (st == FrameParser::Status::kBad) {
        // A corrupt stream is a crashed worker.
        HandleDeath(slot);
        return;
      }
      w.last_seen = Clock::now();
      switch (frame.type) {
        case FrameType::kHello:
        case FrameType::kHeartbeat:
          break;
        case FrameType::kResult:
          HandleResult(slot, frame);
          break;
        case FrameType::kError:
          HandleCleanFailure(slot, frame);
          break;
        case FrameType::kBye:
          // Clean exit; not a death unless a lease is still open (it never
          // is: Bye follows the last result).
          break;
        default:
          break;
      }
    }
  }

  void HandleResult(int slot, const Frame& frame) {
    WorkerSlot& w = slots_[static_cast<std::size_t>(slot)];
    const std::size_t cell = static_cast<std::size_t>(frame.cell);
    if (w.lease == frame.cell) w.lease = kNoCell;
    if (cell >= resolved_.size() || resolved_[cell]) return;
    std::string outcome;
    std::string carry;
    if (!DecodeResultPayload(frame.payload, &outcome, &carry)) {
      Strike(cell, "result payload failed to decode");
      return;
    }
    resolved_[cell] = true;
    --unresolved_;
    ++merged_results_;
    if (callbacks_.on_result) {
      callbacks_.on_result(cell, std::move(outcome), std::move(carry));
    }
  }

  void HandleCleanFailure(int slot, const Frame& frame) {
    WorkerSlot& w = slots_[static_cast<std::size_t>(slot)];
    if (w.lease == frame.cell) w.lease = kNoCell;
    ++stats_.clean_failures;
    Strike(static_cast<std::size_t>(frame.cell),
           std::string(frame.payload));
  }

  // One strike against `cell` (worker death, clean failure, watchdog kill);
  // requeues or quarantines.
  void Strike(std::size_t cell, std::string error) {
    if (cell >= resolved_.size() || resolved_[cell]) return;
    ++strikes_[cell];
    if (options_.quarantine_after > 0 &&
        strikes_[cell] >=
            static_cast<std::uint32_t>(options_.quarantine_after)) {
      resolved_[cell] = true;
      --unresolved_;
      QuarantineRecord q;
      q.index = cell;
      q.name = grid_.CellName(cell);
      q.strikes = strikes_[cell];
      q.last_error = std::move(error);
      if (callbacks_.on_quarantine) callbacks_.on_quarantine(q);
      // A chained grid cannot continue past a quarantined cell — later
      // cells have no carry-in. Leave them pending and stop.
      if (grid_.chained()) {
        queue_.clear();
        halt_ = true;
      }
      return;
    }
    // Reassign. Chained grids must retry the same cell next (index order);
    // unchained cells go to the back so one flaky cell cannot starve the
    // queue.
    if (grid_.chained()) {
      queue_.push_front(cell);
    } else {
      queue_.push_back(cell);
    }
  }

  void HandleDeath(int slot) {
    WorkerSlot& w = slots_[static_cast<std::size_t>(slot)];
    if (!w.alive) return;
    w.alive = false;
    ::close(w.fd);
    w.fd = -1;
    kill(w.pid, SIGKILL);  // idempotent; covers hung-not-dead workers
    int status = 0;
    waitpid(w.pid, &status, 0);
    const bool drained_clean =
        WIFEXITED(status) && (WEXITSTATUS(status) == 0 ||
                              WEXITSTATUS(status) == kWorkerDrainExitCode);
    const std::uint64_t lease = w.lease;
    w.lease = kNoCell;
    if (lease != kNoCell &&
        !resolved_[static_cast<std::size_t>(lease)]) {
      ++stats_.worker_deaths;
      Strike(static_cast<std::size_t>(lease), "worker died mid-cell");
    } else if (!drained_clean) {
      ++stats_.worker_deaths;
    }
    // Keep the fleet at strength while work remains.
    if (!Cancelled() && unresolved_ > 0 &&
        (!queue_.empty() || LeasesInFlight() < static_cast<int>(unresolved_))) {
      Spawn(slot);
      ++stats_.worker_respawns;
    }
  }

  void CheckDeadlines() {
    const auto now = Clock::now();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      WorkerSlot& w = slots_[s];
      if (!w.alive) continue;
      const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                              now - w.last_seen)
                              .count();
      if (options_.heartbeat_ms > 0 && silent > options_.heartbeat_ms) {
        ++stats_.heartbeat_timeouts;
        HandleDeath(static_cast<int>(s));
        continue;
      }
      if (options_.retry.cell_timeout_ms > 0 && w.lease != kNoCell) {
        const auto busy =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - w.lease_start)
                .count();
        if (busy > options_.retry.cell_timeout_ms) {
          ++stats_.watchdog_kills;
          HandleDeath(static_cast<int>(s));
        }
      }
    }
  }

  void ReapChildren() {
    // Catch crashes whose EOF we have not read yet (rare ordering); the
    // socket path handles the common case.
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      WorkerSlot& w = slots_[s];
      if (!w.alive) continue;
      int status = 0;
      const pid_t r = waitpid(w.pid, &status, WNOHANG);
      if (r != w.pid) continue;
      // Child exited; drain any frames still buffered in the socket before
      // declaring the lease dead.
      const bool crashed =
          !(WIFEXITED(status) &&
            (WEXITSTATUS(status) == 0 ||
             WEXITSTATUS(status) == kWorkerDrainExitCode));
      ReadWorkerUntilEof(static_cast<int>(s), crashed);
    }
  }

  void ReadWorkerUntilEof(int slot, bool crashed) {
    WorkerSlot& w = slots_[static_cast<std::size_t>(slot)];
    char buf[64 * 1024];
    for (;;) {
      if (!w.alive) return;
      const ssize_t n = ::read(w.fd, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      // Feed through the normal parser path.
      w.parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      Frame frame;
      while (w.parser.Next(&frame) == FrameParser::Status::kFrame) {
        w.last_seen = Clock::now();
        if (frame.type == FrameType::kResult) HandleResult(slot, frame);
        if (frame.type == FrameType::kError) HandleCleanFailure(slot, frame);
      }
      if (w.parser.poisoned()) break;
    }
    // `waitpid` already reaped the child in ReapChildren; HandleDeath's
    // blocking waitpid would hang, so mark it gone first.
    if (w.alive) {
      w.alive = false;
      ::close(w.fd);
      w.fd = -1;
      const std::uint64_t lease = w.lease;
      w.lease = kNoCell;
      if (lease != kNoCell && !resolved_[static_cast<std::size_t>(lease)]) {
        ++stats_.worker_deaths;
        Strike(static_cast<std::size_t>(lease), "worker died mid-cell");
      } else if (crashed) {
        // Idle worker crashed (e.g. killed between merging its result and
        // the next lease): no lease to strike, but still a death.
        ++stats_.worker_deaths;
      }
      if (!Cancelled() && unresolved_ > 0) {
        Spawn(slot);
        ++stats_.worker_respawns;
      }
    }
  }

  void Shutdown() {
    for (auto& w : slots_) {
      if (!w.alive) continue;
      WriteFrame(w.fd, {FrameType::kDrain, kCoordinatorSlot, kNoCell, {}});
    }
    const auto deadline = Clock::now() + std::chrono::milliseconds(500);
    for (auto& w : slots_) {
      if (!w.alive) continue;
      int status = 0;
      bool we_killed = false;
      for (;;) {
        const pid_t r = waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid || r < 0) break;
        if (Clock::now() > deadline) {
          kill(w.pid, SIGKILL);
          we_killed = true;
          waitpid(w.pid, &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      // A worker that was already dead of a signal we did not send (e.g. a
      // kill-plan SIGKILL racing the last merged result) still counts as a
      // death; its result made it into the merge, only the accounting
      // would otherwise be lost.
      const bool drained_clean =
          WIFEXITED(status) && (WEXITSTATUS(status) == 0 ||
                                WEXITSTATUS(status) == kWorkerDrainExitCode);
      if (!we_killed && !drained_clean) ++stats_.worker_deaths;
      ::close(w.fd);
      w.fd = -1;
      w.alive = false;
    }
  }

  CellGrid& grid_;
  const DistOptions& options_;
  const FleetCallbacks& callbacks_;
  std::deque<std::size_t> queue_;
  std::vector<WorkerSlot> slots_;
  std::vector<std::uint32_t> strikes_;
  std::vector<char> resolved_;
  std::size_t unresolved_ = 0;
  std::uint64_t merged_results_ = 0;
  std::vector<KillEvent> kill_events_;
  std::size_t next_kill_ = 0;
  int fleet_size_ = 1;
  bool halt_ = false;  // chained grid hit a quarantine; stop leasing
  FleetStats stats_;
};

}  // namespace

FleetStats RunProcessFleet(CellGrid& grid, const DistOptions& options,
                           const std::vector<std::size_t>& pending,
                           const FleetCallbacks& callbacks) {
  if (pending.empty()) return {};
  Fleet fleet(grid, options, pending, callbacks);
  return fleet.Run();
}

}  // namespace cnv::dist
