// The coordinator of the distributed execution core: one RunGrid() entry
// point that every sweep runner dispatches through instead of carrying its
// own loop. The coordinator owns, in one place:
//
//   resume        manifest + cell blobs load upfront; damaged or
//                 semantically invalid blobs are discarded and re-run
//   dispatch      thread backend (dist::Executor, caller participates,
//                 workers == 1 is byte-identical to the old serial loops)
//                 or process backend (supervised fleet, dist/process.h)
//   checkpointing every completed cell is persisted atomically and the
//                 manifest updated, so a coordinator crash resumes exactly
//                 like the single-process runners always have
//   retries       ckpt::RunWithRetries per cell on the thread backend; the
//                 process backend's strike machinery on the other
//   quarantine    a cell that exhausts its strike budget is quarantined
//                 into the GridResult instead of wedging the run
//   drain         cancel stops new work; in-flight cells finish and are
//                 checkpointed; the result is marked interrupted
//
// Determinism contract: GridResult::payloads is merged by cell index, so it
// is byte-identical across backends, worker counts and kill schedules.
#pragma once

#include "dist/grid.h"

namespace cnv::dist {

// Runs every cell of `grid` under `options`. Never throws grid exceptions
// out: a throwing cell is a failed attempt (retried, then quarantined).
GridResult RunGrid(CellGrid& grid, const DistOptions& options);

}  // namespace cnv::dist
