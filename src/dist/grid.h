// The shared task-graph vocabulary of the distributed execution core: a
// *cell grid* is a set of independent (or chain-dependent) tasks with
// deterministic identity. The three sweep runners — fault::CampaignRunner,
// conf::DifferentialDriver and core::ScreeningRunner — implement CellGrid
// and hand dispatch, supervision, checkpointing and retry to one
// dist::RunGrid coordinator instead of each carrying their own loop.
//
// The determinism contract that makes distribution safe: RunCell(i, carry)
// is a pure function of (i, carry) — same index and carry-in, same outcome
// payload and carry-out bytes, in any process, at any time. The coordinator
// merges outcomes *by cell index*, so the merged result is byte-identical
// across the in-process backends and the multi-process backend at any
// worker count and under any worker-kill schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/io.h"
#include "ckpt/manifest.h"

namespace cnv::dist {

// Outcome of one cell attempt. `payload` is the encoded cell result (the
// grid's own codec; the coordinator never interprets it); `carry` is the
// chain token handed to the next cell of a chained grid (e.g. the screening
// runner's shared RNG stream state).
struct CellOutcome {
  bool ok = true;
  std::string payload;
  std::string carry;
  std::string error;  // set when !ok
};

class CellGrid {
 public:
  virtual ~CellGrid() = default;

  virtual std::size_t size() const = 0;

  // Stable human-readable identity, used in quarantine reports and logs.
  virtual std::string CellName(std::size_t index) const {
    return "cell " + std::to_string(index);
  }

  // True when cell i+1's input depends on cell i's carry-out. Chained grids
  // run strictly in index order (the process backend still supervises the
  // single in-flight lease); unchained grids fan out freely.
  virtual bool chained() const { return false; }

  // Carry-in for cell 0 of a chained grid.
  virtual std::string InitialCarry() const { return {}; }

  // Recovers the carry-out from a completed cell's payload, so a resumed
  // chained grid re-enters the chain exactly where the checkpoint left it.
  // Returns false when the payload does not decode (the cell then re-runs).
  virtual bool CarryFromPayload(std::string_view payload,
                                std::string* carry) const {
    (void)payload;
    carry->clear();
    return true;
  }

  // Runs the cell. Must be deterministic in (index, carry_in) and safe to
  // call from a forked worker process or a pool thread.
  virtual CellOutcome RunCell(std::size_t index, std::string_view carry_in) = 0;
};

enum class Backend {
  kThread,   // in-process pool (workers == 1 degenerates to serial/inline)
  kProcess,  // supervised worker processes over the frame protocol
};

std::string ToString(Backend b);
bool ParseBackend(std::string_view name, Backend* out);

// Test seam: SIGKILL the worker occupying `slot` once the coordinator has
// merged `after_results` cell results. Deterministic per schedule; the
// merged grid output must be byte-identical under any schedule.
struct KillEvent {
  std::uint64_t after_results = 0;
  int slot = 0;
};

struct KillPlan {
  std::vector<KillEvent> events;
  bool empty() const { return events.empty(); }
};

struct DistOptions {
  Backend backend = Backend::kThread;
  // Worker count: 0 = hardware concurrency, 1 = inline/serial.
  int workers = 1;
  // Process-backend liveness: a worker whose last heartbeat is older than
  // this is declared dead (SIGKILLed, lease reassigned).
  std::int64_t heartbeat_ms = 2000;
  // A cell whose leases have crashed/hung/failed this many times is
  // quarantined into the report instead of livelocking the fleet.
  int quarantine_after = 3;
  // Per-cell watchdog + bounded retries (thread backend runs the post-hoc
  // watchdog; the process backend enforces cell_timeout_ms pre-emptively by
  // killing the overrunning worker).
  ckpt::RetryPolicy retry;
  // Graceful drain: no new leases once set; in-flight cells finish and are
  // checkpointed, the result is marked incomplete.
  const std::atomic<bool>* cancel = nullptr;
  // Checkpointing: when `store` is set, completed cells are persisted as
  // `cell_type` blobs with a manifest, and (with `resume`) completed cells
  // replay from their blobs exactly like an uninterrupted run.
  const ckpt::ManifestStore* store = nullptr;
  bool resume = false;
  ckpt::PayloadType cell_type = ckpt::PayloadType::kCampaignCell;
  // Resume-time semantic validation of a checksum-valid cell blob (e.g.
  // "does this decode as a RunOutcome?"). Returns false to discard the blob
  // and re-run the cell. Null accepts any blob the envelope check passed.
  std::function<bool(std::size_t index, std::string_view payload)>
      validate_payload;
  // Failure injection for the kill-schedule fuzzer (process backend only).
  KillPlan kill_plan;
};

enum class CellState : std::uint8_t {
  kPending = 0,     // never completed (drain interrupted the grid)
  kDone = 1,        // payload merged
  kQuarantined = 2  // poisoned: killed/failed quarantine_after workers
};

struct QuarantineRecord {
  std::size_t index = 0;
  std::string name;
  std::uint32_t strikes = 0;  // worker deaths + clean failures attributed
  std::string last_error;     // last clean-failure message, if any
};

struct GridResult {
  // One entry per cell, merged by index; empty for pending/quarantined.
  std::vector<std::string> payloads;
  std::vector<CellState> states;
  std::vector<QuarantineRecord> quarantined;  // index order
  ckpt::ExecutionStats exec;
  // Process-backend supervision accounting (stderr only, like exec).
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_respawns = 0;
  std::uint64_t heartbeat_timeouts = 0;
  bool complete = true;  // every cell done or quarantined

  bool Done(std::size_t i) const { return states[i] == CellState::kDone; }
};

}  // namespace cnv::dist
