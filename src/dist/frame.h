// Wire protocol between the distributed-grid coordinator and its worker
// processes: length-prefixed, versioned, checksummed frames over a
// byte-stream transport (a socketpair today; the framing is transport
// agnostic, following the ngic-rtc push/pull idiom of one tiny header per
// message).
//
// Frame layout (host-endian; workers are forked from the coordinator, so
// both ends always share one ABI):
//
//   magic        u32   "DVNC" (kFrameMagic)
//   version      u32   protocol version (kProtocolVersion)
//   type         u32   FrameType
//   worker       u32   sender slot (coordinator sends 0xffffffff)
//   cell         u64   grid cell index the frame refers to (or kNoCell)
//   payload_size u64
//   payload_sum  u64   FNV-1a over the payload bytes
//   payload      payload_size bytes
//
// A frame that fails any validation (magic, version, checksum, oversized
// declared payload) poisons the connection: the coordinator treats the
// worker as crashed, which is exactly the failure-domain contract — a
// corrupt byte stream is indistinguishable from a dying worker and is
// handled by the same lease-reassignment path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cnv::dist {

inline constexpr std::uint32_t kFrameMagic = 0x444E5643u;  // "CNVD" in LE
inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::uint64_t kNoCell = ~0ull;
inline constexpr std::uint32_t kCoordinatorSlot = 0xffffffffu;
// Upper bound on a declared payload; a corrupt size field must not turn
// into a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

enum class FrameType : std::uint32_t {
  kHello = 1,      // worker -> coordinator, once after spawn (payload: pid)
  kLease = 2,      // coordinator -> worker: run `cell` (payload: carry-in)
  kResult = 3,     // worker -> coordinator (payload: outcome blob + carry)
  kError = 4,      // worker -> coordinator: cell failed cleanly (payload: msg)
  kHeartbeat = 5,  // worker -> coordinator liveness tick
  kDrain = 6,      // coordinator -> worker: finish + exit gracefully
  kBye = 7,        // worker -> coordinator: clean shutdown acknowledgement
};

std::string ToString(FrameType t);

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t worker = kCoordinatorSlot;
  std::uint64_t cell = kNoCell;
  std::string payload;
};

// Serializes header + payload.
std::string EncodeFrame(const Frame& frame);

// Incremental decoder over an arbitrary chunking of the byte stream. Feed
// bytes as they arrive; Next() pops complete frames in order.
class FrameParser {
 public:
  enum class Status {
    kFrame,     // *out holds the next frame
    kNeedMore,  // no complete frame buffered yet
    kBad,       // stream corrupt (bad magic/version/checksum/size)
  };

  void Feed(std::string_view bytes);
  Status Next(Frame* out);

  // Set once a kBad was returned; the stream cannot be resynchronized.
  bool poisoned() const { return poisoned_; }
  const std::string& error() const { return error_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string error_;
};

// Blocking write of one whole frame to `fd`, retrying on EINTR and partial
// writes. Returns false when the peer is gone (EPIPE/ECONNRESET/...).
bool WriteFrame(int fd, const Frame& frame);

// Result/lease payload helpers: a result carries the cell outcome blob plus
// the carry-out token for chained grids.
std::string EncodeResultPayload(std::string_view outcome,
                                std::string_view carry);
bool DecodeResultPayload(std::string_view payload, std::string* outcome,
                         std::string* carry);

}  // namespace cnv::dist
