#include "dist/coordinator.h"

#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "dist/executor.h"
#include "dist/process.h"

namespace cnv::dist {

namespace {

// Shared merge/checkpoint state. All mutation happens under `mu` on the
// thread backend; the process backend's callbacks all run on the
// coordinator thread, where the lock is uncontended.
struct Merge {
  CellGrid& grid;
  const DistOptions& options;
  GridResult& result;
  ckpt::Manifest manifest;
  std::mutex mu;

  Merge(CellGrid& g, const DistOptions& o, GridResult& r)
      : grid(g), options(o), result(r) {
    manifest.cells.resize(g.size());
  }

  // Commits a completed cell: merge by index, persist blob + manifest.
  // Caller holds no lock.
  void Commit(std::size_t i, std::string payload) {
    std::lock_guard<std::mutex> lock(mu);
    result.payloads[i] = std::move(payload);
    result.states[i] = CellState::kDone;
    ++result.exec.cells_run;
    manifest.cells[i].done = 1;
    if (options.store != nullptr &&
        options.store->SaveCell(i, options.cell_type, result.payloads[i])) {
      ++result.exec.checkpoints_written;
      manifest.cells[i].outcome_digest = ckpt::Fnv1a64(result.payloads[i]);
      options.store->SaveManifest(manifest);
    }
  }

  void Account(const ckpt::RetryOutcome& attempt) {
    std::lock_guard<std::mutex> lock(mu);
    result.exec.retries += attempt.retries;
    result.exec.watchdog_hits += attempt.watchdog_hits;
  }

  void Quarantine(QuarantineRecord q) {
    std::lock_guard<std::mutex> lock(mu);
    const std::size_t i = q.index;
    result.states[i] = CellState::kQuarantined;
    result.quarantined.push_back(std::move(q));
    // Deliberately NOT marked done in the manifest: a future resume gets
    // another chance at the cell (the poison may have been environmental).
  }
};

// One attempt of one cell, exception-safe: a throwing RunCell is a failed
// attempt like any other.
CellOutcome Attempt(CellGrid& grid, std::size_t i, std::string_view carry) {
  try {
    return grid.RunCell(i, carry);
  } catch (const std::exception& e) {
    CellOutcome out;
    out.ok = false;
    out.error = e.what();
    return out;
  } catch (...) {
    CellOutcome out;
    out.ok = false;
    out.error = "unknown exception";
    return out;
  }
}

bool Cancelled(const DistOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

// Thread backend, unchained: the historical campaign/diff loop — dynamic
// claiming with graceful drain, merge + checkpoint under the mutex.
void RunThreadUnchained(Merge& m, const std::vector<std::size_t>& pending) {
  Executor exec(m.options.workers);
  exec.ParallelEachUntil(
      pending.size(),
      [&](int, std::size_t k) {
        const std::size_t i = pending[k];
        CellOutcome out;
        const ckpt::RetryOutcome attempt =
            ckpt::RunWithRetries(m.options.retry, [&] {
              out = Attempt(m.grid, i, {});
              return out.ok;
            });
        m.Account(attempt);
        // `out.ok` without `attempt.ok`: every attempt was functionally
        // fine but overran the cooperative watchdog. The outcome is
        // deterministic, just slow — keep the last attempt's result
        // (the historical RunWithRetries contract) instead of poisoning
        // the cell.
        if (attempt.ok || out.ok) {
          m.Commit(i, std::move(out.payload));
        } else if (m.options.quarantine_after > 0) {
          QuarantineRecord q;
          q.index = i;
          q.name = m.grid.CellName(i);
          q.strikes = static_cast<std::uint32_t>(1 + attempt.retries);
          q.last_error = out.error;
          m.Quarantine(std::move(q));
        }
        // quarantine disabled: the cell stays pending (incomplete result).
      },
      m.options.cancel);
}

// Thread backend, chained: the historical screening loop — strict index
// order, carry threaded cell to cell, retries replaying the same carry-in.
void RunThreadChained(Merge& m) {
  const std::size_t n = m.grid.size();
  std::string carry = m.grid.InitialCarry();
  for (std::size_t i = 0; i < n; ++i) {
    if (Cancelled(m.options)) break;
    if (m.result.states[i] == CellState::kDone) {
      // Resumed cell: fold its carry-out into the chain (validated during
      // the resume pass, so this cannot fail here).
      m.grid.CarryFromPayload(m.result.payloads[i], &carry);
      continue;
    }
    CellOutcome out;
    const ckpt::RetryOutcome attempt =
        ckpt::RunWithRetries(m.options.retry, [&] {
          out = Attempt(m.grid, i, carry);
          return out.ok;
        });
    m.Account(attempt);
    // As in the unchained loop: a slow-but-successful last attempt keeps
    // its outcome (and its carry, so the chain continues).
    if (!attempt.ok && !out.ok) {
      if (m.options.quarantine_after > 0) {
        QuarantineRecord q;
        q.index = i;
        q.name = m.grid.CellName(i);
        q.strikes = static_cast<std::uint32_t>(1 + attempt.retries);
        q.last_error = out.error;
        m.Quarantine(std::move(q));
      }
      break;  // no carry-out: the chain cannot continue either way
    }
    carry = out.carry;
    m.Commit(i, std::move(out.payload));
  }
}

void RunProcess(Merge& m, const std::vector<std::size_t>& pending) {
  FleetCallbacks cb;
  cb.on_result = [&m](std::size_t i, std::string outcome, std::string) {
    m.Commit(i, std::move(outcome));
  };
  cb.on_quarantine = [&m](const QuarantineRecord& q) { m.Quarantine(q); };
  cb.carry_for = [&m](std::size_t i) -> std::string {
    if (!m.grid.chained()) return {};
    // Chained cells complete strictly in index order, so every cell before
    // i has a merged payload; fold the chain from the start.
    std::string carry = m.grid.InitialCarry();
    for (std::size_t j = 0; j < i; ++j) {
      m.grid.CarryFromPayload(m.result.payloads[j], &carry);
    }
    return carry;
  };
  const FleetStats stats = RunProcessFleet(m.grid, m.options, pending, cb);
  m.result.worker_deaths = stats.worker_deaths;
  m.result.worker_respawns = stats.worker_respawns;
  m.result.heartbeat_timeouts = stats.heartbeat_timeouts;
  m.result.exec.retries += stats.worker_deaths + stats.clean_failures;
  m.result.exec.watchdog_hits += stats.watchdog_kills;
  if (stats.interrupted) m.result.exec.interrupted = true;
}

}  // namespace

std::string ToString(Backend b) {
  switch (b) {
    case Backend::kThread:
      return "thread";
    case Backend::kProcess:
      return "process";
  }
  return "unknown";
}

bool ParseBackend(std::string_view name, Backend* out) {
  if (name == "thread") {
    *out = Backend::kThread;
    return true;
  }
  if (name == "process") {
    *out = Backend::kProcess;
    return true;
  }
  return false;
}

GridResult RunGrid(CellGrid& grid, const DistOptions& options) {
  const std::size_t n = grid.size();
  GridResult result;
  result.payloads.resize(n);
  result.states.assign(n, CellState::kPending);
  result.exec.cells_total = n;

  Merge m(grid, options, result);

  // Resume: replay completed cells from their blobs; anything damaged,
  // stale or semantically invalid is discarded and re-runs.
  if (options.store != nullptr) {
    if (options.resume) {
      ckpt::Manifest loaded;
      if (options.store->LoadManifest(&loaded) == ckpt::LoadStatus::kOk &&
          loaded.cells.size() == n) {
        m.manifest = std::move(loaded);
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (m.manifest.cells[i].done == 0) continue;
        std::string blob;
        bool ok = options.store->LoadCell(i, options.cell_type,
                                          m.manifest.cells[i].outcome_digest,
                                          &blob) == ckpt::LoadStatus::kOk;
        if (ok && options.validate_payload) {
          ok = options.validate_payload(i, blob);
        }
        if (ok && grid.chained()) {
          std::string carry;
          ok = grid.CarryFromPayload(blob, &carry);
        }
        if (ok) {
          result.payloads[i] = std::move(blob);
          result.states[i] = CellState::kDone;
          ++result.exec.cells_resumed;
        } else {
          m.manifest.cells[i] = {};
          ++result.exec.corrupt_cells_discarded;
        }
      }
    }
    options.store->SaveManifest(m.manifest);
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.states[i] == CellState::kPending) pending.push_back(i);
  }

  if (!pending.empty()) {
    if (options.backend == Backend::kProcess) {
      RunProcess(m, pending);
    } else if (grid.chained()) {
      RunThreadChained(m);
    } else {
      RunThreadUnchained(m, pending);
    }
  }

  if (Cancelled(options)) result.exec.interrupted = true;
  result.complete = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.states[i] == CellState::kPending) {
      result.complete = false;
      break;
    }
  }
  return result;
}

}  // namespace cnv::dist
