#include "dist/frame.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ckpt/io.h"

namespace cnv::dist {

namespace {

struct WireHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t type;
  std::uint32_t worker;
  std::uint64_t cell;
  std::uint64_t payload_size;
  std::uint64_t payload_sum;
};
static_assert(std::is_trivially_copyable_v<WireHeader>);

bool ValidType(std::uint32_t t) {
  return t >= static_cast<std::uint32_t>(FrameType::kHello) &&
         t <= static_cast<std::uint32_t>(FrameType::kBye);
}

}  // namespace

std::string ToString(FrameType t) {
  switch (t) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kLease:
      return "lease";
    case FrameType::kResult:
      return "result";
    case FrameType::kError:
      return "error";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kDrain:
      return "drain";
    case FrameType::kBye:
      return "bye";
  }
  return "unknown";
}

std::string EncodeFrame(const Frame& frame) {
  WireHeader h{};
  h.magic = kFrameMagic;
  h.version = kProtocolVersion;
  h.type = static_cast<std::uint32_t>(frame.type);
  h.worker = frame.worker;
  h.cell = frame.cell;
  h.payload_size = frame.payload.size();
  h.payload_sum = ckpt::Fnv1a64(frame.payload);

  std::string out;
  out.reserve(sizeof(h) + frame.payload.size());
  out.append(reinterpret_cast<const char*>(&h), sizeof(h));
  out.append(frame.payload);
  return out;
}

void FrameParser::Feed(std::string_view bytes) {
  if (poisoned_) return;
  // Compact the consumed prefix before it grows unbounded.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
}

FrameParser::Status FrameParser::Next(Frame* out) {
  if (poisoned_) return Status::kBad;
  if (buf_.size() - pos_ < sizeof(WireHeader)) return Status::kNeedMore;

  WireHeader h{};
  std::memcpy(&h, buf_.data() + pos_, sizeof(h));
  if (h.magic != kFrameMagic) {
    poisoned_ = true;
    error_ = "bad magic";
    return Status::kBad;
  }
  if (h.version != kProtocolVersion) {
    poisoned_ = true;
    error_ = "protocol version mismatch";
    return Status::kBad;
  }
  if (!ValidType(h.type)) {
    poisoned_ = true;
    error_ = "unknown frame type";
    return Status::kBad;
  }
  if (h.payload_size > kMaxFramePayload) {
    poisoned_ = true;
    error_ = "oversized payload";
    return Status::kBad;
  }
  if (buf_.size() - pos_ < sizeof(h) + h.payload_size) {
    return Status::kNeedMore;
  }

  const std::string_view payload(buf_.data() + pos_ + sizeof(h),
                                 static_cast<std::size_t>(h.payload_size));
  if (ckpt::Fnv1a64(payload) != h.payload_sum) {
    poisoned_ = true;
    error_ = "payload checksum mismatch";
    return Status::kBad;
  }

  out->type = static_cast<FrameType>(h.type);
  out->worker = h.worker;
  out->cell = h.cell;
  out->payload.assign(payload);
  pos_ += sizeof(h) + static_cast<std::size_t>(h.payload_size);
  return Status::kFrame;
}

bool WriteFrame(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string EncodeResultPayload(std::string_view outcome,
                                std::string_view carry) {
  ckpt::BinaryWriter w;
  w.Str(outcome);
  w.Str(carry);
  return w.Take();
}

bool DecodeResultPayload(std::string_view payload, std::string* outcome,
                         std::string* carry) {
  ckpt::BinaryReader r(payload);
  std::string o = r.Str();
  std::string c = r.Str();
  if (!r.AtEnd()) return false;
  *outcome = std::move(o);
  *carry = std::move(c);
  return true;
}

}  // namespace cnv::dist
