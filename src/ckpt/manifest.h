// Campaign manifests and self-healing primitives. A manifest records, per
// sweep cell (one (profile, plan, seed) triple or one screening catalog
// cell), whether the cell has completed and a digest of its outcome; the
// completed outcome itself lives in a sibling `cell_<index>.bin` checkpoint
// file. A resumed campaign loads the manifest, replays completed cells from
// their blobs, and runs only what is missing — the final report is
// byte-identical to an uninterrupted run.
//
// Self-healing pieces shared by the campaign and screening runners:
//   RetryPolicy / RunWithRetries  per-cell wall-clock watchdog + bounded
//                                 retries with exponential backoff
//   CancelToken / InstallSignalDrain  SIGINT/SIGTERM request a graceful
//                                 drain: in-flight cells finish, the
//                                 manifest is flushed, and the driver exits
//                                 with kInterruptedExitCode
//   ExecutionStats                process-level accounting (resumes,
//                                 retries, watchdog hits, ...). Never part
//                                 of a byte-compared report — print it to
//                                 stderr.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/io.h"

namespace cnv::ckpt {

// --- graceful cancellation --------------------------------------------------

class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  const std::atomic<bool>& flag() const { return cancelled_; }

 private:
  std::atomic<bool> cancelled_{false};
};

// Exit status a driver uses after a graceful drain, distinct from both
// success and failure (mirrors sysexits' EX_TEMPFAIL).
inline constexpr int kInterruptedExitCode = 75;

// Arms SIGINT/SIGTERM to cancel `token` (async-signal-safe: the handler
// only stores to an atomic). Pass nullptr to disarm. One token at a time.
void InstallSignalDrain(CancelToken* token);

// --- watchdog + retries -----------------------------------------------------

struct RetryPolicy {
  // Longest tolerated wall-clock time for one cell attempt; 0 disables the
  // watchdog. The check is post-hoc: the attempt runs to completion and its
  // result is discarded (and retried) when it overran.
  std::int64_t cell_timeout_ms = 0;
  int max_retries = 0;
  std::int64_t backoff_initial_ms = 100;
  double backoff_multiplier = 2.0;
  // Ceiling on a single backoff sleep; 0 = uncapped. Keeps a long retry
  // ladder from doubling into hour-long sleeps (or overflowing the int64
  // milliseconds under an aggressive multiplier).
  std::int64_t backoff_max_ms = 60'000;
  // Test seams: a fake millisecond clock (sampled before and after each
  // attempt) and a sleep override so backoff tests don't wait.
  std::function<std::int64_t()> wall_ms_for_test;
  std::function<void(std::int64_t)> sleep_ms_for_test;
};

struct RetryOutcome {
  bool ok = false;  // some attempt returned true within the watchdog budget
  std::uint64_t retries = 0;
  std::uint64_t watchdog_hits = 0;
};

// Runs `attempt` under the policy: up to 1 + max_retries tries, exponential
// backoff between tries, an attempt counting as failed when it returns
// false or overruns cell_timeout_ms.
RetryOutcome RunWithRetries(const RetryPolicy& policy,
                            const std::function<bool()>& attempt);

// --- execution accounting ---------------------------------------------------

struct ExecutionStats {
  std::uint64_t cells_total = 0;
  std::uint64_t cells_resumed = 0;   // replayed from checkpoint blobs
  std::uint64_t cells_run = 0;       // actually executed this process
  std::uint64_t retries = 0;
  std::uint64_t watchdog_hits = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t corrupt_cells_discarded = 0;
  bool interrupted = false;

  std::string ToString() const;  // single line for stderr
};

// --- manifest ---------------------------------------------------------------

struct CellRecord {
  std::uint8_t done = 0;
  std::uint64_t outcome_digest = 0;  // FNV-1a of the cell blob payload
};

struct Manifest {
  std::vector<CellRecord> cells;

  std::size_t CountDone() const;
};

inline constexpr std::uint32_t kManifestVersion = 1;

// Directory-backed store: `<dir>/manifest.ckpt` plus one
// `<dir>/cell_<index>.bin` per completed cell, all written with the
// checksummed tmp + rename protocol and guarded by the campaign's config
// digest (a resume with a different sweep definition is rejected).
class ManifestStore {
 public:
  ManifestStore(std::string dir, std::uint64_t config_digest);

  const std::string& dir() const { return dir_; }
  std::string ManifestPath() const;
  std::string CellPath(std::size_t index) const;

  bool SaveManifest(const Manifest& m) const;
  LoadStatus LoadManifest(Manifest* m) const;

  // Cell blobs carry the caller's payload type (campaign cell vs screening
  // cell) and the cell outcome encoded by the caller.
  bool SaveCell(std::size_t index, PayloadType type,
                std::string_view payload) const;
  // Validates the blob against the digest recorded in the manifest, so a
  // swapped or stale cell file surfaces as kChecksumMismatch.
  LoadStatus LoadCell(std::size_t index, PayloadType type,
                      std::uint64_t expected_digest,
                      std::string* payload) const;

 private:
  std::string dir_;
  std::uint64_t config_digest_;
};

}  // namespace cnv::ckpt
