#include "ckpt/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace cnv::ckpt {

namespace {

constexpr char kMagic[8] = {'C', 'N', 'V', 'C', 'K', 'P', 'T', '\0'};

struct Envelope {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t payload_type;
  std::uint32_t payload_version;
  std::uint32_t reserved;
  std::uint64_t config_digest;
  std::uint64_t payload_size;
  std::uint64_t payload_sum;
};
static_assert(std::is_trivially_copyable_v<Envelope>);

WriteShim g_write_shim = nullptr;

long WriteSome(int fd, const void* data, std::size_t size) {
  if (g_write_shim != nullptr) return g_write_shim(fd, data, size);
  return static_cast<long>(::write(fd, data, size));
}

// Writes all of `bytes` through the (possibly shimmed) write call,
// classifying failures. A zero-byte return is treated as a short write to
// avoid spinning on a writer that accepts nothing.
SaveStatus WriteAll(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const long n = WriteSome(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return (errno == ENOSPC || errno == EDQUOT) ? SaveStatus::kNoSpace
                                                  : SaveStatus::kShortWrite;
    }
    if (n == 0) return SaveStatus::kShortWrite;
    off += static_cast<std::size_t>(n);
  }
  return SaveStatus::kOk;
}

}  // namespace

void SetWriteShimForTest(WriteShim shim) { g_write_shim = shim; }

std::string ToString(LoadStatus s) {
  switch (s) {
    case LoadStatus::kOk:
      return "ok";
    case LoadStatus::kMissing:
      return "missing";
    case LoadStatus::kTruncated:
      return "truncated";
    case LoadStatus::kBadMagic:
      return "bad-magic";
    case LoadStatus::kBadVersion:
      return "bad-version";
    case LoadStatus::kBadType:
      return "bad-type";
    case LoadStatus::kConfigMismatch:
      return "config-mismatch";
    case LoadStatus::kChecksumMismatch:
      return "checksum-mismatch";
  }
  return "unknown";
}

std::string ToString(SaveStatus s) {
  switch (s) {
    case SaveStatus::kOk:
      return "ok";
    case SaveStatus::kOpenFailed:
      return "open-failed";
    case SaveStatus::kShortWrite:
      return "short-write";
    case SaveStatus::kNoSpace:
      return "no-space";
    case SaveStatus::kRenameFailed:
      return "rename-failed";
  }
  return "unknown";
}

SaveStatus SaveCheckpointFile(const std::string& path, PayloadType type,
                              std::uint32_t payload_version,
                              std::uint64_t config_digest,
                              std::string_view payload) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);  // best effort
  }

  Envelope env{};
  std::memcpy(env.magic, kMagic, sizeof(kMagic));
  env.format_version = kFormatVersion;
  env.payload_type = static_cast<std::uint32_t>(type);
  env.payload_version = payload_version;
  env.config_digest = config_digest;
  env.payload_size = payload.size();
  env.payload_sum = Fnv1a64(payload);

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return SaveStatus::kOpenFailed;

  SaveStatus status = WriteAll(
      fd, std::string_view(reinterpret_cast<const char*>(&env), sizeof(env)));
  if (status == SaveStatus::kOk) status = WriteAll(fd, payload);
  // A failing fsync means the data may not be durable — most commonly a
  // delayed-allocation ENOSPC surfacing only at flush time.
  if (status == SaveStatus::kOk && ::fsync(fd) != 0) {
    status = (errno == ENOSPC || errno == EDQUOT) ? SaveStatus::kNoSpace
                                                  : SaveStatus::kShortWrite;
  }
  ::close(fd);
  if (status != SaveStatus::kOk) {
    fs::remove(tmp, ec);
    return status;
  }

  fs::rename(tmp, target, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return SaveStatus::kRenameFailed;
  }
  return SaveStatus::kOk;
}

bool WriteCheckpointFile(const std::string& path, PayloadType type,
                         std::uint32_t payload_version,
                         std::uint64_t config_digest,
                         std::string_view payload) {
  return SaveCheckpointFile(path, type, payload_version, config_digest,
                            payload) == SaveStatus::kOk;
}

LoadStatus ReadCheckpointFile(const std::string& path, PayloadType type,
                              std::uint32_t payload_version,
                              std::uint64_t config_digest,
                              std::string* payload,
                              std::uint64_t* stored_digest) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return LoadStatus::kMissing;

  Envelope env{};
  in.read(reinterpret_cast<char*>(&env), sizeof(env));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(env))) {
    return LoadStatus::kTruncated;
  }
  if (std::memcmp(env.magic, kMagic, sizeof(kMagic)) != 0) {
    return LoadStatus::kBadMagic;
  }
  if (env.format_version != kFormatVersion ||
      env.payload_version != payload_version) {
    return LoadStatus::kBadVersion;
  }
  if (env.payload_type != static_cast<std::uint32_t>(type)) {
    return LoadStatus::kBadType;
  }
  if (stored_digest != nullptr) *stored_digest = env.config_digest;
  if (config_digest != kAnyConfigDigest &&
      env.config_digest != config_digest) {
    return LoadStatus::kConfigMismatch;
  }

  // Compare the declared size against what is actually on disk before
  // allocating: a corrupted size field must not turn into a huge allocation,
  // and both truncation and trailing garbage count as damage.
  const std::streampos body_start = in.tellg();
  in.seekg(0, std::ios::end);
  const std::uint64_t on_disk =
      static_cast<std::uint64_t>(in.tellg() - body_start);
  in.seekg(body_start);
  if (on_disk != env.payload_size) return LoadStatus::kTruncated;

  std::string bytes(static_cast<std::size_t>(env.payload_size), '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (in.gcount() != static_cast<std::streamsize>(bytes.size())) {
    return LoadStatus::kTruncated;
  }
  if (Fnv1a64(bytes) != env.payload_sum) {
    return LoadStatus::kChecksumMismatch;
  }
  if (payload != nullptr) *payload = std::move(bytes);
  return LoadStatus::kOk;
}

}  // namespace cnv::ckpt
