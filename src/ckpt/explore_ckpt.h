// File-level checkpointing for Explore / ParallelExplore: serializes
// mck::ExploreSnapshot to a checksummed checkpoint file and manages the
// last-good rotation. States and actions are serialized as raw images, so a
// model is checkpointable exactly when both are trivially copyable — true
// for every toy and screening model; anything fancier fails to compile
// rather than silently mis-serializing.
//
// Rotation protocol: each save renames the current `<name>.ckpt` to
// `<name>.ckpt.prev`, then writes the new snapshot via tmp + rename. Because
// renames are atomic, a crash at any point leaves at least one complete
// checksummed snapshot on disk; TryLoad falls back from a damaged `.ckpt`
// to `.ckpt.prev` and reports the fallback.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <type_traits>
#include <utility>

#include "ckpt/io.h"
#include "mck/explorer.h"

namespace cnv::ckpt {

template <typename M>
concept CheckpointableModel =
    std::is_trivially_copyable_v<typename M::State> &&
    std::is_trivially_copyable_v<typename M::Action>;

// v2: ample_states joined the snapshot so a resumed reduced run keeps its
// strict-ample expansion count. Old snapshots are rejected (kBadVersion)
// rather than resumed with a silently wrong figure.
inline constexpr std::uint32_t kExploreSnapshotVersion = 2;

template <typename M>
  requires CheckpointableModel<M>
std::string EncodeSnapshot(const mck::ExploreSnapshot<M>& snap) {
  BinaryWriter w;
  w.U64(snap.nodes.size());
  for (const auto& n : snap.nodes) {
    w.Pod(n.state);
    w.U64(n.hash);
    w.U64(n.parent);
    w.Pod(n.via);
  }
  w.PodVector(snap.frontier);
  w.U64(snap.depth);
  w.U64(snap.transitions);
  w.U64(snap.frontier_peak);
  w.U64(snap.max_depth_reached);
  w.U64(snap.waves);
  w.U64(snap.ample_states);
  w.U64(snap.violations.size());
  for (const auto& v : snap.violations) {
    w.Str(v.property);
    w.PodVector(v.trace);
    w.Pod(v.state);
  }
  return w.Take();
}

template <typename M>
  requires CheckpointableModel<M>
bool DecodeSnapshot(std::string_view payload, mck::ExploreSnapshot<M>* snap) {
  using State = typename M::State;
  using Action = typename M::Action;
  BinaryReader r(payload);
  const std::uint64_t n_nodes = r.U64();
  if (n_nodes > payload.size()) return false;  // cheap sanity bound
  snap->nodes.clear();
  snap->nodes.reserve(static_cast<std::size_t>(n_nodes));
  for (std::uint64_t i = 0; i < n_nodes && r.ok(); ++i) {
    typename mck::ExploreSnapshot<M>::Node node;
    node.state = r.Pod<State>();
    node.hash = r.U64();
    node.parent = r.U64();
    node.via = r.Pod<Action>();
    snap->nodes.push_back(node);
  }
  snap->frontier = r.PodVector<std::uint64_t>();
  snap->depth = r.U64();
  snap->transitions = r.U64();
  snap->frontier_peak = r.U64();
  snap->max_depth_reached = r.U64();
  snap->waves = r.U64();
  snap->ample_states = r.U64();
  const std::uint64_t n_viol = r.U64();
  if (n_viol > payload.size()) return false;
  snap->violations.clear();
  for (std::uint64_t i = 0; i < n_viol && r.ok(); ++i) {
    mck::Violation<M> v;
    v.property = r.Str();
    v.trace = r.PodVector<Action>();
    v.state = r.Pod<State>();
    snap->violations.push_back(std::move(v));
  }
  if (!r.AtEnd()) return false;
  // Structural sanity: every parent and frontier entry must point at an
  // earlier / existing rank, or resume would index out of bounds.
  for (std::uint64_t i = 0; i < snap->nodes.size(); ++i) {
    const std::uint64_t p = snap->nodes[static_cast<std::size_t>(i)].parent;
    if (p != mck::kNoParentRank && p >= i) return false;
  }
  for (const std::uint64_t f : snap->frontier) {
    if (f >= snap->nodes.size()) return false;
  }
  return true;
}

// Outcome of a resume attempt.
struct ResumeStatus {
  bool loaded = false;       // a usable snapshot was found
  bool fell_back = false;    // the primary file was damaged; .prev was used
  LoadStatus primary = LoadStatus::kMissing;   // what happened to <name>.ckpt
  LoadStatus fallback = LoadStatus::kMissing;  // ... and to <name>.ckpt.prev
};

// Cadence + rotation driver around mck::SnapshotHooks. Typical use:
//
//   ckpt::ExploreCheckpointer<Model> cp(dir, "s3", digest, every_states);
//   mck::ExploreSnapshot<Model> snap;
//   const auto resume = cp.TryLoad(&snap);          // when --resume
//   auto* hooks = cp.hooks(resume.loaded ? &snap : nullptr);
//   auto result = mck::ParallelExplore(m, props, opt, exec, hooks);
template <typename M>
  requires CheckpointableModel<M>
class ExploreCheckpointer {
 public:
  ExploreCheckpointer(std::string dir, std::string name,
                      std::uint64_t config_digest,
                      std::uint64_t every_states = 0,
                      std::uint64_t every_waves = 0)
      : path_((std::filesystem::path(dir) / (name + ".ckpt")).string()),
        digest_(config_digest) {
    hooks_.every_states = every_states;
    hooks_.every_waves = every_waves;
    hooks_.on_snapshot = [this](const mck::ExploreSnapshot<M>& snap) {
      Save(snap);
    };
  }

  const std::string& path() const { return path_; }
  std::string prev_path() const { return path_ + ".prev"; }
  std::uint64_t snapshots_written() const { return written_; }
  std::uint64_t save_failures() const { return save_failures_; }

  // Writes one snapshot with last-good rotation.
  void Save(const mck::ExploreSnapshot<M>& snap) {
    std::error_code ec;
    if (std::filesystem::exists(path_, ec)) {
      std::filesystem::rename(path_, prev_path(), ec);  // best effort
    }
    if (WriteCheckpointFile(path_, PayloadType::kExploreSnapshot,
                            kExploreSnapshotVersion, digest_,
                            EncodeSnapshot<M>(snap))) {
      ++written_;
    } else {
      ++save_failures_;
    }
  }

  // Loads the newest usable snapshot, falling back to .prev when the
  // primary is damaged. A payload that passes the checksum but fails
  // structural decoding counts as damaged too.
  ResumeStatus TryLoad(mck::ExploreSnapshot<M>* snap) const {
    ResumeStatus rs;
    std::string payload;
    rs.primary = ReadCheckpointFile(path_, PayloadType::kExploreSnapshot,
                                    kExploreSnapshotVersion, digest_,
                                    &payload);
    if (rs.primary == LoadStatus::kOk && DecodeSnapshot<M>(payload, snap)) {
      rs.loaded = true;
      return rs;
    }
    if (rs.primary == LoadStatus::kOk) rs.primary = LoadStatus::kChecksumMismatch;
    rs.fallback = ReadCheckpointFile(prev_path(),
                                     PayloadType::kExploreSnapshot,
                                     kExploreSnapshotVersion, digest_,
                                     &payload);
    if (rs.fallback == LoadStatus::kOk && DecodeSnapshot<M>(payload, snap)) {
      rs.loaded = true;
      rs.fell_back = true;
      return rs;
    }
    if (rs.fallback == LoadStatus::kOk) {
      rs.fallback = LoadStatus::kChecksumMismatch;
    }
    return rs;
  }

  // Hooks wired to this checkpointer; `resume` may be null for a fresh run.
  const mck::SnapshotHooks<M>* hooks(const mck::ExploreSnapshot<M>* resume) {
    hooks_.resume = resume;
    return &hooks_;
  }

 private:
  std::string path_;
  std::uint64_t digest_;
  mck::SnapshotHooks<M> hooks_;
  std::uint64_t written_ = 0;
  std::uint64_t save_failures_ = 0;
};

}  // namespace cnv::ckpt
