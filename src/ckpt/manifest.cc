#include "ckpt/manifest.h"

#include <algorithm>
#include <csignal>
#include <chrono>
#include <filesystem>
#include <limits>
#include <thread>

#include "util/strings.h"

namespace cnv::ckpt {

namespace {

std::atomic<CancelToken*> g_drain_token{nullptr};

void DrainHandler(int /*signum*/) {
  CancelToken* token = g_drain_token.load(std::memory_order_relaxed);
  if (token != nullptr) token->Cancel();
}

}  // namespace

void InstallSignalDrain(CancelToken* token) {
  g_drain_token.store(token, std::memory_order_relaxed);
  if (token != nullptr) {
    std::signal(SIGINT, DrainHandler);
    std::signal(SIGTERM, DrainHandler);
  } else {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
}

RetryOutcome RunWithRetries(const RetryPolicy& policy,
                            const std::function<bool()>& attempt) {
  const auto now_ms = [&policy]() -> std::int64_t {
    if (policy.wall_ms_for_test) return policy.wall_ms_for_test();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  const auto sleep_ms = [&policy](std::int64_t ms) {
    if (ms <= 0) return;
    if (policy.sleep_ms_for_test) {
      policy.sleep_ms_for_test(ms);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    }
  };

  RetryOutcome out;
  // The cap is applied in double precision *before* the int64 cast: with an
  // aggressive multiplier the uncapped product overflows int64 within a few
  // dozen retries, and the cast would be undefined behaviour.
  const double cap = policy.backoff_max_ms > 0
                         ? static_cast<double>(policy.backoff_max_ms)
                         : static_cast<double>(
                               std::numeric_limits<std::int64_t>::max() / 2);
  std::int64_t backoff =
      static_cast<std::int64_t>(std::min(
          static_cast<double>(policy.backoff_initial_ms), cap));
  const int attempts = 1 + (policy.max_retries > 0 ? policy.max_retries : 0);
  for (int i = 0; i < attempts; ++i) {
    if (i > 0) {
      ++out.retries;
      sleep_ms(backoff);
      backoff = static_cast<std::int64_t>(std::min(
          static_cast<double>(backoff) * policy.backoff_multiplier, cap));
    }
    const std::int64_t start = now_ms();
    const bool ok = attempt();
    const std::int64_t elapsed = now_ms() - start;
    const bool overran =
        policy.cell_timeout_ms > 0 && elapsed > policy.cell_timeout_ms;
    if (overran) ++out.watchdog_hits;
    if (ok && !overran) {
      out.ok = true;
      return out;
    }
  }
  return out;
}

std::string ExecutionStats::ToString() const {
  return Format(
      "cells=%llu resumed=%llu run=%llu retries=%llu watchdog=%llu "
      "checkpoints=%llu corrupt-discarded=%llu%s",
      static_cast<unsigned long long>(cells_total),
      static_cast<unsigned long long>(cells_resumed),
      static_cast<unsigned long long>(cells_run),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(watchdog_hits),
      static_cast<unsigned long long>(checkpoints_written),
      static_cast<unsigned long long>(corrupt_cells_discarded),
      interrupted ? " INTERRUPTED" : "");
}

std::size_t Manifest::CountDone() const {
  std::size_t n = 0;
  for (const auto& c : cells) {
    if (c.done != 0) ++n;
  }
  return n;
}

ManifestStore::ManifestStore(std::string dir, std::uint64_t config_digest)
    : dir_(std::move(dir)), config_digest_(config_digest) {}

std::string ManifestStore::ManifestPath() const {
  return (std::filesystem::path(dir_) / "manifest.ckpt").string();
}

std::string ManifestStore::CellPath(std::size_t index) const {
  return (std::filesystem::path(dir_) /
          Format("cell_%zu.bin", index))
      .string();
}

bool ManifestStore::SaveManifest(const Manifest& m) const {
  BinaryWriter w;
  w.U64(m.cells.size());
  for (const auto& c : m.cells) {
    w.U8(c.done);
    w.U64(c.outcome_digest);
  }
  return WriteCheckpointFile(ManifestPath(), PayloadType::kCampaignManifest,
                             kManifestVersion, config_digest_, w.Take());
}

LoadStatus ManifestStore::LoadManifest(Manifest* m) const {
  std::string payload;
  const LoadStatus s =
      ReadCheckpointFile(ManifestPath(), PayloadType::kCampaignManifest,
                         kManifestVersion, config_digest_, &payload);
  if (s != LoadStatus::kOk) return s;
  BinaryReader r(payload);
  const std::uint64_t n = r.U64();
  if (n > payload.size()) return LoadStatus::kChecksumMismatch;
  Manifest out;
  out.cells.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    CellRecord c;
    c.done = r.U8();
    c.outcome_digest = r.U64();
    out.cells.push_back(c);
  }
  if (!r.AtEnd()) return LoadStatus::kChecksumMismatch;
  *m = std::move(out);
  return LoadStatus::kOk;
}

bool ManifestStore::SaveCell(std::size_t index, PayloadType type,
                             std::string_view payload) const {
  return WriteCheckpointFile(CellPath(index), type, kManifestVersion,
                             config_digest_, payload);
}

LoadStatus ManifestStore::LoadCell(std::size_t index, PayloadType type,
                                   std::uint64_t expected_digest,
                                   std::string* payload) const {
  std::string bytes;
  const LoadStatus s = ReadCheckpointFile(CellPath(index), type,
                                          kManifestVersion, config_digest_,
                                          &bytes);
  if (s != LoadStatus::kOk) return s;
  if (Fnv1a64(bytes) != expected_digest) return LoadStatus::kChecksumMismatch;
  if (payload != nullptr) *payload = std::move(bytes);
  return LoadStatus::kOk;
}

}  // namespace cnv::ckpt
