// Crash-safe checkpoint I/O: checksummed binary snapshots written with the
// tmp-file + rename protocol so a file on disk is always either the previous
// complete checkpoint or the new complete checkpoint, never a torn write.
//
// Every checkpoint file carries a fixed envelope:
//
//   magic           8 bytes  "CNVCKPT\0"
//   format_version  u32      envelope layout version (kFormatVersion)
//   payload_type    u32      caller-chosen discriminator (explore snapshot,
//                            campaign manifest, campaign cell, ...)
//   payload_version u32      caller-chosen payload layout version
//   config_digest   u64      FNV-1a digest of the producing configuration;
//                            a resume with a different config is rejected
//                            instead of silently mixing incompatible state
//   payload_size    u64
//   payload_sum     u64      FNV-1a over the payload bytes
//   payload         payload_size bytes
//
// Reads validate magic, versions, type, digest, size and checksum and report
// a typed LoadStatus, so callers can distinguish "no checkpoint yet" from
// "checkpoint damaged" and fall back to the last good snapshot.
//
// Encoding is host-endian (checkpoints resume on the machine that wrote
// them); strings and POD arrays are length-prefixed.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cnv::ckpt {

// --- FNV-1a -----------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t Fnv1a64(std::string_view bytes,
                             std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Streaming FNV-1a digest over heterogeneous config fields; used to build
// the config_digest that guards a resume against mismatched options.
class DigestBuilder {
 public:
  DigestBuilder& Add(std::string_view s) {
    Raw(s.size());
    h_ = Fnv1a64(s, h_);
    return *this;
  }
  DigestBuilder& Add(std::uint64_t v) {
    Raw(v);
    return *this;
  }
  DigestBuilder& Add(std::int64_t v) { return Add(static_cast<std::uint64_t>(v)); }
  DigestBuilder& Add(bool v) { return Add(static_cast<std::uint64_t>(v)); }
  DigestBuilder& Add(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return Add(bits);
  }
  std::uint64_t Finish() const { return h_; }

 private:
  void Raw(std::uint64_t v) {
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    h_ = Fnv1a64(std::string_view(buf, sizeof(buf)), h_);
  }
  std::uint64_t h_ = kFnvOffset;
};

// --- binary payload encoding ------------------------------------------------

class BinaryWriter {
 public:
  void U8(std::uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(std::int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  // Length-prefixed raw image of a trivially copyable element vector.
  template <typename T>
  void PodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&v, sizeof(T));
  }

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void Raw(const void* p, std::size_t n) {
    if (n > 0) buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

// Bounds-checked reader over a payload. Any overrun latches `ok() == false`
// and subsequent reads return zero values; callers check ok() once at the
// end instead of after every field.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t U8() { return Scalar<std::uint8_t>(); }
  std::uint32_t U32() { return Scalar<std::uint32_t>(); }
  std::uint64_t U64() { return Scalar<std::uint64_t>(); }
  std::int64_t I64() { return Scalar<std::int64_t>(); }
  double F64() { return Scalar<double>(); }
  std::string Str() {
    const std::uint64_t n = U64();
    if (!Require(n)) return {};
    std::string s(bytes_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  template <typename T>
  std::vector<T> PodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = U64();
    if (n > bytes_.size() / sizeof(T) || !Require(n * sizeof(T))) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), bytes_.data() + pos_,
                  static_cast<std::size_t>(n) * sizeof(T));
    }
    pos_ += static_cast<std::size_t>(n) * sizeof(T);
    return v;
  }
  template <typename T>
  T Pod() {
    return Scalar<T>();
  }

  bool ok() const { return ok_; }
  // True when the whole payload was consumed with no overrun — the usual
  // "decoded cleanly" condition.
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }

 private:
  template <typename T>
  T Scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!Require(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  bool Require(std::uint64_t n) {
    if (!ok_ || n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- checkpoint files -------------------------------------------------------

inline constexpr std::uint32_t kFormatVersion = 1;

enum class PayloadType : std::uint32_t {
  kExploreSnapshot = 1,
  kCampaignManifest = 2,
  kCampaignCell = 3,
  kScreeningCell = 4,
  kConformanceCell = 5,
  // Disk-backed frontier staging of ParallelExplore (mck/spill.h): one
  // (wave, shard, worker) candidate run per file, deleted after the wave
  // consumes it.
  kFrontierShard = 6,
};

enum class LoadStatus {
  kOk,
  kMissing,           // file does not exist
  kTruncated,         // shorter than the declared envelope + payload
  kBadMagic,          // not a checkpoint file
  kBadVersion,        // produced by an incompatible format or payload layout
  kBadType,           // a checkpoint, but of a different payload type
  kConfigMismatch,    // config digest differs from the resuming run's
  kChecksumMismatch,  // payload bytes damaged
};

std::string ToString(LoadStatus s);

// Why a checkpoint save failed. The cases callers care about operationally:
// kNoSpace means the volume is full and retrying without freeing space is
// pointless; kShortWrite means the kernel accepted fewer bytes than asked
// (or the write failed outright) and the tmp file was discarded; in every
// failure case the previous checkpoint, if any, is left untouched and still
// loads kOk — the last-good-fallback contract.
enum class SaveStatus {
  kOk,
  kOpenFailed,    // tmp file could not be created (permissions, bad path)
  kShortWrite,    // write error or fewer bytes accepted than requested
  kNoSpace,       // ENOSPC / EDQUOT: the volume is full
  kRenameFailed,  // envelope+payload landed, but tmp -> target rename failed
};

std::string ToString(SaveStatus s);

// Writes envelope + payload to `path` via tmp + rename, creating parent
// directories. On any failure the tmp file is removed and the previous
// file, if any, is left untouched.
SaveStatus SaveCheckpointFile(const std::string& path, PayloadType type,
                              std::uint32_t payload_version,
                              std::uint64_t config_digest,
                              std::string_view payload);

// Compatibility wrapper: true iff SaveCheckpointFile returns kOk.
bool WriteCheckpointFile(const std::string& path, PayloadType type,
                         std::uint32_t payload_version,
                         std::uint64_t config_digest,
                         std::string_view payload);

// Test seam: replaces the ::write() call inside SaveCheckpointFile so tests
// can inject short writes and disk-full errors without a full volume. The
// shim sees (fd, data, size) and returns bytes written, or -1 with errno
// set. Pass nullptr to restore the real ::write. Not thread-safe; tests
// only.
using WriteShim = long (*)(int fd, const void* data, std::size_t size);
void SetWriteShimForTest(WriteShim shim);

// Reads and validates `path`. On kOk fills `payload`. `config_digest` must
// match the stored digest; pass kAnyConfigDigest to skip the check (the
// stored digest is then returned through `stored_digest` when non-null).
inline constexpr std::uint64_t kAnyConfigDigest = ~0ull;
LoadStatus ReadCheckpointFile(const std::string& path, PayloadType type,
                              std::uint32_t payload_version,
                              std::uint64_t config_digest,
                              std::string* payload,
                              std::uint64_t* stored_digest = nullptr);

}  // namespace cnv::ckpt
