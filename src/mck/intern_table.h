// Cached-hash intern table for arena-indexed state sets.
//
// The explorer keeps discovered states in an arena (std::vector<State>) and
// needs a hash set over arena *indices*. The previous implementation used
// std::unordered_set<int64> with a hasher that recomputed HashValue(state) on
// every probe and — worse — on every rehash, and interning had to push the
// candidate state into the arena just to probe for it (popping it back off on
// a duplicate hit). This table fixes both:
//
//   * each slot stores the precomputed 64-bit state hash alongside the arena
//     index, so probes and growth rehashes never touch the states again;
//   * lookup takes (hash, eq) directly, so callers probe *before* appending
//     to the arena and only append on an actual insertion;
//   * capacity can be pre-reserved from the caller's max_states bound.
//
// Open addressing with linear probing over a power-of-two slot array at a max
// load factor of 0.75. Slot *placement* uses the low hash bits; the parallel
// explorer routes states to shards by the *top* hash bits, so per-shard
// tables keep full low-bit entropy (see mck/parallel_explorer.h).
//
// The table layout is an implementation detail: iteration order is never
// exposed, so it cannot leak nondeterminism into exploration results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cnv::mck {

class InternTable {
 public:
  // `expected` pre-sizes the table for about that many entries without
  // growth; 0 starts at the minimum capacity.
  explicit InternTable(std::size_t expected = 0) {
    Reserve(expected > 0 ? expected : 8);
  }

  // Returns the arena index of the entry matching (hash, eq), or -1.
  // `eq(idx)` must compare the probe state against the arena state at `idx`;
  // it is only called on slots whose cached hash matches exactly.
  template <typename Eq>
  std::int64_t Find(std::uint64_t hash, Eq&& eq) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = static_cast<std::size_t>(hash) & mask;;
         i = (i + 1) & mask) {
      const Slot& slot = slots_[i];
      if (slot.index < 0) return -1;
      if (slot.hash == hash && eq(slot.index)) return slot.index;
    }
  }

  // Records (hash, index); the caller has already verified via Find that no
  // equal state is present.
  void Insert(std::uint64_t hash, std::int64_t index) {
    if ((size_ + 1) * 4 > slots_.size() * 3) Grow();
    Place(hash, index);
    ++size_;
  }

  // Removes the entry recorded as (hash, index); it must be present. Uses
  // backward-shift deletion so probe chains stay intact with no tombstones.
  void Erase(std::uint64_t hash, std::int64_t index) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (slots_[i].hash != hash || slots_[i].index != index) {
      i = (i + 1) & mask;
    }
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (slots_[j].index < 0) break;
      const std::size_t home = static_cast<std::size_t>(slots_[j].hash) & mask;
      // Slot j may fill the hole at i only if i lies on j's probe path,
      // i.e. i is cyclically within [home, j).
      const bool movable =
          (i <= j) ? (home <= i || home > j) : (home <= i && home > j);
      if (movable) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i] = {0, -1};
    --size_;
  }

  // Grows the slot array to hold at least `expected` entries within the load
  // factor. Existing entries are rehashed from their *cached* hashes.
  void Reserve(std::size_t expected) {
    std::size_t capacity = 8;
    while (capacity * 3 < expected * 4) capacity <<= 1;
    if (capacity > slots_.size()) Rebuild(capacity);
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  // Load factor — the memory-pressure signal reported in ExploreStats.
  double occupancy() const {
    return slots_.empty() ? 0.0
                          : static_cast<double>(size_) /
                                static_cast<double>(slots_.size());
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::int64_t index = -1;  // -1 = empty
  };

  void Place(std::uint64_t hash, std::int64_t index) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (slots_[i].index >= 0) i = (i + 1) & mask;
    slots_[i] = {hash, index};
  }

  void Grow() { Rebuild(slots_.size() * 2); }

  void Rebuild(std::size_t capacity) {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.assign(capacity, Slot{});
    for (const Slot& slot : old) {
      if (slot.index >= 0) Place(slot.hash, slot.index);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace cnv::mck
