// Bitstate ("supertrace") exploration — SPIN's classic memory-frugal mode
// (Holzmann, "Design and Validation of Computer Protocols"). The visited
// set is a Bloom filter of k hash functions over an m-bit array instead of
// an exact table, so state spaces far beyond RAM become searchable at the
// price of possibly treating an unvisited state as visited (missing part of
// the space — never reporting a spurious violation: every counterexample
// still comes from an actually executed path).
//
// The screening models here are small enough for exact search; bitstate
// mode exists for soak-testing enlarged models (bigger bounds, more
// channels) the way the paper's SPIN runs would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mck/explorer.h"
#include "mck/property.h"

namespace cnv::mck {

struct BitstateOptions {
  // log2 of the bit-array size; 24 -> 16 Mbit = 2 MiB.
  unsigned log2_bits = 24;
  // Number of independent hash probes per state (SPIN default: 2-3).
  unsigned hash_functions = 3;
  // Depth bound for the DFS (0 = unlimited).
  std::uint64_t max_depth = 10'000;
  // Transition budget (0 = unlimited).
  std::uint64_t max_transitions = 50'000'000;
  bool first_violation_per_property = true;
};

struct BitstateStats {
  std::uint64_t states_stored = 0;  // bloom insertions (distinct-ish states)
  std::uint64_t transitions = 0;
  std::uint64_t max_depth_reached = 0;
  bool truncated = false;
  // Fraction of bits set — above ~0.5 the omission probability is high and
  // a larger array should be used (SPIN's "hash factor" warning).
  double fill_ratio = 0.0;
};

template <typename M>
struct BitstateResult {
  std::vector<Violation<M>> violations;
  BitstateStats stats;

  bool Holds(const std::string& property) const {
    for (const auto& v : violations) {
      if (v.property == property) return false;
    }
    return true;
  }
};

namespace internal {

class BloomFilter {
 public:
  BloomFilter(unsigned log2_bits, unsigned hashes)
      : mask_((std::uint64_t{1} << log2_bits) - 1),
        hashes_(hashes),
        bits_((std::uint64_t{1} << log2_bits) / 64, 0) {}

  // Inserts; returns true when the element was (probably) new.
  bool InsertNew(std::size_t h) {
    bool fresh = false;
    std::uint64_t x = h;
    for (unsigned i = 0; i < hashes_; ++i) {
      // SplitMix64 steps give independent probe positions.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const std::uint64_t bit = z & mask_;
      std::uint64_t& word = bits_[bit >> 6];
      const std::uint64_t m = std::uint64_t{1} << (bit & 63);
      if ((word & m) == 0) {
        word |= m;
        ++set_bits_;
        fresh = true;
      }
    }
    return fresh;
  }

  double FillRatio() const {
    return static_cast<double>(set_bits_) /
           static_cast<double>((mask_ + 1));
  }

 private:
  std::uint64_t mask_;
  unsigned hashes_;
  std::vector<std::uint64_t> bits_;
  std::uint64_t set_bits_ = 0;
};

}  // namespace internal

// Depth-first bitstate search. Keeps only the DFS path in memory (for
// counterexample reconstruction), like SPIN's supertrace.
template <CheckableModel M>
BitstateResult<M> BitstateExplore(
    const M& model, const PropertySet<typename M::State>& properties,
    const BitstateOptions& options = {}) {
  using State = typename M::State;
  using Action = typename M::Action;

  BitstateResult<M> result;
  internal::BloomFilter visited(options.log2_bits, options.hash_functions);
  std::unordered_set<std::string> violated;

  struct Frame {
    State state;
    std::vector<Action> actions;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::vector<Action> path;

  auto check = [&](const State& s) {
    for (const auto& p : properties) {
      if (options.first_violation_per_property && violated.contains(p.name)) {
        continue;
      }
      if (!p.holds(s)) {
        violated.insert(p.name);
        result.violations.push_back({p.name, path, s});
      }
    }
  };

  {
    State init = model.initial();
    visited.InsertNew(HashValue(init));
    ++result.stats.states_stored;
    check(init);
    stack.push_back({init, model.enabled(init), 0});
  }

  while (!stack.empty()) {
    if (options.first_violation_per_property &&
        violated.size() == properties.size()) {
      break;
    }
    Frame& top = stack.back();
    if (top.next >= top.actions.size()) {
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    if (options.max_depth != 0 && stack.size() > options.max_depth) {
      result.stats.truncated = true;
      stack.pop_back();
      if (!path.empty()) path.pop_back();
      continue;
    }
    const Action a = top.actions[top.next++];
    ++result.stats.transitions;
    if (options.max_transitions != 0 &&
        result.stats.transitions >= options.max_transitions) {
      result.stats.truncated = true;
      break;
    }
    State next = model.apply(top.state, a);
    if (!visited.InsertNew(HashValue(next))) continue;  // (probably) seen
    ++result.stats.states_stored;
    path.push_back(a);
    result.stats.max_depth_reached =
        std::max<std::uint64_t>(result.stats.max_depth_reached, stack.size());
    check(next);
    std::vector<Action> actions = model.enabled(next);
    stack.push_back({std::move(next), std::move(actions), 0});
  }

  result.stats.fill_ratio = visited.FillRatio();
  return result;
}

}  // namespace cnv::mck
