// Recoverability checking: a possibility-flavoured complement to the
// invariant properties. `CheckRecoverable(m, pending, goal)` verifies that
// from EVERY reachable state satisfying `pending` there exists SOME path to
// a state satisfying `goal` — i.e. the obligation can always still be
// discharged. A violation is a reachable state from which the goal is
// unreachable: the device is *permanently* stuck, not just transiently.
//
// This separates the paper's two flavours of badness: S3's stuck-in-3G
// state is recoverable (ending the data session frees the device; the harm
// is the delay, caught by the MM_OK invariant), while e.g. exhausting the
// attach retries with no recovery procedure is a genuine dead end.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "mck/explorer.h"
#include "mck/intern_table.h"

namespace cnv::mck {

template <typename M>
struct RecoverabilityResult {
  bool holds = true;
  // When violated: a trace from the initial state to a pending state from
  // which no goal state is reachable.
  std::vector<typename M::Action> trace;
  typename M::State state{};  // the unrecoverable state
  ExploreStats stats;
};

template <CheckableModel M>
RecoverabilityResult<M> CheckRecoverable(
    const M& model,
    const std::function<bool(const typename M::State&)>& pending,
    const std::function<bool(const typename M::State&)>& goal,
    const ExploreOptions& options = {}) {
  using State = typename M::State;
  using Action = typename M::Action;

  RecoverabilityResult<M> result;

  // Forward exploration: build the full reachable graph with reverse edges.
  std::vector<State> states;
  std::vector<std::vector<std::int64_t>> reverse_edges;
  struct Meta {
    std::int64_t parent = -1;
    Action via{};
  };
  std::vector<Meta> meta;

  // Cached-hash visited table over arena indices: probe by (hash, value)
  // before appending, so duplicates never churn the arena and growth
  // rehashes never recompute HashValue.
  const std::size_t hint = internal::ReserveHint(options.max_states);
  states.reserve(hint);
  meta.reserve(hint);
  reverse_edges.reserve(hint);
  InternTable index(hint);

  auto intern = [&](State s, std::int64_t parent,
                    const Action* via) -> std::pair<std::int64_t, bool> {
    const std::uint64_t h = static_cast<std::uint64_t>(HashValue(s));
    const std::int64_t found = index.Find(h, [&](std::int64_t i) {
      return states[static_cast<std::size_t>(i)] == s;
    });
    if (found >= 0) return {found, false};
    states.push_back(std::move(s));
    meta.push_back({parent, via != nullptr ? *via : Action{}});
    const auto idx = static_cast<std::int64_t>(states.size()) - 1;
    index.Insert(h, idx);
    reverse_edges.emplace_back();
    return {idx, true};
  };

  std::queue<std::int64_t> frontier;
  {
    auto [idx, ok] = intern(model.initial(), -1, nullptr);
    (void)ok;
    frontier.push(idx);
  }
  bool truncated = false;
  while (!frontier.empty()) {
    const auto idx = frontier.front();
    frontier.pop();
    const std::vector<Action> actions =
        model.enabled(states[static_cast<std::size_t>(idx)]);
    for (const Action& a : actions) {
      ++result.stats.transitions;
      auto [child, inserted] =
          intern(model.apply(states[static_cast<std::size_t>(idx)], a), idx,
                 &a);
      reverse_edges[static_cast<std::size_t>(child)].push_back(idx);
      if (!inserted) continue;
      if (options.max_states != 0 && states.size() >= options.max_states) {
        truncated = true;
        break;
      }
      frontier.push(child);
    }
    if (truncated) break;
  }
  result.stats.states_visited = states.size();
  result.stats.truncated = truncated;

  // Backward closure from the goal states over reverse edges.
  std::vector<char> can_reach_goal(states.size(), 0);
  std::queue<std::int64_t> back;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (goal(states[i])) {
      can_reach_goal[i] = 1;
      back.push(static_cast<std::int64_t>(i));
    }
  }
  while (!back.empty()) {
    const auto idx = back.front();
    back.pop();
    for (const auto pred : reverse_edges[static_cast<std::size_t>(idx)]) {
      if (!can_reach_goal[static_cast<std::size_t>(pred)]) {
        can_reach_goal[static_cast<std::size_t>(pred)] = 1;
        back.push(pred);
      }
    }
  }

  // Any pending state outside the closure is unrecoverable.
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (pending(states[i]) && !can_reach_goal[i]) {
      result.holds = false;
      result.state = states[i];
      std::int64_t idx = static_cast<std::int64_t>(i);
      while (idx >= 0 && meta[static_cast<std::size_t>(idx)].parent >= 0) {
        result.trace.push_back(meta[static_cast<std::size_t>(idx)].via);
        idx = meta[static_cast<std::size_t>(idx)].parent;
      }
      std::reverse(result.trace.begin(), result.trace.end());
      break;
    }
  }
  return result;
}

}  // namespace cnv::mck
