// Small classic models used to test the checker itself: a bounded counter,
// Peterson's mutual-exclusion algorithm, a lossy ping/ack channel, and a
// deadlocking two-lock scheme. They double as engine microbenchmarks.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mck/hash.h"
#include "mck/reduction.h"

namespace cnv::mck::toys {

// --- Bounded counter: two workers increment a shared counter up to a cap.
// Property "below_cap" is violated exactly when the cap can be exceeded.
struct CounterModel {
  int cap = 4;
  bool buggy = false;  // if true, one worker can double-increment

  struct State {
    int value = 0;
    bool operator==(const State&) const = default;
  };
  struct Action {
    int amount = 0;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;
};

std::size_t HashValue(const CounterModel::State& s);

// --- Peterson's algorithm for two processes. Property "mutex" asserts the
// two processes are never simultaneously in the critical section; disabling
// `use_turn_variable` breaks the algorithm and must produce a counterexample.
struct PetersonModel {
  bool use_turn_variable = true;

  enum class Loc : std::uint8_t { kIdle, kWantFlag, kWantTurn, kWait, kCrit };

  struct State {
    std::array<Loc, 2> loc{Loc::kIdle, Loc::kIdle};
    std::array<bool, 2> flag{false, false};
    int turn = 0;
    bool operator==(const State&) const = default;
  };
  struct Action {
    int process = 0;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  static bool BothCritical(const State& s) {
    return s.loc[0] == Loc::kCrit && s.loc[1] == Loc::kCrit;
  }
};

std::size_t HashValue(const PetersonModel::State& s);

// --- Lossy ping: a sender transmits PING over a channel that may drop it;
// with `retransmit` the sender may resend, without it the system deadlocks
// waiting for an ack that never comes. Exercises deadlock detection and
// models the RRC unreliability at the heart of finding S2.
struct LossyPingModel {
  bool retransmit = true;

  struct State {
    bool ping_in_flight = false;
    bool ack_in_flight = false;
    bool receiver_got_ping = false;
    bool sender_got_ack = false;
    std::uint8_t sends = 0;
    bool operator==(const State&) const = default;
  };
  enum class Kind : std::uint8_t {
    kSend,
    kDropPing,
    kDeliverPing,
    kSendAck,
    kDeliverAck
  };
  struct Action {
    Kind kind = Kind::kSend;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  // Getting the ack is the protocol's successful termination.
  bool is_final(const State& s) const { return s.sender_got_ack; }
};

std::size_t HashValue(const LossyPingModel::State& s);

// --- Two processes taking two locks in opposite order: the classic
// deadlock. Used to verify deadlock detection reports a trace.
struct DeadlockModel {
  struct State {
    // lock holder: -1 free, 0 or 1 = process id
    std::array<int, 2> holder{-1, -1};
    std::array<int, 2> progress{0, 0};  // 0: none, 1: first lock, 2: both
    bool operator==(const State&) const = default;
  };
  struct Action {
    int process = 0;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;
};

std::size_t HashValue(const DeadlockModel::State& s);

// --- K independent workers, each stepping a private counter up to L. The
// poster child for state-space reduction: the full interleaving product has
// (L+1)^K states, but every action is local and invisible, so partial-order
// reduction collapses it to the K*L + 1 states of one serialized schedule —
// and the workers are interchangeable, so symmetry reduction alone brings
// the product down to the multiset space. The differential suite asserts
// both factors on this model.
struct IndepWorkersModel {
  int workers = 4;
  int steps = 4;

  static constexpr std::size_t kMaxWorkers = 8;

  struct State {
    std::array<std::uint8_t, kMaxWorkers> count{};
    bool operator==(const State&) const = default;
  };
  struct Action {
    int worker = 0;
  };

  State initial() const { return {}; }
  std::vector<Action> enabled(const State& s) const;
  State apply(const State& s, const Action& a) const;
  std::string describe(const Action& a) const;

  // Full spec: every worker is a closed component (no shared guards at
  // all), and workers permute freely.
  ReductionSpec<IndepWorkersModel> reduction() const;
};

std::size_t HashValue(const IndepWorkersModel::State& s);

}  // namespace cnv::mck::toys
