// Random-walk sampling over a model's state graph. This mirrors the paper's
// random-sampling treatment of unbounded usage scenarios (§3.2.1): instead of
// exhausting the interleaving space, many deep walks are sampled and each
// state along a walk is checked against the properties. Raising the number of
// walks (the "sampling rate") exposes more defects, exactly as the paper
// describes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "mck/explorer.h"
#include "mck/property.h"
#include "util/rng.h"

namespace cnv::mck {

struct WalkOptions {
  std::uint64_t walks = 1000;
  std::uint64_t max_steps_per_walk = 200;
  bool first_violation_per_property = true;
};

struct WalkStats {
  std::uint64_t walks_done = 0;
  std::uint64_t steps_taken = 0;
  std::uint64_t distinct_states = 0;
  std::uint64_t dead_ends = 0;  // walks that reached a state with no actions
};

template <typename M>
struct WalkResult {
  std::vector<Violation<M>> violations;
  WalkStats stats;

  const Violation<M>* FindViolation(const std::string& property) const {
    for (const auto& v : violations) {
      if (v.property == property) return &v;
    }
    return nullptr;
  }
  bool Holds(const std::string& property) const {
    return FindViolation(property) == nullptr;
  }
};

template <CheckableModel M>
WalkResult<M> RandomWalk(const M& model,
                         const PropertySet<typename M::State>& properties,
                         Rng& rng, const WalkOptions& options = {}) {
  using State = typename M::State;
  using Action = typename M::Action;

  WalkResult<M> result;
  std::unordered_set<std::string> violated;
  std::unordered_set<State, internal::StateHash<State>> distinct;
  // Pre-size for the walk budget (capped: deep soaks revisit heavily, so the
  // distinct count rarely approaches walks * steps).
  distinct.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(options.walks * options.max_steps_per_walk + 1,
                              1ull << 16)));

  auto check = [&](const State& s, const std::vector<Action>& trace) {
    for (const auto& p : properties) {
      if (options.first_violation_per_property && violated.contains(p.name)) {
        continue;
      }
      if (!p.holds(s)) {
        violated.insert(p.name);
        result.violations.push_back({p.name, trace, s});
      }
    }
  };

  for (std::uint64_t w = 0; w < options.walks; ++w) {
    State s = model.initial();
    std::vector<Action> trace;
    distinct.insert(s);
    check(s, trace);
    for (std::uint64_t step = 0; step < options.max_steps_per_walk; ++step) {
      const std::vector<Action> actions = model.enabled(s);
      if (actions.empty()) {
        ++result.stats.dead_ends;
        break;
      }
      const Action& a = rng.Pick(actions);
      s = model.apply(s, a);
      trace.push_back(a);
      ++result.stats.steps_taken;
      distinct.insert(s);
      check(s, trace);
    }
    ++result.stats.walks_done;
    if (options.first_violation_per_property &&
        violated.size() == properties.size()) {
      break;
    }
  }
  result.stats.distinct_states = distinct.size();
  return result;
}

}  // namespace cnv::mck
