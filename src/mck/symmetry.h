// Symmetry-reduction helpers: canonical-form hashing collapses states that
// differ only by a permutation of interchangeable components (UEs) onto one
// orbit representative, which is what actually gets interned into the
// visited table. A model's `canonicalize` oracle typically sorts its per-UE
// blocks with SortBlocks below; MultisetOrbitSize computes how many concrete
// states the representative stands for, which the engines sum into the
// `represented_states` stat (for a fully symmetric model the sum over all
// reached representatives equals the size of the unreduced reachable set —
// pinned by tests/mck_symmetry_test.cc).
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace cnv::mck {

// Sorts the first `n` blocks of a fixed-size component array into the
// canonical (ascending) order. Blocks need operator<; ties are fine (stable
// order does not matter for a sort into a total preorder of equal keys).
template <typename Block, std::size_t N>
void SortBlocks(std::array<Block, N>& blocks, std::size_t n) {
  std::sort(blocks.begin(), blocks.begin() + static_cast<std::ptrdiff_t>(n));
}

// Orbit size of a sorted block sequence under the full symmetric group:
// n! / prod over equal-block groups of (group size)!. Blocks need
// operator==; the sequence must already be sorted so equal blocks are
// adjacent.
template <typename Block, std::size_t N>
std::uint64_t MultisetOrbitSize(const std::array<Block, N>& blocks,
                                std::size_t n) {
  std::uint64_t orbit = 1;
  std::uint64_t run = 1;  // length of the equal-block run ending at i
  for (std::size_t i = 1; i < n; ++i) {
    run = blocks[i] == blocks[i - 1] ? run + 1 : 1;
    // Invariant: before this step `orbit` counts the distinct arrangements
    // of the first i blocks; (i+1)/run extends it by one block. The
    // division is exact at every step (the intermediate value is itself a
    // multinomial coefficient).
    orbit = orbit * (i + 1) / run;
  }
  return orbit;
}

}  // namespace cnv::mck
