// Ample-set partial-order reduction. The engines expand, at each state, an
// *ample subset* of the enabled actions instead of all of them whenever a
// component can be found whose enabled actions provably commute with
// everything the rest of the system can do. The classic conditions, as
// implemented here over a ReductionSpec (mck/reduction.h):
//
//   C0  ample(s) is empty iff enabled(s) is empty. Holds by construction:
//       an ample candidate is the non-empty enabled-action set of one
//       component, and when no candidate qualifies the full set is used.
//   C1  Every action in ample(s) is independent of every action outside it.
//       Approximated by the spec's locality contract: all of the chosen
//       component's enabled actions are local (guard and effect touch only
//       component-private state), and the component is not `unsafe` (it has
//       no pending action whose guard reads shared state and could be
//       enabled by another component's move).
//   C2  Every action in ample(s) is invisible to the checked properties
//       (the spec's `visible` oracle); states are never skipped in a way a
//       property probe could notice. When the engine is run with an empty
//       property set, C2 is vacuous and the visibility check is skipped.
//   C3  Cycle proviso, BFS variant (Bosnacki/Holzmann): an ample set is
//       accepted only if at least one of its successors is *fresh* — not in
//       the visited set at the start of the current wave. A state whose
//       every candidate successor is already visited is fully expanded, so
//       an enabled action can never be deferred forever around a cycle.
//       "Visited at wave start" over-approximates "fully expanded", which
//       only costs reduction, never soundness — and it is exactly the
//       predicate both the serial and the parallel engine can evaluate
//       identically (the parallel expand phase probes the frozen pre-wave
//       table), preserving serial-vs-parallel byte-identity.
//
// Candidate components are tried in ascending component order, so the
// chosen ample set is a deterministic function of the state alone.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mck/reduction.h"

namespace cnv::mck::internal {

// Resolved per-run reduction configuration: which reductions are actually
// active given the options AND what the model declares. Constructed once per
// engine run; const thereafter (safe to share across workers — the oracle
// std::functions are only invoked through const calls).
template <typename M>
class ReductionEngine {
 public:
  using State = typename M::State;
  using Action = typename M::Action;

  ReductionEngine() = default;

  ReductionEngine(const M& model, const ReductionOptions& opt,
                  bool have_properties) {
    if constexpr (ReducibleModel<M>) {
      if (opt.por || opt.symmetry) {
        spec_ = model.reduction();
        por_ = opt.por && spec_.components > 1 && spec_.owner != nullptr &&
               spec_.local != nullptr && spec_.visible != nullptr;
        sym_ = opt.symmetry && spec_.canonicalize != nullptr;
        orbits_ = sym_ && spec_.orbit_size != nullptr;
        check_visibility_ = have_properties;
      }
    } else {
      (void)model;
      (void)opt;
      (void)have_properties;
    }
  }

  bool active() const { return por_ || sym_; }
  bool por() const { return por_; }
  bool symmetry() const { return sym_; }
  bool orbits() const { return orbits_; }

  // Orbit representative of s; identity when symmetry is off.
  State Canon(State s) const {
    return sym_ ? spec_.canonicalize(s) : std::move(s);
  }

  std::uint64_t OrbitSize(const State& s) const {
    return orbits_ ? spec_.orbit_size(s) : 1;
  }

  // Chooses the expansion set for `s` whose full enabled set is `all`.
  // `is_old(t)` must return true iff canonical successor t was in the
  // visited set at the start of the current wave. On reduction, fills
  // `ample` with a strict subset (preserving the relative order of `all`)
  // and returns true; otherwise returns false and `all` should be expanded.
  template <typename IsOldFn>
  bool SelectAmple(const M& model, const State& s,
                   const std::vector<Action>& all, IsOldFn&& is_old,
                   std::vector<Action>& ample) const {
    if (!por_ || all.size() < 2) return false;
    for (int c = 0; c < spec_.components; ++c) {
      if (spec_.unsafe != nullptr && spec_.unsafe(s, c)) continue;
      ample.clear();
      bool qualifies = true;
      for (const Action& a : all) {
        if (spec_.owner(s, a) != c) continue;
        if (!spec_.local(s, a) ||
            (check_visibility_ && spec_.visible(s, a))) {
          qualifies = false;
          break;
        }
        ample.push_back(a);
      }
      if (!qualifies || ample.empty() || ample.size() == all.size()) continue;
      // C3: accept only if some ample successor is fresh this wave.
      bool fresh = false;
      for (const Action& a : ample) {
        if (!is_old(Canon(model.apply(s, a)))) {
          fresh = true;
          break;
        }
      }
      if (fresh) return true;
    }
    ample.clear();
    return false;
  }

 private:
  ReductionSpec<M> spec_{};
  bool por_ = false;
  bool sym_ = false;
  bool orbits_ = false;
  bool check_visibility_ = true;
};

}  // namespace cnv::mck::internal
