// Explicit-state model checker. This stands in for the SPIN checker the
// paper embeds in CNetVerifier (§3.2): models are communicating finite state
// machines, the explorer interleaves all enabled transitions, and each
// property violation yields a concrete counterexample trace.
//
// A model is any type satisfying `CheckableModel`:
//
//   struct M {
//     struct State  { ... regular value type ... };  // with operator==
//     struct Action { ... };                          // transition label
//     State initial() const;
//     std::vector<Action> enabled(const State&) const;
//     State apply(const State&, const Action&) const;
//     std::string describe(const Action&) const;
//   };
//   std::size_t HashValue(const M::State&);           // found by ADL
//
// BFS yields shortest counterexamples (used for reporting); DFS uses less
// bookkeeping per state and honours a depth bound (used for soak runs).
//
// BFS runs in depth-synchronized waves: the whole frontier at depth d is
// expanded before any state at depth d+1, states are interned in expansion
// order, and early exit (all properties violated) and max_states truncation
// take effect at deterministic points — truncation accepts new states in
// expansion order up to the cap, then finishes counting the wave's
// transitions and stops. These wave semantics are exactly what
// ParallelExplore (mck/parallel_explorer.h) reproduces at any worker count,
// which is why serial and parallel results are byte-identical.
#pragma once

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "mck/intern_table.h"
#include "mck/por.h"
#include "mck/property.h"
#include "mck/reduction.h"

namespace cnv::mck {

template <typename M>
concept CheckableModel = requires(const M m, const typename M::State s,
                                  const typename M::Action a) {
  { m.initial() } -> std::convertible_to<typename M::State>;
  { m.enabled(s) } -> std::convertible_to<std::vector<typename M::Action>>;
  { m.apply(s, a) } -> std::convertible_to<typename M::State>;
  { m.describe(a) } -> std::convertible_to<std::string>;
  { s == s } -> std::convertible_to<bool>;
  { HashValue(s) } -> std::convertible_to<std::size_t>;
};

enum class SearchOrder { kBreadthFirst, kDepthFirst };

struct ExploreOptions {
  SearchOrder order = SearchOrder::kBreadthFirst;
  // Stop exploring after this many distinct states (0 = unlimited).
  std::uint64_t max_states = 2'000'000;
  // Do not explore beyond this depth (0 = unlimited).
  std::uint64_t max_depth = 0;
  // Report at most one counterexample per property.
  bool first_violation_per_property = true;
  // Also report reachable states with no enabled transitions ("deadlocks").
  // States for which the model's optional `is_final(state)` returns true are
  // successful terminations, not deadlocks.
  bool detect_deadlock = false;
  // State-space reduction switches (mck/reduction.h). BFS only: the DFS
  // order ignores them (its stack-based cycle proviso is not implemented),
  // exactly like it ignores snapshot hooks. A model that does not declare
  // the matching ReductionSpec pieces explores fully — the flags are safe
  // to pass uniformly across a sweep of heterogeneous models.
  ReductionOptions reduction;
};

namespace internal {

template <typename M>
bool IsFinal(const M& model, const typename M::State& s) {
  if constexpr (requires { { model.is_final(s) } -> std::convertible_to<bool>; }) {
    return model.is_final(s);
  } else {
    (void)model;
    (void)s;
    return false;
  }
}

}  // namespace internal

template <typename M>
struct Violation {
  std::string property;          // property name, or "deadlock"
  std::vector<typename M::Action> trace;  // actions from the initial state
  typename M::State state;       // the violating state
};

struct ExploreStats {
  std::uint64_t states_visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t max_depth_reached = 0;
  bool truncated = false;  // hit max_states or max_depth
  // Peak size of the BFS/DFS frontier and the final load factor of the
  // visited-state hash table — the two memory-pressure signals for soaks.
  std::uint64_t frontier_peak = 0;
  double hash_occupancy = 0;
  // States whose expansion used a strict ample subset (POR active and it
  // actually reduced something). 0 when POR is off or never fires.
  std::uint64_t ample_states = 0;
  // Sum of orbit sizes over the interned representatives — the number of
  // concrete states the reduced visited set stands for. Equal to
  // states_visited when symmetry (or orbit accounting) is off.
  std::uint64_t represented_states = 0;
  // Wall-clock timing. Everything else in this struct is deterministic;
  // these two are explicitly wall-clock throughput figures and must never
  // feed a byte-identical-replay comparison.
  double elapsed_wall_seconds = 0;
  double StatesPerSecond() const {
    return elapsed_wall_seconds > 0
               ? static_cast<double>(states_visited) / elapsed_wall_seconds
               : 0;
  }
};

// Canonical deterministic view of ExploreStats: every field that must be
// identical across replays, job counts and checkpoint/resume boundaries —
// and nothing wall-clock. The determinism suites compare these views
// instead of hand-picking fields per test, so a new wall-clock field can
// never silently leak into a byte-identity comparison.
struct ExploreStatsView {
  std::uint64_t states_visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t max_depth_reached = 0;
  std::uint64_t frontier_peak = 0;
  bool truncated = false;
  double hash_occupancy = 0;
  std::uint64_t ample_states = 0;
  std::uint64_t represented_states = 0;
  bool operator==(const ExploreStatsView&) const = default;
};

// `include_occupancy = false` zeroes hash_occupancy on the view — for
// serial-vs-parallel comparisons, where a sharded table legitimately has a
// different load factor than a single one.
inline ExploreStatsView DeterministicView(const ExploreStats& s,
                                          bool include_occupancy = true) {
  return {s.states_visited,
          s.transitions,
          s.max_depth_reached,
          s.frontier_peak,
          s.truncated,
          include_occupancy ? s.hash_occupancy : 0.0,
          s.ample_states,
          s.represented_states};
}

inline std::string ToString(const ExploreStatsView& v) {
  return "{states=" + std::to_string(v.states_visited) +
         " transitions=" + std::to_string(v.transitions) +
         " max_depth=" + std::to_string(v.max_depth_reached) +
         " frontier_peak=" + std::to_string(v.frontier_peak) +
         " truncated=" + std::to_string(v.truncated) +
         " occupancy=" + std::to_string(v.hash_occupancy) +
         " ample=" + std::to_string(v.ample_states) +
         " represented=" + std::to_string(v.represented_states) + "}";
}

inline std::ostream& operator<<(std::ostream& os, const ExploreStatsView& v) {
  return os << ToString(v);
}

template <typename M>
struct ExploreResult {
  std::vector<Violation<M>> violations;
  ExploreStats stats;

  const Violation<M>* FindViolation(const std::string& property) const {
    for (const auto& v : violations) {
      if (v.property == property) return &v;
    }
    return nullptr;
  }
  bool Holds(const std::string& property) const {
    return FindViolation(property) == nullptr;
  }
};

// --- wave-boundary snapshots (crash-safe checkpoint support) ----------------
//
// A snapshot captures the complete deterministic search state at a wave
// boundary in an engine-neutral form: discovered states in global discovery
// ("rank") order with their cached hashes and back-pointers, the current
// frontier as ranks, carried stats, and the violations committed so far.
// Rank order is exactly serial interning order, which ParallelExplore also
// reproduces — so a snapshot written by either engine resumes in either
// engine, at any job count, with byte-identical final results.

inline constexpr std::uint64_t kNoParentRank = ~0ull;

template <typename M>
struct ExploreSnapshot {
  struct Node {
    typename M::State state{};
    std::uint64_t hash = 0;      // cached HashValue(state)
    std::uint64_t parent = kNoParentRank;  // rank of the parent state
    typename M::Action via{};    // action that discovered this state
  };
  std::vector<Node> nodes;              // rank order
  std::vector<std::uint64_t> frontier;  // ranks of the pending wave
  std::uint64_t depth = 0;              // depth of the frontier states
  // Carried stats (everything deterministic that is not derivable from the
  // node list).
  std::uint64_t transitions = 0;
  std::uint64_t frontier_peak = 0;
  std::uint64_t max_depth_reached = 0;
  std::uint64_t waves = 0;  // == depth at a continuing wave boundary
  // POR bookkeeping carried across a resume; represented_states is *not*
  // carried because the engines recompute it from the final visited set.
  std::uint64_t ample_states = 0;
  std::vector<Violation<M>> violations;
};

// Observation and resume plumbing for Explore / ParallelExplore. When
// `on_snapshot` is set, the engine captures an ExploreSnapshot at wave
// boundaries, gated by the cadence fields; when `resume` is set, the engine
// starts from that snapshot instead of the model's initial state (the
// caller is responsible for passing the same model, properties and options
// as the producing run — file-level resume guards this with a config
// digest, see ckpt/explore_ckpt.h). Snapshots only observe: a hooked run's
// results are identical to an unhooked one. BFS only; the DFS order of
// Explore ignores hooks.
template <typename M>
struct SnapshotHooks {
  std::function<void(const ExploreSnapshot<M>&)> on_snapshot;
  // Capture when at least this many states were discovered since the last
  // capture, or at least this many waves completed; with both zero, every
  // wave boundary is captured.
  std::uint64_t every_states = 0;
  std::uint64_t every_waves = 0;
  const ExploreSnapshot<M>* resume = nullptr;
};

namespace internal {

// Wave-boundary cadence bookkeeping shared by the serial and parallel
// engines.
struct SnapshotCadence {
  std::uint64_t every_states = 0;
  std::uint64_t every_waves = 0;
  std::uint64_t states_at_last = 0;
  std::uint64_t waves_since = 0;

  bool Due(std::uint64_t states_now) {
    ++waves_since;
    const bool due =
        (every_states == 0 && every_waves == 0) ||
        (every_states != 0 && states_now - states_at_last >= every_states) ||
        (every_waves != 0 && waves_since >= every_waves);
    if (due) {
      states_at_last = states_now;
      waves_since = 0;
    }
    return due;
  }
};

}  // namespace internal

namespace internal {

template <typename State>
struct StateHash {
  std::size_t operator()(const State& s) const { return HashValue(s); }
};

// Arena/table reservation hint derived from the max_states bound. Explicit
// modest bounds (soaks, graph exports) are reserved in full; the effectively
// unbounded defaults start small — growth rehashes only move cached
// (hash, index) pairs, so they are cheap.
inline std::size_t ReserveHint(std::uint64_t max_states) {
  constexpr std::uint64_t kFullReserveCap = 1ull << 16;
  if (max_states != 0 && max_states <= kFullReserveCap) {
    return static_cast<std::size_t>(max_states);
  }
  return 1024;
}

}  // namespace internal

// Exhaustive exploration from the model's initial state. `hooks`, when
// given, captures wave-boundary snapshots and/or resumes from one (BFS
// only; see SnapshotHooks).
template <CheckableModel M>
ExploreResult<M> Explore(const M& model,
                         const PropertySet<typename M::State>& properties,
                         const ExploreOptions& options = {},
                         const SnapshotHooks<M>* hooks = nullptr) {
  using State = typename M::State;
  using Action = typename M::Action;

  const auto wall_start = std::chrono::steady_clock::now();
  ExploreResult<M> result;
  std::unordered_set<std::string> violated;
  const bool track =
      hooks != nullptr && options.order == SearchOrder::kBreadthFirst;
  // Reduction is BFS-only (see ExploreOptions::reduction); for DFS the
  // engine stays inert and the exploration is the full product.
  const internal::ReductionEngine<M> red =
      options.order == SearchOrder::kBreadthFirst
          ? internal::ReductionEngine<M>(model, options.reduction,
                                         !properties.empty())
          : internal::ReductionEngine<M>();

  // Arena of discovered states with back-pointers for trace reconstruction.
  struct NodeMeta {
    std::int64_t parent = -1;
    Action via{};
    std::uint64_t depth = 0;
  };
  const std::size_t hint = internal::ReserveHint(options.max_states);
  std::vector<State> arena;
  std::vector<NodeMeta> meta;
  arena.reserve(hint);
  meta.reserve(hint);
  // Cached per-state hashes, kept only when snapshots are in play: the
  // snapshot stores them so a resume never recomputes HashValue.
  std::vector<std::uint64_t> hashes;
  if (track) hashes.reserve(hint);
  // Visited set over arena indices with the 64-bit state hash cached in each
  // slot: probes and growth rehashes never recompute HashValue.
  InternTable seen(hint);

  auto reconstruct = [&](std::int64_t idx) {
    std::vector<Action> trace;
    while (idx >= 0 && meta[static_cast<std::size_t>(idx)].parent >= 0) {
      trace.push_back(meta[static_cast<std::size_t>(idx)].via);
      idx = meta[static_cast<std::size_t>(idx)].parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  auto check_state = [&](std::int64_t idx) {
    const State& s = arena[static_cast<std::size_t>(idx)];
    for (const auto& p : properties) {
      if (options.first_violation_per_property && violated.contains(p.name)) {
        continue;
      }
      if (!p.holds(s)) {
        violated.insert(p.name);
        result.violations.push_back({p.name, reconstruct(idx), s});
      }
    }
  };

  auto all_violated = [&] {
    return options.first_violation_per_property && !properties.empty() &&
           violated.size() == properties.size() && !options.detect_deadlock;
  };

  // Intern a state: probe the table by (hash, value) first and append to the
  // arena only on actual insertion — no push/pop churn on duplicate hits.
  // Returns (index, inserted); index is -1 when the state was new but the
  // max_states cap is already full.
  auto intern = [&](State s, std::int64_t parent, const Action* via,
                    std::uint64_t depth) -> std::pair<std::int64_t, bool> {
    const std::uint64_t h = static_cast<std::uint64_t>(HashValue(s));
    const std::int64_t found = seen.Find(h, [&](std::int64_t i) {
      return arena[static_cast<std::size_t>(i)] == s;
    });
    if (found >= 0) return {found, false};
    if (options.max_states != 0 && seen.size() >= options.max_states) {
      return {-1, false};
    }
    arena.push_back(std::move(s));
    meta.push_back({parent, via != nullptr ? *via : Action{}, depth});
    if (track) hashes.push_back(h);
    const std::int64_t idx = static_cast<std::int64_t>(arena.size()) - 1;
    seen.Insert(h, idx);
    return {idx, true};
  };

  auto check_deadlock = [&](std::int64_t idx) {
    if (!options.detect_deadlock || violated.contains("deadlock")) return;
    if (internal::IsFinal(model, arena[static_cast<std::size_t>(idx)])) return;
    violated.insert("deadlock");
    result.violations.push_back(
        {"deadlock", reconstruct(idx), arena[static_cast<std::size_t>(idx)]});
  };

  if (options.order == SearchOrder::kBreadthFirst) {
    // Depth-synchronized waves: the frontier holds every state at depth
    // `depth`; the whole wave is expanded before moving on. Early exit and
    // max_states truncation act at wave-deterministic points, matching
    // ParallelExplore at any worker count.
    std::vector<std::int64_t> frontier;
    std::vector<std::int64_t> next_frontier;
    std::uint64_t depth = 0;
    // POR plumbing: `wave_start` is the arena size when the current wave
    // began, so "old" (C3 freshness) means "interned before this wave" —
    // the same predicate the parallel engine evaluates against its frozen
    // pre-wave table. `ample` is the reusable ample-subset scratch.
    std::int64_t wave_start = 0;
    std::vector<Action> ample;
    auto is_old = [&](const State& t) {
      const std::uint64_t h = static_cast<std::uint64_t>(HashValue(t));
      const std::int64_t found = seen.Find(h, [&](std::int64_t i) {
        return arena[static_cast<std::size_t>(i)] == t;
      });
      return found >= 0 && found < wave_start;
    };
    internal::SnapshotCadence cadence;
    if (track) {
      cadence.every_states = hooks->every_states;
      cadence.every_waves = hooks->every_waves;
    }
    if (track && hooks->resume != nullptr) {
      // Rebuild arena, meta and the intern table from the snapshot's
      // rank-ordered node list. Inserting in rank order from the same
      // initial Reserve replays the producing run's growth sequence, so the
      // table layout — and hash_occupancy — end up identical.
      const ExploreSnapshot<M>& snap = *hooks->resume;
      for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
        const auto& n = snap.nodes[i];
        const std::int64_t parent =
            n.parent == kNoParentRank ? -1
                                      : static_cast<std::int64_t>(n.parent);
        const std::uint64_t d =
            parent < 0 ? 0 : meta[static_cast<std::size_t>(parent)].depth + 1;
        arena.push_back(n.state);
        meta.push_back({parent, n.via, d});
        hashes.push_back(n.hash);
        seen.Insert(n.hash, static_cast<std::int64_t>(i));
      }
      frontier.reserve(snap.frontier.size());
      for (const std::uint64_t r : snap.frontier) {
        frontier.push_back(static_cast<std::int64_t>(r));
      }
      depth = snap.depth;
      result.stats.transitions = snap.transitions;
      result.stats.frontier_peak = snap.frontier_peak;
      result.stats.max_depth_reached = snap.max_depth_reached;
      result.stats.ample_states = snap.ample_states;
      result.violations = snap.violations;
      for (const auto& v : result.violations) violated.insert(v.property);
      cadence.states_at_last = snap.nodes.size();
    } else {
      auto [idx, inserted] = intern(red.Canon(model.initial()), -1, nullptr, 0);
      (void)inserted;
      check_state(idx);
      frontier.push_back(idx);
    }
    auto capture = [&] {
      ExploreSnapshot<M> snap;
      snap.nodes.resize(arena.size());
      for (std::size_t i = 0; i < arena.size(); ++i) {
        snap.nodes[i] = {arena[i], hashes[i],
                         meta[i].parent < 0
                             ? kNoParentRank
                             : static_cast<std::uint64_t>(meta[i].parent),
                         meta[i].via};
      }
      snap.frontier.assign(frontier.begin(), frontier.end());
      snap.depth = depth;
      snap.transitions = result.stats.transitions;
      snap.frontier_peak = result.stats.frontier_peak;
      snap.max_depth_reached = result.stats.max_depth_reached;
      snap.waves = depth;
      snap.ample_states = result.stats.ample_states;
      snap.violations = result.violations;
      return snap;
    };
    while (!frontier.empty() && !all_violated()) {
      result.stats.frontier_peak =
          std::max(result.stats.frontier_peak,
                   static_cast<std::uint64_t>(frontier.size()));
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, depth);
      if (options.max_depth != 0 && depth >= options.max_depth) {
        result.stats.truncated = true;
        break;
      }
      next_frontier.clear();
      wave_start = static_cast<std::int64_t>(arena.size());
      for (const std::int64_t idx : frontier) {
        // Copy the actions: `arena` may reallocate while children intern.
        const std::vector<Action> actions =
            model.enabled(arena[static_cast<std::size_t>(idx)]);
        if (actions.empty()) check_deadlock(idx);
        const std::vector<Action>* expand = &actions;
        if (red.por() &&
            red.SelectAmple(model, arena[static_cast<std::size_t>(idx)],
                            actions, is_old, ample)) {
          expand = &ample;
          ++result.stats.ample_states;
        }
        for (const Action& a : *expand) {
          ++result.stats.transitions;
          State next =
              red.Canon(model.apply(arena[static_cast<std::size_t>(idx)], a));
          auto [child, inserted] = intern(std::move(next), idx, &a, depth + 1);
          if (!inserted) {
            // child < 0: a genuinely new state was dropped by the cap. Keep
            // expanding the rest of the wave (transition counts stay
            // well-defined) but stop after it.
            if (child < 0) result.stats.truncated = true;
            continue;
          }
          check_state(child);
          next_frontier.push_back(child);
        }
      }
      frontier.swap(next_frontier);
      ++depth;
      if (result.stats.truncated) break;
      // Capture only at continuing boundaries: a snapshot of a finished
      // exploration would never be resumed.
      if (track && hooks->on_snapshot != nullptr && !frontier.empty() &&
          !all_violated() && cadence.Due(seen.size())) {
        hooks->on_snapshot(capture());
      }
    }
  } else {
    std::vector<std::int64_t> frontier;
    {
      auto [idx, inserted] = intern(model.initial(), -1, nullptr, 0);
      (void)inserted;
      check_state(idx);
      frontier.push_back(idx);
    }
    bool stop = false;
    while (!frontier.empty() && !stop && !all_violated()) {
      result.stats.frontier_peak =
          std::max(result.stats.frontier_peak,
                   static_cast<std::uint64_t>(frontier.size()));
      const std::int64_t idx = frontier.back();
      frontier.pop_back();
      const std::uint64_t depth = meta[static_cast<std::size_t>(idx)].depth;
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, depth);
      if (options.max_depth != 0 && depth >= options.max_depth) {
        result.stats.truncated = true;
        continue;
      }

      // Copy the actions: `arena` may reallocate while children are interned.
      const std::vector<Action> actions =
          model.enabled(arena[static_cast<std::size_t>(idx)]);
      if (actions.empty()) check_deadlock(idx);
      for (const Action& a : actions) {
        ++result.stats.transitions;
        State next = model.apply(arena[static_cast<std::size_t>(idx)], a);
        auto [child, inserted] = intern(std::move(next), idx, &a, depth + 1);
        if (!inserted) {
          if (child < 0) {
            result.stats.truncated = true;
            stop = true;
            break;
          }
          continue;
        }
        check_state(child);
        if (options.max_states != 0 && seen.size() >= options.max_states) {
          result.stats.truncated = true;
          stop = true;
          break;
        }
        frontier.push_back(child);
      }
    }
  }

  result.stats.states_visited = seen.size();
  result.stats.hash_occupancy = seen.occupancy();
  if (red.orbits()) {
    for (const State& s : arena) result.stats.represented_states += red.OrbitSize(s);
  } else {
    result.stats.represented_states = result.stats.states_visited;
  }
  result.stats.elapsed_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

// Renders a counterexample trace as numbered lines, one action per line.
template <CheckableModel M>
std::string FormatTrace(const M& model, const Violation<M>& v) {
  std::string out;
  out += "counterexample for " + v.property + " (" +
         std::to_string(v.trace.size()) + " steps):\n";
  std::size_t step = 1;
  for (const auto& a : v.trace) {
    out += "  " + std::to_string(step++) + ". " + model.describe(a) + "\n";
  }
  return out;
}

}  // namespace cnv::mck
