// Explicit-state model checker. This stands in for the SPIN checker the
// paper embeds in CNetVerifier (§3.2): models are communicating finite state
// machines, the explorer interleaves all enabled transitions, and each
// property violation yields a concrete counterexample trace.
//
// A model is any type satisfying `CheckableModel`:
//
//   struct M {
//     struct State  { ... regular value type ... };  // with operator==
//     struct Action { ... };                          // transition label
//     State initial() const;
//     std::vector<Action> enabled(const State&) const;
//     State apply(const State&, const Action&) const;
//     std::string describe(const Action&) const;
//   };
//   std::size_t HashValue(const M::State&);           // found by ADL
//
// BFS yields shortest counterexamples (used for reporting); DFS uses less
// bookkeeping per state and honours a depth bound (used for soak runs).
//
// BFS runs in depth-synchronized waves: the whole frontier at depth d is
// expanded before any state at depth d+1, states are interned in expansion
// order, and early exit (all properties violated) and max_states truncation
// take effect at deterministic points — truncation accepts new states in
// expansion order up to the cap, then finishes counting the wave's
// transitions and stops. These wave semantics are exactly what
// ParallelExplore (mck/parallel_explorer.h) reproduces at any worker count,
// which is why serial and parallel results are byte-identical.
#pragma once

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "mck/intern_table.h"
#include "mck/property.h"

namespace cnv::mck {

template <typename M>
concept CheckableModel = requires(const M m, const typename M::State s,
                                  const typename M::Action a) {
  { m.initial() } -> std::convertible_to<typename M::State>;
  { m.enabled(s) } -> std::convertible_to<std::vector<typename M::Action>>;
  { m.apply(s, a) } -> std::convertible_to<typename M::State>;
  { m.describe(a) } -> std::convertible_to<std::string>;
  { s == s } -> std::convertible_to<bool>;
  { HashValue(s) } -> std::convertible_to<std::size_t>;
};

enum class SearchOrder { kBreadthFirst, kDepthFirst };

struct ExploreOptions {
  SearchOrder order = SearchOrder::kBreadthFirst;
  // Stop exploring after this many distinct states (0 = unlimited).
  std::uint64_t max_states = 2'000'000;
  // Do not explore beyond this depth (0 = unlimited).
  std::uint64_t max_depth = 0;
  // Report at most one counterexample per property.
  bool first_violation_per_property = true;
  // Also report reachable states with no enabled transitions ("deadlocks").
  // States for which the model's optional `is_final(state)` returns true are
  // successful terminations, not deadlocks.
  bool detect_deadlock = false;
};

namespace internal {

template <typename M>
bool IsFinal(const M& model, const typename M::State& s) {
  if constexpr (requires { { model.is_final(s) } -> std::convertible_to<bool>; }) {
    return model.is_final(s);
  } else {
    (void)model;
    (void)s;
    return false;
  }
}

}  // namespace internal

template <typename M>
struct Violation {
  std::string property;          // property name, or "deadlock"
  std::vector<typename M::Action> trace;  // actions from the initial state
  typename M::State state;       // the violating state
};

struct ExploreStats {
  std::uint64_t states_visited = 0;
  std::uint64_t transitions = 0;
  std::uint64_t max_depth_reached = 0;
  bool truncated = false;  // hit max_states or max_depth
  // Peak size of the BFS/DFS frontier and the final load factor of the
  // visited-state hash table — the two memory-pressure signals for soaks.
  std::uint64_t frontier_peak = 0;
  double hash_occupancy = 0;
  // Wall-clock timing. Everything else in this struct is deterministic;
  // these two are explicitly wall-clock throughput figures and must never
  // feed a byte-identical-replay comparison.
  double elapsed_wall_seconds = 0;
  double StatesPerSecond() const {
    return elapsed_wall_seconds > 0
               ? static_cast<double>(states_visited) / elapsed_wall_seconds
               : 0;
  }
};

template <typename M>
struct ExploreResult {
  std::vector<Violation<M>> violations;
  ExploreStats stats;

  const Violation<M>* FindViolation(const std::string& property) const {
    for (const auto& v : violations) {
      if (v.property == property) return &v;
    }
    return nullptr;
  }
  bool Holds(const std::string& property) const {
    return FindViolation(property) == nullptr;
  }
};

namespace internal {

template <typename State>
struct StateHash {
  std::size_t operator()(const State& s) const { return HashValue(s); }
};

// Arena/table reservation hint derived from the max_states bound. Explicit
// modest bounds (soaks, graph exports) are reserved in full; the effectively
// unbounded defaults start small — growth rehashes only move cached
// (hash, index) pairs, so they are cheap.
inline std::size_t ReserveHint(std::uint64_t max_states) {
  constexpr std::uint64_t kFullReserveCap = 1ull << 16;
  if (max_states != 0 && max_states <= kFullReserveCap) {
    return static_cast<std::size_t>(max_states);
  }
  return 1024;
}

}  // namespace internal

// Exhaustive exploration from the model's initial state.
template <CheckableModel M>
ExploreResult<M> Explore(const M& model,
                         const PropertySet<typename M::State>& properties,
                         const ExploreOptions& options = {}) {
  using State = typename M::State;
  using Action = typename M::Action;

  const auto wall_start = std::chrono::steady_clock::now();
  ExploreResult<M> result;
  std::unordered_set<std::string> violated;

  // Arena of discovered states with back-pointers for trace reconstruction.
  struct NodeMeta {
    std::int64_t parent = -1;
    Action via{};
    std::uint64_t depth = 0;
  };
  const std::size_t hint = internal::ReserveHint(options.max_states);
  std::vector<State> arena;
  std::vector<NodeMeta> meta;
  arena.reserve(hint);
  meta.reserve(hint);
  // Visited set over arena indices with the 64-bit state hash cached in each
  // slot: probes and growth rehashes never recompute HashValue.
  InternTable seen(hint);

  auto reconstruct = [&](std::int64_t idx) {
    std::vector<Action> trace;
    while (idx >= 0 && meta[static_cast<std::size_t>(idx)].parent >= 0) {
      trace.push_back(meta[static_cast<std::size_t>(idx)].via);
      idx = meta[static_cast<std::size_t>(idx)].parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  auto check_state = [&](std::int64_t idx) {
    const State& s = arena[static_cast<std::size_t>(idx)];
    for (const auto& p : properties) {
      if (options.first_violation_per_property && violated.contains(p.name)) {
        continue;
      }
      if (!p.holds(s)) {
        violated.insert(p.name);
        result.violations.push_back({p.name, reconstruct(idx), s});
      }
    }
  };

  auto all_violated = [&] {
    return options.first_violation_per_property &&
           violated.size() == properties.size() && !options.detect_deadlock;
  };

  // Intern a state: probe the table by (hash, value) first and append to the
  // arena only on actual insertion — no push/pop churn on duplicate hits.
  // Returns (index, inserted); index is -1 when the state was new but the
  // max_states cap is already full.
  auto intern = [&](State s, std::int64_t parent, const Action* via,
                    std::uint64_t depth) -> std::pair<std::int64_t, bool> {
    const std::uint64_t h = static_cast<std::uint64_t>(HashValue(s));
    const std::int64_t found = seen.Find(h, [&](std::int64_t i) {
      return arena[static_cast<std::size_t>(i)] == s;
    });
    if (found >= 0) return {found, false};
    if (options.max_states != 0 && seen.size() >= options.max_states) {
      return {-1, false};
    }
    arena.push_back(std::move(s));
    meta.push_back({parent, via != nullptr ? *via : Action{}, depth});
    const std::int64_t idx = static_cast<std::int64_t>(arena.size()) - 1;
    seen.Insert(h, idx);
    return {idx, true};
  };

  auto check_deadlock = [&](std::int64_t idx) {
    if (!options.detect_deadlock || violated.contains("deadlock")) return;
    if (internal::IsFinal(model, arena[static_cast<std::size_t>(idx)])) return;
    violated.insert("deadlock");
    result.violations.push_back(
        {"deadlock", reconstruct(idx), arena[static_cast<std::size_t>(idx)]});
  };

  if (options.order == SearchOrder::kBreadthFirst) {
    // Depth-synchronized waves: the frontier holds every state at depth
    // `depth`; the whole wave is expanded before moving on. Early exit and
    // max_states truncation act at wave-deterministic points, matching
    // ParallelExplore at any worker count.
    std::vector<std::int64_t> frontier;
    std::vector<std::int64_t> next_frontier;
    {
      auto [idx, inserted] = intern(model.initial(), -1, nullptr, 0);
      (void)inserted;
      check_state(idx);
      frontier.push_back(idx);
    }
    std::uint64_t depth = 0;
    while (!frontier.empty() && !all_violated()) {
      result.stats.frontier_peak =
          std::max(result.stats.frontier_peak,
                   static_cast<std::uint64_t>(frontier.size()));
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, depth);
      if (options.max_depth != 0 && depth >= options.max_depth) {
        result.stats.truncated = true;
        break;
      }
      next_frontier.clear();
      for (const std::int64_t idx : frontier) {
        // Copy the actions: `arena` may reallocate while children intern.
        const std::vector<Action> actions =
            model.enabled(arena[static_cast<std::size_t>(idx)]);
        if (actions.empty()) check_deadlock(idx);
        for (const Action& a : actions) {
          ++result.stats.transitions;
          State next = model.apply(arena[static_cast<std::size_t>(idx)], a);
          auto [child, inserted] = intern(std::move(next), idx, &a, depth + 1);
          if (!inserted) {
            // child < 0: a genuinely new state was dropped by the cap. Keep
            // expanding the rest of the wave (transition counts stay
            // well-defined) but stop after it.
            if (child < 0) result.stats.truncated = true;
            continue;
          }
          check_state(child);
          next_frontier.push_back(child);
        }
      }
      frontier.swap(next_frontier);
      ++depth;
      if (result.stats.truncated) break;
    }
  } else {
    std::vector<std::int64_t> frontier;
    {
      auto [idx, inserted] = intern(model.initial(), -1, nullptr, 0);
      (void)inserted;
      check_state(idx);
      frontier.push_back(idx);
    }
    bool stop = false;
    while (!frontier.empty() && !stop && !all_violated()) {
      result.stats.frontier_peak =
          std::max(result.stats.frontier_peak,
                   static_cast<std::uint64_t>(frontier.size()));
      const std::int64_t idx = frontier.back();
      frontier.pop_back();
      const std::uint64_t depth = meta[static_cast<std::size_t>(idx)].depth;
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, depth);
      if (options.max_depth != 0 && depth >= options.max_depth) {
        result.stats.truncated = true;
        continue;
      }

      // Copy the actions: `arena` may reallocate while children are interned.
      const std::vector<Action> actions =
          model.enabled(arena[static_cast<std::size_t>(idx)]);
      if (actions.empty()) check_deadlock(idx);
      for (const Action& a : actions) {
        ++result.stats.transitions;
        State next = model.apply(arena[static_cast<std::size_t>(idx)], a);
        auto [child, inserted] = intern(std::move(next), idx, &a, depth + 1);
        if (!inserted) {
          if (child < 0) {
            result.stats.truncated = true;
            stop = true;
            break;
          }
          continue;
        }
        check_state(child);
        if (options.max_states != 0 && seen.size() >= options.max_states) {
          result.stats.truncated = true;
          stop = true;
          break;
        }
        frontier.push_back(child);
      }
    }
  }

  result.stats.states_visited = seen.size();
  result.stats.hash_occupancy = seen.occupancy();
  result.stats.elapsed_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

// Renders a counterexample trace as numbered lines, one action per line.
template <CheckableModel M>
std::string FormatTrace(const M& model, const Violation<M>& v) {
  std::string out;
  out += "counterexample for " + v.property + " (" +
         std::to_string(v.trace.size()) + " steps):\n";
  std::size_t step = 1;
  for (const auto& a : v.trace) {
    out += "  " + std::to_string(step++) + ". " + model.describe(a) + "\n";
  }
  return out;
}

}  // namespace cnv::mck
