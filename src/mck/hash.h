// Hash utilities for model states. Model states are regular value types;
// each model provides a `HashValue(state)` built from these combinators so
// the explorer's visited set never hashes padding bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace cnv::mck {

// 64-bit FNV-1a based combiner with avalanche mixing.
class Hasher {
 public:
  Hasher() = default;

  Hasher& Mix(std::uint64_t v) {
    state_ ^= v + 0x9e3779b97f4a7c15ULL + (state_ << 6) + (state_ >> 2);
    return *this;
  }

  template <typename E>
    requires std::is_enum_v<E>
  Hasher& Mix(E e) {
    return Mix(static_cast<std::uint64_t>(
        static_cast<std::underlying_type_t<E>>(e)));
  }

  Hasher& Mix(bool b) { return Mix(static_cast<std::uint64_t>(b ? 1 : 0)); }
  Hasher& Mix(std::int64_t v) { return Mix(static_cast<std::uint64_t>(v)); }
  Hasher& Mix(int v) { return Mix(static_cast<std::uint64_t>(v)); }
  Hasher& Mix(unsigned v) { return Mix(static_cast<std::uint64_t>(v)); }
  Hasher& Mix(std::uint8_t v) { return Mix(static_cast<std::uint64_t>(v)); }

  std::size_t Digest() const {
    std::uint64_t x = state_;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace cnv::mck
