// Disk-backed frontier staging for ParallelExplore: when a spill directory
// is configured, the expand phase writes each (wave, shard, worker)
// candidate run through the ckpt envelope instead of holding it in RAM, and
// the insert phase streams the runs back one at a time — the candidate
// staging area, which is the memory peak of a large exploration, never has
// to fit in memory at once.
//
// Runs are ordinary checkpoint files (PayloadType::kFrontierShard), so a
// damaged or missing run is detected by the ckpt LoadStatus taxonomy —
// truncation, bad magic, checksum mismatch — and the engine falls back to
// deterministically re-expanding the worker slice that produced the run
// (the frontier is still in memory; spilled data is always derivable).
// Every figure of the final result is byte-identical with spill on, off, or
// recovering — pinned by tests/mck_spill_test.cc.
//
// The payload is a length-prefixed sequence of candidate images; states and
// actions are raw POD copies, which is why the engine only spills models
// with trivially copyable State/Action (the same bound ckpt/explore_ckpt.h
// puts on snapshot persistence).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/io.h"

namespace cnv::mck {

inline constexpr std::uint32_t kFrontierShardVersion = 1;

// Binds a run file to its (wave, shard, worker) coordinates: reading a
// stale or misplaced run file fails with kConfigMismatch instead of
// silently feeding another wave's candidates into the merge.
inline std::uint64_t FrontierRunDigest(std::uint64_t wave, std::uint32_t shard,
                                       int worker) {
  ckpt::DigestBuilder d;
  d.Add(std::string_view("frontier-run"));
  d.Add(wave);
  d.Add(static_cast<std::uint64_t>(shard));
  d.Add(static_cast<std::int64_t>(worker));
  return d.Finish();
}

// C is ParallelExplore's candidate record: {state, hash, key{first,second},
// parent, via} with trivially copyable state/action.
template <typename C>
std::string EncodeFrontierRun(const std::vector<C>& run) {
  ckpt::BinaryWriter w;
  w.U64(run.size());
  for (const C& c : run) {
    w.Pod(c.state);
    w.U64(c.hash);
    w.U64(c.key.first);
    w.U32(c.key.second);
    w.U64(c.parent);
    w.Pod(c.via);
  }
  return w.Take();
}

template <typename C>
bool DecodeFrontierRun(std::string_view payload, std::vector<C>* out) {
  ckpt::BinaryReader r(payload);
  const std::uint64_t n = r.U64();
  std::vector<C> runs;
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    C c{};
    c.state = r.template Pod<decltype(c.state)>();
    c.hash = r.U64();
    c.key.first = r.U64();
    c.key.second = r.U32();
    c.parent = r.U64();
    c.via = r.template Pod<decltype(c.via)>();
    runs.push_back(c);
  }
  if (!r.AtEnd()) return false;
  *out = std::move(runs);
  return true;
}

template <typename C>
bool SaveFrontierRun(const std::string& path, std::uint64_t digest,
                     const std::vector<C>& run) {
  return ckpt::WriteCheckpointFile(path, ckpt::PayloadType::kFrontierShard,
                                   kFrontierShardVersion, digest,
                                   EncodeFrontierRun(run));
}

// kOk and a filled *out, or the failure classification: the envelope's
// LoadStatus verbatim, with a structurally damaged payload that passed the
// checksum reported as kChecksumMismatch.
template <typename C>
ckpt::LoadStatus LoadFrontierRun(const std::string& path, std::uint64_t digest,
                                 std::vector<C>* out) {
  std::string payload;
  const ckpt::LoadStatus s =
      ckpt::ReadCheckpointFile(path, ckpt::PayloadType::kFrontierShard,
                               kFrontierShardVersion, digest, &payload);
  if (s != ckpt::LoadStatus::kOk) return s;
  if (!DecodeFrontierRun(payload, out)) {
    return ckpt::LoadStatus::kChecksumMismatch;
  }
  return ckpt::LoadStatus::kOk;
}

}  // namespace cnv::mck
