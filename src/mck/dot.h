// Graphviz export of a model's reachable state graph — handy for inspecting
// small screening models (e.g. the Figure 6 RRC transitions) and for
// documenting counterexample neighbourhoods.
#pragma once

#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "mck/explorer.h"
#include "mck/intern_table.h"

namespace cnv::mck {

template <typename State>
struct DotOptions {
  std::size_t max_states = 500;
  // Node label; defaults to the node's discovery index.
  std::function<std::string(const State&)> label;
  // Nodes for which this returns true are drawn filled red (e.g. property
  // violations).
  std::function<bool(const State&)> highlight;
};

namespace internal {

inline std::string DotEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace internal

template <CheckableModel M>
std::string ExportDot(const M& model,
                      const DotOptions<typename M::State>& options = {}) {
  using State = typename M::State;
  using Action = typename M::Action;

  // Cached-hash visited table over arena indices, pre-sized from the export
  // bound: probe by (hash, value) first, append only on actual insertion.
  std::vector<State> states;
  states.reserve(options.max_states);
  InternTable index(options.max_states);

  std::string edges;
  std::queue<std::int64_t> frontier;
  bool truncated = false;

  auto intern = [&](State s) -> std::pair<std::int64_t, bool> {
    const std::uint64_t h = static_cast<std::uint64_t>(HashValue(s));
    const std::int64_t found = index.Find(h, [&](std::int64_t i) {
      return states[static_cast<std::size_t>(i)] == s;
    });
    if (found >= 0) return {found, false};
    states.push_back(std::move(s));
    const auto idx = static_cast<std::int64_t>(states.size()) - 1;
    index.Insert(h, idx);
    return {idx, true};
  };

  frontier.push(intern(model.initial()).first);
  while (!frontier.empty() && !truncated) {
    const auto idx = frontier.front();
    frontier.pop();
    for (const Action& a :
         model.enabled(states[static_cast<std::size_t>(idx)])) {
      auto [child, inserted] =
          intern(model.apply(states[static_cast<std::size_t>(idx)], a));
      edges += "  n" + std::to_string(idx) + " -> n" + std::to_string(child) +
               " [label=\"" + internal::DotEscape(model.describe(a)) +
               "\"];\n";
      if (inserted) {
        if (states.size() >= options.max_states) {
          truncated = true;
          break;
        }
        frontier.push(child);
      }
    }
  }

  std::string out = "digraph model {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"";
    out += options.label ? internal::DotEscape(options.label(states[i]))
                         : ("s" + std::to_string(i));
    out += "\"";
    if (i == 0) out += ", style=bold";
    if (options.highlight && options.highlight(states[i])) {
      out += ", style=filled, fillcolor=lightcoral";
    }
    out += "];\n";
  }
  out += edges;
  if (truncated) out += "  // truncated at max_states\n";
  out += "}\n";
  return out;
}

}  // namespace cnv::mck
