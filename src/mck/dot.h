// Graphviz export of a model's reachable state graph — handy for inspecting
// small screening models (e.g. the Figure 6 RRC transitions) and for
// documenting counterexample neighbourhoods.
#pragma once

#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "mck/explorer.h"

namespace cnv::mck {

template <typename State>
struct DotOptions {
  std::size_t max_states = 500;
  // Node label; defaults to the node's discovery index.
  std::function<std::string(const State&)> label;
  // Nodes for which this returns true are drawn filled red (e.g. property
  // violations).
  std::function<bool(const State&)> highlight;
};

namespace internal {

inline std::string DotEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace internal

template <CheckableModel M>
std::string ExportDot(const M& model,
                      const DotOptions<typename M::State>& options = {}) {
  using State = typename M::State;
  using Action = typename M::Action;

  std::vector<State> states;
  struct RefHash {
    const std::vector<State>* arena;
    std::size_t operator()(std::int64_t i) const {
      return HashValue((*arena)[static_cast<std::size_t>(i)]);
    }
  };
  struct RefEq {
    const std::vector<State>* arena;
    bool operator()(std::int64_t a, std::int64_t b) const {
      return (*arena)[static_cast<std::size_t>(a)] ==
             (*arena)[static_cast<std::size_t>(b)];
    }
  };
  std::unordered_map<std::int64_t, std::int64_t, RefHash, RefEq> index(
      64, RefHash{&states}, RefEq{&states});

  std::string edges;
  std::queue<std::int64_t> frontier;
  bool truncated = false;

  auto intern = [&](State s) -> std::pair<std::int64_t, bool> {
    states.push_back(std::move(s));
    const auto idx = static_cast<std::int64_t>(states.size()) - 1;
    auto [it, inserted] = index.try_emplace(idx, idx);
    if (!inserted) {
      states.pop_back();
      return {it->second, false};
    }
    return {idx, true};
  };

  frontier.push(intern(model.initial()).first);
  while (!frontier.empty() && !truncated) {
    const auto idx = frontier.front();
    frontier.pop();
    for (const Action& a :
         model.enabled(states[static_cast<std::size_t>(idx)])) {
      auto [child, inserted] =
          intern(model.apply(states[static_cast<std::size_t>(idx)], a));
      edges += "  n" + std::to_string(idx) + " -> n" + std::to_string(child) +
               " [label=\"" + internal::DotEscape(model.describe(a)) +
               "\"];\n";
      if (inserted) {
        if (states.size() >= options.max_states) {
          truncated = true;
          break;
        }
        frontier.push(child);
      }
    }
  }

  std::string out = "digraph model {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"";
    out += options.label ? internal::DotEscape(options.label(states[i]))
                         : ("s" + std::to_string(i));
    out += "\"";
    if (i == 0) out += ", style=bold";
    if (options.highlight && options.highlight(states[i])) {
      out += ", style=filled, fillcolor=lightcoral";
    }
    out += "];\n";
  }
  out += edges;
  if (truncated) out += "  // truncated at max_states\n";
  out += "}\n";
  return out;
}

}  // namespace cnv::mck
