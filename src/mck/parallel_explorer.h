// Parallel explicit-state exploration: BFS in depth-synchronized waves over
// a sharded visited table, on the shared worker pool (par/pool.h). The design
// goal is *determinism first*: at any worker count the result is
// byte-identical to the serial wave-BFS of mck/explorer.h — same
// states_visited / transitions / depth / truncation, and per property the
// same minimal (depth, canonical-trace) counterexample.
//
// How a wave at depth d runs:
//
//   1. EXPAND   Workers own contiguous slices of the depth-d frontier (the
//               slice split depends only on frontier size and job count).
//               Each successor state is hashed once; states already in the
//               visited table (frozen during this phase, so probes are
//               lock-free) are discarded, the rest are routed by the *top*
//               hash bits to one of 2^shard_bits mutex-striped shards,
//               tagged with a canonical key: (frontier position of the
//               parent, action index). Keys are globally unique and ordered
//               exactly like serial expansion.
//   2. INSERT   Whole shards are assigned to workers, so shard state needs
//               no locking here. Each shard sorts its candidates by key and
//               interns them in that order — first-insert-wins resolves
//               same-wave duplicates identically to serial BFS regardless of
//               which worker routed them. New states are checked against the
//               properties; hits are recorded as (key, property) candidates,
//               not yet committed.
//   3. MERGE    Single-threaded. New states from all shards are ordered by
//               key — reproducing serial discovery order — and accepted up
//               to the max_states cap; violation candidates at or below the
//               cap cutoff are committed in (key, property) order, which
//               makes the chosen counterexample the minimal one and the
//               violations vector identical to serial. The accepted states
//               form the next frontier.
//
// Wall-clock figures (worker busy time, utilization) are telemetry only and
// never feed deterministic outputs.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dist/executor.h"
#include "mck/explorer.h"
#include "mck/intern_table.h"
#include "mck/spill.h"

namespace cnv::mck {

struct ParallelExploreOptions {
  // Search bounds and property handling; `order` is ignored (always BFS).
  ExploreOptions base;
  // Worker count: 0 = hardware concurrency, 1 = inline (no threads).
  int jobs = 0;
  // log2 of the visited-table shard count. Shards are selected by the top
  // hash bits so per-shard tables keep full low-bit entropy.
  int shard_bits = 6;
  // Graceful drain, checked at wave boundaries: once *cancel becomes true
  // the current wave finishes (its merge stays deterministic) and the
  // result returns with stats.truncated unset and `cancelled` set. The
  // atomic shape (rather than ckpt::CancelToken) keeps mck free of a ckpt
  // *runtime-object* dependency; runners pass &token->flag().
  const std::atomic<bool>* cancel = nullptr;
  // Disk-backed frontier staging (mck/spill.h): when set, each wave's
  // candidate runs are written through the ckpt envelope into this
  // directory (owned by the run; files are deleted as they are consumed)
  // instead of held in RAM. Results are byte-identical with spill on or
  // off. Requires trivially copyable State/Action — silently ignored
  // otherwise. jobs == 1 with spill routes through the staged multi-worker
  // path so staging is actually exercised.
  std::string spill_dir;
  // Test seam: observes every spill-run path right after it is written, so
  // tests can truncate or corrupt the file and exercise the recovery path.
  std::function<void(const std::string&)> on_spill_write_for_test;
};

struct ParallelExploreStats {
  // Deterministic: identical at any job count.
  std::uint64_t waves = 0;          // expanded frontier waves
  std::uint32_t shards = 1;
  std::uint64_t largest_shard = 0;  // states in the fullest shard
  // Execution-shape figures; wall-clock based, telemetry only.
  int jobs = 1;
  double worker_busy_seconds = 0;  // summed across workers
  double utilization = 0;          // busy / (jobs * elapsed_wall)
  // Spill accounting. Run counts depend on the worker split, so these are
  // execution-shape too and stay out of ParallelStatsView.
  std::uint64_t spill_runs = 0;       // candidate runs written to disk
  std::uint64_t spill_recovered = 0;  // runs recomputed after a bad load
};

// Canonical deterministic view of ParallelExploreStats — the counterpart of
// mck::DeterministicView(ExploreStats); execution-shape fields (jobs, busy
// time, utilization) are excluded by construction.
struct ParallelStatsView {
  std::uint64_t waves = 0;
  std::uint32_t shards = 1;
  std::uint64_t largest_shard = 0;
  bool operator==(const ParallelStatsView&) const = default;
};

inline ParallelStatsView DeterministicView(const ParallelExploreStats& s) {
  return {s.waves, s.shards, s.largest_shard};
}

inline std::string ToString(const ParallelStatsView& v) {
  return "{waves=" + std::to_string(v.waves) +
         " shards=" + std::to_string(v.shards) +
         " largest_shard=" + std::to_string(v.largest_shard) + "}";
}

inline std::ostream& operator<<(std::ostream& os, const ParallelStatsView& v) {
  return os << ToString(v);
}

namespace internal {

// Candidate record staged between the expand and insert phases (and spilled
// through mck/spill.h). Namespace-scope rather than function-local so the
// spill codec templates can instantiate over it — gcc 12 ICEs on
// function-local classes there.
template <typename State, typename Action>
struct FrontierCandidate {
  State state;
  std::uint64_t hash = 0;
  // (frontier position of the parent, action index + 1) — the canonical
  // serial discovery key.
  std::pair<std::uint64_t, std::uint32_t> key{};
  std::uint64_t parent = ~0ull;
  Action via{};
};

}  // namespace internal

template <typename M>
struct ParallelExploreResult {
  std::vector<Violation<M>> violations;
  ExploreStats stats;
  ParallelExploreStats par;
  // True when options.cancel drained the search at a wave boundary; the
  // figures then cover the completed waves only.
  bool cancelled = false;

  const Violation<M>* FindViolation(const std::string& property) const {
    for (const auto& v : violations) {
      if (v.property == property) return &v;
    }
    return nullptr;
  }
  bool Holds(const std::string& property) const {
    return FindViolation(property) == nullptr;
  }
};

// Exhaustive BFS from the model's initial state on `exec` (or an executor
// created from options.jobs when none is passed). Deterministic: same output
// at any job count, byte-identical to serial Explore with kBreadthFirst.
template <CheckableModel M>
ParallelExploreResult<M> ParallelExplore(
    const M& model, const PropertySet<typename M::State>& properties,
    const ParallelExploreOptions& options = {},
    dist::Executor* external_exec = nullptr,
    const SnapshotHooks<M>* hooks = nullptr) {
  using State = typename M::State;
  using Action = typename M::Action;

  const auto wall_start = std::chrono::steady_clock::now();

  std::unique_ptr<dist::Executor> owned_exec;
  dist::Executor* exec = external_exec;
  if (exec == nullptr) {
    owned_exec = std::make_unique<dist::Executor>(options.jobs);
    exec = owned_exec.get();
  }
  const int jobs = exec->jobs();
  const std::vector<double> busy_before = exec->BusySeconds();

  const int shard_bits = std::clamp(options.shard_bits, 0, 16);
  const std::uint32_t n_shards = 1u << shard_bits;

  const internal::ReductionEngine<M> red(model, options.base.reduction,
                                         !properties.empty());
  // Spill requires POD state/action images (same bound as snapshot
  // persistence); for other models the option is inert.
  constexpr bool kPodModel = std::is_trivially_copyable_v<State> &&
                             std::is_trivially_copyable_v<Action>;
  const bool spill = kPodModel && !options.spill_dir.empty();

  // Global state ids pack (shard, local index); kNoParent marks the root.
  constexpr std::uint64_t kLocalMask = (1ull << 48) - 1;
  constexpr std::uint64_t kNoParent = ~0ull;

  struct NodeMeta {
    std::uint64_t parent = kNoParent;
    Action via{};
  };
  // Canonical candidate key: (frontier position of the parent, action index
  // + 1). Globally unique within a wave and ordered exactly like serial
  // expansion; deadlock candidates use action index 0 because serial checks
  // deadlock when it starts expanding the parent.
  using Key = std::pair<std::uint64_t, std::uint32_t>;
  using Candidate = internal::FrontierCandidate<State, Action>;
  struct PropHit {
    Key key{};
    std::uint32_t property = 0;
    std::uint64_t id = 0;
  };
  // One flush per (worker, wave): candidates[start, start+count) staged by
  // `worker`, or — when spilling — the file the run was written to plus the
  // frontier slice that produced it (so a damaged file can be re-expanded).
  // A worker's candidates are produced in key order and worker slices are
  // contiguous in frontier position, so iterating runs in worker order
  // visits a shard's candidates in global key order with no sort.
  struct Run {
    int worker = 0;
    std::size_t start = 0;
    std::size_t count = 0;
    std::string file;  // empty = candidates held in RAM
    std::size_t slice_begin = 0;
    std::size_t slice_end = 0;
  };
  struct Shard {
    std::vector<State> states;
    std::vector<NodeMeta> meta;
    InternTable table;
    std::mutex mu;
    std::vector<Candidate> candidates;   // staged this wave (under mu)
    std::vector<Run> runs;               // flush bookkeeping (under mu)
    std::vector<std::uint64_t> new_ids;  // interned this wave, key order
    std::vector<Key> new_keys;
    // Cached hashes of this wave's interned states, aligned with new_keys:
    // the beyond-cap rollback erases table entries with the hash already
    // computed during expand instead of re-hashing the state.
    std::vector<std::uint64_t> new_hashes;
    std::vector<PropHit> hits;  // uncommitted property violations
    // Cached per-state hashes, kept only when snapshot hooks are in play
    // (aligned with `states`, rolled back with it).
    std::vector<std::uint64_t> hashes;
  };

  std::vector<Shard> shards(n_shards);
  {
    const std::size_t hint =
        internal::ReserveHint(options.base.max_states) / n_shards + 8;
    for (Shard& s : shards) {
      s.states.reserve(hint);
      s.meta.reserve(hint);
      s.table.Reserve(hint);
      if (hooks != nullptr) s.hashes.reserve(hint);
    }
  }

  const auto shard_of = [shard_bits](std::uint64_t h) -> std::uint32_t {
    return shard_bits == 0
               ? 0u
               : static_cast<std::uint32_t>(h >> (64 - shard_bits));
  };
  const auto make_id = [](std::uint32_t sh, std::int64_t idx) {
    return (static_cast<std::uint64_t>(sh) << 48) |
           static_cast<std::uint64_t>(idx);
  };
  const auto state_of = [&shards, kLocalMask](std::uint64_t id) -> const State& {
    return shards[static_cast<std::size_t>(id >> 48)]
        .states[static_cast<std::size_t>(id & kLocalMask)];
  };

  auto reconstruct = [&](std::uint64_t id) {
    std::vector<Action> trace;
    for (;;) {
      const NodeMeta& m = shards[static_cast<std::size_t>(id >> 48)]
                              .meta[static_cast<std::size_t>(id & kLocalMask)];
      if (m.parent == kNoParent) break;
      trace.push_back(m.via);
      id = m.parent;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  ParallelExploreResult<M> result;
  result.par.shards = n_shards;
  result.par.jobs = jobs;
  std::unordered_set<std::string> violated;
  const bool fvpp = options.base.first_violation_per_property;
  const std::uint32_t kDeadlockProp =
      static_cast<std::uint32_t>(properties.size());

  auto all_violated = [&] {
    // An empty property set means "build the reachability graph", not "every
    // property is already violated" — keep exploring.
    return fvpp && !properties.empty() &&
           violated.size() == properties.size() &&
           !options.base.detect_deadlock;
  };

  // Snapshot bookkeeping, maintained only when hooks are in play: the global
  // discovery ("rank") order of states and the reverse id -> rank map. Rank
  // order is identical to serial interning order, which is what makes a
  // snapshot resumable by either engine at any job count.
  const bool track = hooks != nullptr;
  std::vector<std::uint64_t> order;         // rank -> id
  std::unordered_map<std::uint64_t, std::uint64_t> rank_of;  // id -> rank
  std::uint64_t depth = 0;

  std::vector<std::uint64_t> frontier;
  std::uint64_t visited = 0;
  if (track && hooks->resume != nullptr) {
    // Rebuild the shard arenas and tables from the snapshot's rank-ordered
    // node list. Routing rank order through shard_of reproduces exactly the
    // per-shard insertion order of the producing run (a shard sees its
    // candidates in global key order), so arenas, table growth and
    // hash_occupancy all come out identical.
    const ExploreSnapshot<M>& snap = *hooks->resume;
    order.reserve(snap.nodes.size());
    for (std::size_t rank = 0; rank < snap.nodes.size(); ++rank) {
      const auto& n = snap.nodes[rank];
      const std::uint32_t sh = shard_of(n.hash);
      Shard& shard = shards[sh];
      const std::uint64_t parent_id =
          n.parent == kNoParentRank ? kNoParent
                                    : order[static_cast<std::size_t>(n.parent)];
      shard.states.push_back(n.state);
      shard.meta.push_back({parent_id, n.via});
      shard.hashes.push_back(n.hash);
      const std::int64_t idx =
          static_cast<std::int64_t>(shard.states.size()) - 1;
      shard.table.Insert(n.hash, idx);
      const std::uint64_t id = make_id(sh, idx);
      order.push_back(id);
      rank_of.emplace(id, rank);
    }
    visited = snap.nodes.size();
    frontier.reserve(snap.frontier.size());
    for (const std::uint64_t r : snap.frontier) {
      frontier.push_back(order[static_cast<std::size_t>(r)]);
    }
    depth = snap.depth;
    result.par.waves = snap.waves;
    result.stats.transitions = snap.transitions;
    result.stats.frontier_peak = snap.frontier_peak;
    result.stats.max_depth_reached = snap.max_depth_reached;
    result.stats.ample_states = snap.ample_states;
    result.violations = snap.violations;
    for (const auto& v : result.violations) violated.insert(v.property);
  } else {
    // Intern the initial state and check it (single-threaded).
    State init = red.Canon(model.initial());
    const std::uint64_t h = static_cast<std::uint64_t>(HashValue(init));
    const std::uint32_t sh = shard_of(h);
    Shard& shard = shards[sh];
    shard.states.push_back(std::move(init));
    shard.meta.push_back({kNoParent, Action{}});
    if (track) shard.hashes.push_back(h);
    shard.table.Insert(h, 0);
    const std::uint64_t id = make_id(sh, 0);
    visited = 1;
    if (track) {
      order.push_back(id);
      rank_of.emplace(id, 0);
    }
    for (std::uint32_t p = 0; p < properties.size(); ++p) {
      if (!properties[p].holds(state_of(id))) {
        violated.insert(properties[p].name);
        result.violations.push_back({properties[p].name, {}, state_of(id)});
      }
    }
    frontier.push_back(id);
  }

  internal::SnapshotCadence cadence;
  if (track) {
    cadence.every_states = hooks->every_states;
    cadence.every_waves = hooks->every_waves;
    cadence.states_at_last = visited;
  }
  auto capture = [&] {
    ExploreSnapshot<M> snap;
    snap.nodes.resize(order.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      const std::uint64_t id = order[rank];
      const Shard& shard = shards[static_cast<std::size_t>(id >> 48)];
      const std::size_t local = static_cast<std::size_t>(id & kLocalMask);
      const NodeMeta& m = shard.meta[local];
      snap.nodes[rank] = {shard.states[local], shard.hashes[local],
                          m.parent == kNoParent ? kNoParentRank
                                                : rank_of.at(m.parent),
                          m.via};
    }
    snap.frontier.reserve(frontier.size());
    for (const std::uint64_t id : frontier) {
      snap.frontier.push_back(rank_of.at(id));
    }
    snap.depth = depth;
    snap.transitions = result.stats.transitions;
    snap.frontier_peak = result.stats.frontier_peak;
    snap.max_depth_reached = result.stats.max_depth_reached;
    snap.waves = result.par.waves;
    snap.ample_states = result.stats.ample_states;
    snap.violations = result.violations;
    return snap;
  };
  auto maybe_snapshot = [&] {
    if (track && hooks->on_snapshot != nullptr && !frontier.empty() &&
        !all_violated() && cadence.Due(visited)) {
      hooks->on_snapshot(capture());
    }
  };

  std::vector<std::uint64_t> worker_transitions(
      static_cast<std::size_t>(jobs), 0);
  std::vector<std::uint64_t> worker_ample(static_cast<std::size_t>(jobs), 0);
  std::vector<std::vector<Action>> worker_ample_buf(
      static_cast<std::size_t>(jobs));
  std::vector<std::vector<std::uint64_t>> worker_deadlocks(
      static_cast<std::size_t>(jobs));
  // Worker-local routing buffers, one per (worker, shard): candidates are
  // staged here during expand and flushed to the shard under its mutex once
  // per worker per wave, so lock traffic is O(jobs * shards), not
  // O(candidates). Buffers keep their capacity across waves.
  std::vector<std::vector<Candidate>> routed(
      static_cast<std::size_t>(jobs) * n_shards);

  bool truncated = false;
  std::vector<std::uint64_t> next_frontier;
  std::vector<std::pair<Key, std::uint64_t>> discovered;

  const auto drain_requested = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  // POR plumbing shared by both paths: `wave_start` holds each shard's
  // arena size when the current wave began, so the C3 freshness predicate
  // means "interned before this wave" even when probed against a table that
  // has since grown — during the frozen expand phase the cutoff is a no-op,
  // on the jobs==1 fast path (which interns mid-wave) and in the
  // spill-recovery post-pass it restores exact pre-wave semantics. This is
  // the same predicate the serial engine evaluates, which keeps reduced
  // exploration byte-identical at any job count.
  std::vector<std::int64_t> wave_start(n_shards, 0);
  const auto mark_wave_start = [&] {
    if (!red.por()) return;
    for (std::uint32_t sh = 0; sh < n_shards; ++sh) {
      wave_start[sh] = static_cast<std::int64_t>(shards[sh].states.size());
    }
  };
  const auto is_old_canon = [&](const State& t) {
    const std::uint64_t h = static_cast<std::uint64_t>(HashValue(t));
    const std::uint32_t sh = shard_of(h);
    const Shard& shard = shards[sh];
    const std::int64_t found = shard.table.Find(h, [&](std::int64_t i) {
      return shard.states[static_cast<std::size_t>(i)] == t;
    });
    return found >= 0 && found < wave_start[sh];
  };

  if (jobs == 1 && !spill) {
    // Serial fast path: the wave algorithm of mck::Explore run directly over
    // the sharded storage — no staging, no merge, single probe per
    // successor. Byte-identical to the multi-worker path by construction
    // (both reproduce serial wave order), including hash_occupancy, since
    // the shard tables end up with the same content.
    std::vector<Action> fast_ample;
    while (!frontier.empty() && !all_violated()) {
      if (drain_requested()) {
        result.cancelled = true;
        break;
      }
      result.stats.frontier_peak =
          std::max(result.stats.frontier_peak,
                   static_cast<std::uint64_t>(frontier.size()));
      result.stats.max_depth_reached =
          std::max(result.stats.max_depth_reached, depth);
      if (options.base.max_depth != 0 && depth >= options.base.max_depth) {
        truncated = true;
        break;
      }
      ++result.par.waves;
      mark_wave_start();
      next_frontier.clear();
      for (const std::uint64_t parent_id : frontier) {
        // Re-fetch the parent state on every use: a shard arena may
        // reallocate while children are interned.
        const std::vector<Action> actions =
            model.enabled(state_of(parent_id));
        if (actions.empty()) {
          if (options.base.detect_deadlock &&
              !violated.contains("deadlock") &&
              !internal::IsFinal(model, state_of(parent_id))) {
            violated.insert("deadlock");
            result.violations.push_back(
                {"deadlock", reconstruct(parent_id), state_of(parent_id)});
          }
          continue;
        }
        const std::vector<Action>* expand = &actions;
        if (red.por() &&
            red.SelectAmple(model, state_of(parent_id), actions, is_old_canon,
                            fast_ample)) {
          expand = &fast_ample;
          ++result.stats.ample_states;
        }
        for (const Action& a : *expand) {
          ++result.stats.transitions;
          State next = red.Canon(model.apply(state_of(parent_id), a));
          const std::uint64_t h = static_cast<std::uint64_t>(HashValue(next));
          const std::uint32_t sh = shard_of(h);
          Shard& shard = shards[sh];
          const std::int64_t found = shard.table.Find(h, [&](std::int64_t i) {
            return shard.states[static_cast<std::size_t>(i)] == next;
          });
          if (found >= 0) continue;
          if (options.base.max_states != 0 &&
              visited >= options.base.max_states) {
            truncated = true;
            continue;
          }
          shard.states.push_back(std::move(next));
          shard.meta.push_back({parent_id, a});
          if (track) shard.hashes.push_back(h);
          const std::int64_t idx =
              static_cast<std::int64_t>(shard.states.size()) - 1;
          shard.table.Insert(h, idx);
          ++visited;
          const std::uint64_t id = make_id(sh, idx);
          if (track) {
            rank_of.emplace(id, order.size());
            order.push_back(id);
          }
          for (std::uint32_t p = 0; p < properties.size(); ++p) {
            if (fvpp && violated.contains(properties[p].name)) continue;
            if (!properties[p].holds(state_of(id))) {
              violated.insert(properties[p].name);
              result.violations.push_back(
                  {properties[p].name, reconstruct(id), state_of(id)});
            }
          }
          next_frontier.push_back(id);
        }
      }
      frontier.swap(next_frontier);
      ++depth;
      if (truncated) break;
      maybe_snapshot();
    }
  } else {
  // Successor computation for frontier positions [begin, end), shared by the
  // expand phase and spill-run recovery. Candidates that survive the frozen
  // visited-table probe are routed through `sink(sh, candidate)`. `count`
  // gates the transition/deadlock/ample accounting so a recovery
  // re-expansion never double-counts figures phase 1 already recorded.
  auto expand_range = [&](int w, std::size_t begin, std::size_t end,
                          std::vector<Action>& ample_buf, bool count,
                          auto&& sink) {
    const std::size_t wi = static_cast<std::size_t>(w);
    for (std::size_t pos = begin; pos < end; ++pos) {
      const State& s = state_of(frontier[pos]);
      const std::vector<Action> actions = model.enabled(s);
      if (actions.empty()) {
        if (count && options.base.detect_deadlock &&
            !internal::IsFinal(model, s)) {
          worker_deadlocks[wi].push_back(pos);
        }
        continue;
      }
      const std::vector<Action>* expand = &actions;
      if (red.por() &&
          red.SelectAmple(model, s, actions, is_old_canon, ample_buf)) {
        expand = &ample_buf;
        if (count) ++worker_ample[wi];
      }
      for (std::uint32_t ai = 0;
           ai < static_cast<std::uint32_t>(expand->size()); ++ai) {
        if (count) ++worker_transitions[wi];
        State next = red.Canon(model.apply(s, (*expand)[ai]));
        const std::uint64_t h = static_cast<std::uint64_t>(HashValue(next));
        const std::uint32_t sh = shard_of(h);
        Shard& shard = shards[sh];
        // The table is frozen during expand, so this probe needs no lock;
        // it filters duplicates from earlier waves. (Recovery probes
        // single-threaded on grown tables: it then also discards same-wave
        // inserts, which the insert-phase dedup would skip anyway.)
        const std::int64_t seen = shard.table.Find(h, [&](std::int64_t i) {
          return shard.states[static_cast<std::size_t>(i)] == next;
        });
        if (seen >= 0) continue;
        sink(sh, Candidate{std::move(next), h, Key{pos, ai + 1},
                           frontier[pos], (*expand)[ai]});
      }
    }
  };
  while (!frontier.empty() && !all_violated()) {
    if (drain_requested()) {
      result.cancelled = true;
      break;
    }
    result.stats.frontier_peak =
        std::max(result.stats.frontier_peak,
                 static_cast<std::uint64_t>(frontier.size()));
    result.stats.max_depth_reached =
        std::max(result.stats.max_depth_reached, depth);
    if (options.base.max_depth != 0 && depth >= options.base.max_depth) {
      truncated = true;
      break;
    }
    ++result.par.waves;
    mark_wave_start();

    // --- 1. expand -------------------------------------------------------
    for (int w = 0; w < jobs; ++w) {
      worker_transitions[static_cast<std::size_t>(w)] = 0;
      worker_ample[static_cast<std::size_t>(w)] = 0;
      worker_deadlocks[static_cast<std::size_t>(w)].clear();
    }
    exec->ParallelFor(
        frontier.size(), [&](int w, std::size_t begin, std::size_t end) {
          const std::size_t wi = static_cast<std::size_t>(w);
          std::vector<Candidate>* local = &routed[wi * n_shards];
          expand_range(w, begin, end, worker_ample_buf[wi], true,
                       [&](std::uint32_t sh, Candidate&& c) {
                         local[sh].push_back(std::move(c));
                       });
          // Flush this worker's staged candidates: to disk when spilling,
          // otherwise into the shard's staging area, one lock per shard.
          for (std::uint32_t sh = 0; sh < n_shards; ++sh) {
            if (local[sh].empty()) continue;
            Shard& shard = shards[sh];
            if (spill) {
              if constexpr (kPodModel) {
                const std::string path = options.spill_dir + "/wave" +
                                         std::to_string(depth) + "_s" +
                                         std::to_string(sh) + "_j" +
                                         std::to_string(w) + ".run";
                // A failed write is not fatal: the insert phase classifies
                // the file via LoadStatus and recovers by re-expansion.
                (void)SaveFrontierRun(path, FrontierRunDigest(depth, sh, w),
                                      local[sh]);
                if (options.on_spill_write_for_test) {
                  options.on_spill_write_for_test(path);
                }
                std::lock_guard<std::mutex> lock(shard.mu);
                shard.runs.push_back(
                    {w, 0, local[sh].size(), path, begin, end});
                local[sh].clear();
              }
            } else {
              std::lock_guard<std::mutex> lock(shard.mu);
              shard.runs.push_back({w, shard.candidates.size(),
                                    local[sh].size(), std::string(), begin,
                                    end});
              shard.candidates.insert(
                  shard.candidates.end(),
                  std::make_move_iterator(local[sh].begin()),
                  std::make_move_iterator(local[sh].end()));
              local[sh].clear();
            }
          }
        });
    for (int w = 0; w < jobs; ++w) {
      result.stats.transitions += worker_transitions[static_cast<std::size_t>(w)];
      result.stats.ample_states += worker_ample[static_cast<std::size_t>(w)];
    }
    if (spill) {
      for (const Shard& shard : shards) {
        for (const Run& run : shard.runs) {
          if (!run.file.empty()) ++result.par.spill_runs;
        }
      }
    }

    // --- 2. insert -------------------------------------------------------
    // Which properties still need checking this wave (pre-wave snapshot; the
    // merge phase resolves same-wave ties by key).
    std::vector<char> already_violated(properties.size(), 0);
    for (std::uint32_t p = 0; p < properties.size(); ++p) {
      already_violated[p] = fvpp && violated.contains(properties[p].name);
    }
    // Interns one surviving candidate into its shard: arena append, table
    // insert, wave bookkeeping (new_ids/new_keys/new_hashes) and property
    // checks. Runs under shard ownership — the insert ParallelFor assigns
    // whole shards to workers, and the recovery post-pass is
    // single-threaded.
    auto process_candidate = [&](Shard& shard, std::size_t si, Candidate& c) {
      const std::int64_t seen = shard.table.Find(c.hash, [&](std::int64_t i) {
        return shard.states[static_cast<std::size_t>(i)] == c.state;
      });
      if (seen >= 0) return;  // same-wave duplicate: first key wins
      shard.states.push_back(std::move(c.state));
      shard.meta.push_back({c.parent, c.via});
      if (track) shard.hashes.push_back(c.hash);
      const std::int64_t idx =
          static_cast<std::int64_t>(shard.states.size()) - 1;
      shard.table.Insert(c.hash, idx);
      const std::uint64_t id = make_id(static_cast<std::uint32_t>(si), idx);
      shard.new_ids.push_back(id);
      shard.new_keys.push_back(c.key);
      shard.new_hashes.push_back(c.hash);
      const State& s = shard.states[static_cast<std::size_t>(idx)];
      for (std::uint32_t p = 0;
           p < static_cast<std::uint32_t>(properties.size()); ++p) {
        if (already_violated[p]) continue;
        if (!properties[p].holds(s)) shard.hits.push_back({c.key, p, id});
      }
    };
    // Processes shard.runs[first..] in order, consuming (and deleting)
    // spill files as it goes. Returns runs.size() when done, or the index
    // of the first run whose spill file failed to load — processing stops
    // there so key order is preserved across the recovery.
    auto process_runs = [&](Shard& shard, std::size_t si,
                            std::size_t first) -> std::size_t {
      for (std::size_t ri = first; ri < shard.runs.size(); ++ri) {
        const Run& run = shard.runs[ri];
        if (run.file.empty()) {
          for (std::size_t ci = run.start; ci < run.start + run.count; ++ci) {
            process_candidate(shard, si, shard.candidates[ci]);
          }
          continue;
        }
        if constexpr (kPodModel) {
          std::vector<Candidate> loaded;
          if (LoadFrontierRun(run.file,
                              FrontierRunDigest(
                                  depth, static_cast<std::uint32_t>(si),
                                  run.worker),
                              &loaded) != ckpt::LoadStatus::kOk) {
            return ri;
          }
          std::remove(run.file.c_str());
          for (Candidate& c : loaded) process_candidate(shard, si, c);
        }
      }
      return shard.runs.size();
    };
    std::mutex deferred_mu;
    std::vector<std::pair<std::size_t, std::size_t>> deferred;
    exec->ParallelFor(n_shards, [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t si = begin; si < end; ++si) {
        Shard& shard = shards[si];
        // Visit candidates in global key order: runs sorted by worker id
        // (worker slices are ascending in frontier position, and each run
        // is produced in key order).
        std::sort(shard.runs.begin(), shard.runs.end(),
                  [](const Run& a, const Run& b) { return a.worker < b.worker; });
        const std::size_t stop = process_runs(shard, si, 0);
        if (stop < shard.runs.size()) {
          // A spill run failed to load. Defer this shard: recovery
          // re-expands frontier slices, which probes *other* shards'
          // tables — racy while they are still inserting, so it has to
          // wait for the barrier below.
          std::lock_guard<std::mutex> lock(deferred_mu);
          deferred.emplace_back(si, stop);
        } else {
          shard.candidates.clear();
          shard.runs.clear();
        }
      }
    });
    // Spill recovery post-pass (single-threaded): for each damaged run,
    // re-expand the frontier slice that produced it, keep only candidates
    // routed to the deferred shard, and resume run processing behind it.
    // The wave_start cutoff makes the C3 freshness probe ignore this wave's
    // inserts, and phase 1 already counted transitions/deadlocks/ample, so
    // every deterministic figure is unchanged.
    if (!deferred.empty()) {
      std::sort(deferred.begin(), deferred.end());
      for (const auto& [si, first] : deferred) {
        Shard& shard = shards[si];
        std::size_t ri = first;
        while (ri < shard.runs.size()) {
          const std::size_t stop = process_runs(shard, si, ri);
          if (stop >= shard.runs.size()) break;
          const Run& bad = shard.runs[stop];
          std::vector<Candidate> rebuilt;
          std::vector<Action> recovery_ample;
          expand_range(bad.worker, bad.slice_begin, bad.slice_end,
                       recovery_ample, false,
                       [&](std::uint32_t sh, Candidate&& c) {
                         if (sh == static_cast<std::uint32_t>(si)) {
                           rebuilt.push_back(std::move(c));
                         }
                       });
          for (Candidate& c : rebuilt) process_candidate(shard, si, c);
          std::remove(bad.file.c_str());
          ++result.par.spill_recovered;
          ri = stop + 1;
        }
        shard.candidates.clear();
        shard.runs.clear();
      }
    }

    // --- 3. merge --------------------------------------------------------
    discovered.clear();
    for (Shard& shard : shards) {
      for (std::size_t i = 0; i < shard.new_ids.size(); ++i) {
        discovered.emplace_back(shard.new_keys[i], shard.new_ids[i]);
      }
    }
    std::sort(discovered.begin(), discovered.end());

    // max_states acts in discovery-key order, exactly like serial interning.
    std::size_t accept = discovered.size();
    if (options.base.max_states != 0 &&
        visited + discovered.size() > options.base.max_states) {
      accept = static_cast<std::size_t>(options.base.max_states - visited);
      truncated = true;
    }
    visited += accept;
    const bool has_cutoff = accept < discovered.size();
    const Key cutoff = accept > 0 ? discovered[accept - 1].first : Key{0, 0};

    // Roll back beyond-cap states: serial interning never admits them, so
    // drop them from the shard arenas and tables to keep every reported
    // figure (hash_occupancy, largest_shard) identical at any job count.
    // A shard's wave entries are appended in ascending key order, so the
    // rejects are a suffix of its arena.
    if (has_cutoff) {
      for (Shard& shard : shards) {
        const std::size_t keep = static_cast<std::size_t>(
            std::upper_bound(shard.new_keys.begin(), shard.new_keys.end(),
                             cutoff) -
            shard.new_keys.begin());
        while (shard.new_keys.size() > keep) {
          // Erase by the hash cached at insert time — re-hashing the state
          // here would double the hash work for every beyond-cap state.
          shard.table.Erase(
              shard.new_hashes.back(),
              static_cast<std::int64_t>(shard.states.size()) - 1);
          shard.states.pop_back();
          shard.meta.pop_back();
          if (track) shard.hashes.pop_back();
          shard.new_keys.pop_back();
          shard.new_ids.pop_back();
          shard.new_hashes.pop_back();
        }
      }
    }
    for (Shard& shard : shards) {
      shard.new_ids.clear();
      shard.new_keys.clear();
      shard.new_hashes.clear();
    }

    // Commit violation candidates in (key, property) order — the minimal
    // (depth, canonical-trace) counterexample per property, and the same
    // violations-vector order as serial.
    struct VCand {
      Key key{};
      std::uint32_t property = 0;
      std::uint64_t id = 0;
    };
    std::vector<VCand> vcands;
    if (options.base.detect_deadlock && !violated.contains("deadlock")) {
      for (const auto& positions : worker_deadlocks) {
        for (const std::uint64_t pos : positions) {
          vcands.push_back({Key{pos, 0}, kDeadlockProp, frontier[pos]});
        }
      }
    }
    for (Shard& shard : shards) {
      for (const PropHit& hit : shard.hits) {
        // States beyond the cap were never interned serially, so their
        // property checks never happened.
        if (has_cutoff && (accept == 0 || cutoff < hit.key)) continue;
        vcands.push_back({hit.key, hit.property, hit.id});
      }
      shard.hits.clear();
    }
    std::sort(vcands.begin(), vcands.end(),
              [](const VCand& a, const VCand& b) {
                return std::tie(a.key, a.property) < std::tie(b.key, b.property);
              });
    for (const VCand& c : vcands) {
      if (c.property == kDeadlockProp) {
        if (violated.contains("deadlock")) continue;
        violated.insert("deadlock");
        result.violations.push_back(
            {"deadlock", reconstruct(c.id), state_of(c.id)});
        continue;
      }
      const std::string& name = properties[c.property].name;
      if (fvpp && violated.contains(name)) continue;
      violated.insert(name);
      result.violations.push_back({name, reconstruct(c.id), state_of(c.id)});
    }

    next_frontier.clear();
    next_frontier.reserve(accept);
    for (std::size_t i = 0; i < accept; ++i) {
      next_frontier.push_back(discovered[i].second);
    }
    if (track) {
      for (std::size_t i = 0; i < accept; ++i) {
        rank_of.emplace(discovered[i].second, order.size());
        order.push_back(discovered[i].second);
      }
    }
    frontier.swap(next_frontier);
    ++depth;
    if (truncated) break;
    maybe_snapshot();
  }
  }

  result.stats.states_visited = visited;
  result.stats.truncated = truncated;
  // Orbit accounting: each canonical representative stands for its whole
  // permutation orbit. Recomputed over the final arenas (rollback keeps them
  // equal to the visited set), exactly like the serial engine.
  if (red.orbits()) {
    for (const Shard& shard : shards) {
      for (const State& s : shard.states) {
        result.stats.represented_states += red.OrbitSize(s);
      }
    }
  } else {
    result.stats.represented_states = visited;
  }
  std::size_t table_size = 0;
  std::size_t table_capacity = 0;
  for (const Shard& shard : shards) {
    table_size += shard.table.size();
    table_capacity += shard.table.capacity();
    result.par.largest_shard =
        std::max(result.par.largest_shard,
                 static_cast<std::uint64_t>(shard.table.size()));
  }
  result.stats.hash_occupancy =
      table_capacity == 0
          ? 0.0
          : static_cast<double>(table_size) / static_cast<double>(table_capacity);
  result.stats.elapsed_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const std::vector<double> busy_after = exec->BusySeconds();
  for (std::size_t w = 0; w < busy_after.size(); ++w) {
    result.par.worker_busy_seconds +=
        busy_after[w] - (w < busy_before.size() ? busy_before[w] : 0.0);
  }
  if (result.stats.elapsed_wall_seconds > 0 && jobs > 0) {
    result.par.utilization =
        std::min(1.0, result.par.worker_busy_seconds /
                          (static_cast<double>(jobs) *
                           result.stats.elapsed_wall_seconds));
  }
  return result;
}

}  // namespace cnv::mck
