// Safety properties checked during state-space exploration. A property is a
// named invariant over model states; the explorer reports a counterexample
// trace the first time each property is violated. This is how the paper's
// three cellular-oriented properties (PacketService_OK, CallService_OK,
// MM_OK, §3.2.2) are expressed.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace cnv::mck {

template <typename State>
struct Property {
  std::string name;
  // Returns true when the state satisfies the property.
  std::function<bool(const State&)> holds;
  // Human-readable description used in reports.
  std::string description;
};

template <typename State>
using PropertySet = std::vector<Property<State>>;

}  // namespace cnv::mck
