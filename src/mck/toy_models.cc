#include "mck/toy_models.h"

#include "mck/symmetry.h"

namespace cnv::mck::toys {

// --- CounterModel ---

std::vector<CounterModel::Action> CounterModel::enabled(const State& s) const {
  std::vector<Action> out;
  if (s.value < cap) out.push_back({1});
  if (buggy && s.value >= cap - 1 && s.value < cap + 1) out.push_back({2});
  return out;
}

CounterModel::State CounterModel::apply(const State& s,
                                        const Action& a) const {
  State next = s;
  next.value += a.amount;
  return next;
}

std::string CounterModel::describe(const Action& a) const {
  return "increment by " + std::to_string(a.amount);
}

std::size_t HashValue(const CounterModel::State& s) {
  return Hasher().Mix(s.value).Digest();
}

// --- PetersonModel ---

std::vector<PetersonModel::Action> PetersonModel::enabled(
    const State& s) const {
  std::vector<Action> out;
  for (int p = 0; p < 2; ++p) {
    const int other = 1 - p;
    switch (s.loc[static_cast<std::size_t>(p)]) {
      case Loc::kIdle:
      case Loc::kWantFlag:
      case Loc::kWantTurn:
        out.push_back({p});
        break;
      case Loc::kWait: {
        const bool may_enter =
            !s.flag[static_cast<std::size_t>(other)] ||
            (use_turn_variable ? s.turn != other : true);
        if (may_enter) out.push_back({p});
        break;
      }
      case Loc::kCrit:
        out.push_back({p});
        break;
    }
  }
  return out;
}

PetersonModel::State PetersonModel::apply(const State& s,
                                          const Action& a) const {
  State next = s;
  const auto p = static_cast<std::size_t>(a.process);
  switch (s.loc[p]) {
    case Loc::kIdle:
      next.loc[p] = Loc::kWantFlag;
      break;
    case Loc::kWantFlag:
      next.flag[p] = true;
      next.loc[p] = Loc::kWantTurn;
      break;
    case Loc::kWantTurn:
      next.turn = 1 - a.process;
      next.loc[p] = Loc::kWait;
      break;
    case Loc::kWait:
      next.loc[p] = Loc::kCrit;
      break;
    case Loc::kCrit:
      next.flag[p] = false;
      next.loc[p] = Loc::kIdle;
      break;
  }
  return next;
}

std::string PetersonModel::describe(const Action& a) const {
  return "process " + std::to_string(a.process) + " steps";
}

std::size_t HashValue(const PetersonModel::State& s) {
  return Hasher()
      .Mix(s.loc[0])
      .Mix(s.loc[1])
      .Mix(s.flag[0])
      .Mix(s.flag[1])
      .Mix(s.turn)
      .Digest();
}

// --- LossyPingModel ---

std::vector<LossyPingModel::Action> LossyPingModel::enabled(
    const State& s) const {
  std::vector<Action> out;
  if (s.sender_got_ack) return out;  // done
  const bool may_send = !s.ping_in_flight && !s.receiver_got_ping &&
                        (retransmit ? s.sends < 3 : s.sends < 1);
  if (may_send) out.push_back({Kind::kSend});
  if (s.ping_in_flight) {
    out.push_back({Kind::kDropPing});
    out.push_back({Kind::kDeliverPing});
  }
  if (s.receiver_got_ping && !s.ack_in_flight) out.push_back({Kind::kSendAck});
  if (s.ack_in_flight) out.push_back({Kind::kDeliverAck});
  return out;
}

LossyPingModel::State LossyPingModel::apply(const State& s,
                                            const Action& a) const {
  State next = s;
  switch (a.kind) {
    case Kind::kSend:
      next.ping_in_flight = true;
      ++next.sends;
      break;
    case Kind::kDropPing:
      next.ping_in_flight = false;
      break;
    case Kind::kDeliverPing:
      next.ping_in_flight = false;
      next.receiver_got_ping = true;
      break;
    case Kind::kSendAck:
      next.ack_in_flight = true;
      break;
    case Kind::kDeliverAck:
      next.ack_in_flight = false;
      next.sender_got_ack = true;
      break;
  }
  return next;
}

std::string LossyPingModel::describe(const Action& a) const {
  switch (a.kind) {
    case Kind::kSend:
      return "sender transmits PING";
    case Kind::kDropPing:
      return "channel drops PING";
    case Kind::kDeliverPing:
      return "receiver gets PING";
    case Kind::kSendAck:
      return "receiver transmits ACK";
    case Kind::kDeliverAck:
      return "sender gets ACK";
  }
  return "?";
}

std::size_t HashValue(const LossyPingModel::State& s) {
  return Hasher()
      .Mix(s.ping_in_flight)
      .Mix(s.ack_in_flight)
      .Mix(s.receiver_got_ping)
      .Mix(s.sender_got_ack)
      .Mix(s.sends)
      .Digest();
}

// --- DeadlockModel ---

std::vector<DeadlockModel::Action> DeadlockModel::enabled(
    const State& s) const {
  std::vector<Action> out;
  for (int p = 0; p < 2; ++p) {
    // Process p takes lock p first, then lock 1-p; holding both it releases
    // and restarts. A step is enabled iff the next lock is free.
    const auto prog = s.progress[static_cast<std::size_t>(p)];
    if (prog == 0 && s.holder[static_cast<std::size_t>(p)] == -1) {
      out.push_back({p});
    } else if (prog == 1 &&
               s.holder[static_cast<std::size_t>(1 - p)] == -1) {
      out.push_back({p});
    } else if (prog == 2) {
      out.push_back({p});
    }
  }
  return out;
}

DeadlockModel::State DeadlockModel::apply(const State& s,
                                          const Action& a) const {
  State next = s;
  const auto p = static_cast<std::size_t>(a.process);
  const auto first = p;
  const auto second = 1 - p;
  switch (s.progress[p]) {
    case 0:
      next.holder[first] = a.process;
      next.progress[p] = 1;
      break;
    case 1:
      next.holder[second] = a.process;
      next.progress[p] = 2;
      break;
    case 2:
      next.holder[first] = -1;
      next.holder[second] = -1;
      next.progress[p] = 0;
      break;
    default:
      break;
  }
  return next;
}

std::string DeadlockModel::describe(const Action& a) const {
  return "process " + std::to_string(a.process) + " advances";
}

std::size_t HashValue(const DeadlockModel::State& s) {
  return Hasher()
      .Mix(s.holder[0])
      .Mix(s.holder[1])
      .Mix(s.progress[0])
      .Mix(s.progress[1])
      .Digest();
}

// --- IndepWorkersModel ---

std::vector<IndepWorkersModel::Action> IndepWorkersModel::enabled(
    const State& s) const {
  std::vector<Action> out;
  for (int w = 0; w < workers; ++w) {
    if (s.count[static_cast<std::size_t>(w)] < steps) out.push_back({w});
  }
  return out;
}

IndepWorkersModel::State IndepWorkersModel::apply(const State& s,
                                                  const Action& a) const {
  State next = s;
  ++next.count[static_cast<std::size_t>(a.worker)];
  return next;
}

std::string IndepWorkersModel::describe(const Action& a) const {
  return "worker " + std::to_string(a.worker) + " steps";
}

ReductionSpec<IndepWorkersModel> IndepWorkersModel::reduction() const {
  ReductionSpec<IndepWorkersModel> spec;
  spec.components = workers;
  spec.owner = [](const State&, const Action& a) { return a.worker; };
  spec.local = [](const State&, const Action&) { return true; };
  spec.visible = [](const State&, const Action&) { return false; };
  // No unsafe oracle: every guard reads only the worker's own counter.
  const std::size_t n = static_cast<std::size_t>(workers);
  spec.canonicalize = [n](const State& s) {
    State c = s;
    SortBlocks(c.count, n);
    return c;
  };
  spec.orbit_size = [n](const State& s) {
    return MultisetOrbitSize(s.count, n);
  };
  return spec;
}

std::size_t HashValue(const IndepWorkersModel::State& s) {
  Hasher h;
  for (const std::uint8_t c : s.count) h.Mix(c);
  return h.Digest();
}

}  // namespace cnv::mck::toys
