// State-space reduction interface: a model opts into partial-order and/or
// symmetry reduction by exposing a `ReductionSpec` through a `reduction()`
// method. The spec is purely declarative — per-state oracles the exploration
// engines (mck/explorer.h, mck/parallel_explorer.h) consult when the caller
// enables reduction via ReductionOptions. A model without a reduction()
// method, or an engine run with both flags off, explores the full product
// exactly as before; reduction never changes which property violations are
// reachable (see tests/mck_por_test.cc for the differential proof
// obligation).
//
// The soundness contract a spec must honour (DESIGN.md "State-space
// reduction" spells out how the engines use each oracle):
//
//   owner(s, a)    The component (process/UE) the action belongs to, in
//                  [0, components), or kSharedComponent for actions that
//                  touch cross-component state. Partitioning must be
//                  consistent across states.
//   local(s, a)    May return true ONLY if both the guard and the effect of
//                  `a` touch state that no other component's actions (and no
//                  shared action) read or write. This is the independence
//                  half of ample condition C1.
//   visible(s, a)  Must return true if `a` can change the valuation of ANY
//                  property the model is ever checked against (condition
//                  C2). Visibility must be uniform over all states where the
//                  action is enabled: if an action kind can flip a property
//                  somewhere, report it visible everywhere.
//   unsafe(s, c)   Must return true if component c has, at s, an action that
//                  is currently disabled but whose guard reads state outside
//                  the component — such an action could be enabled by
//                  another component's move and would then race the ample
//                  set (the "pending shared guard" hazard). Absent oracle =
//                  components are closed (no shared guards anywhere).
//   canonicalize(s)  The orbit representative of s under the model's
//                  symmetry group (for N interchangeable UEs: the state with
//                  its UE blocks sorted). Must be idempotent and must map
//                  symmetric states to the same representative; enabled/
//                  apply/properties must commute with the permutation.
//   orbit_size(s)  Number of concrete states in the orbit of representative
//                  s (for sorted UE blocks: N! / prod(multiplicity!)). Used
//                  only for the represented_states accounting.
#pragma once

#include <cstdint>
#include <functional>

namespace cnv::mck {

inline constexpr int kSharedComponent = -1;

// Engine-level switches; carried inside ExploreOptions. Enabling a
// reduction on a model that does not declare the matching spec pieces is a
// no-op (full exploration), so callers can pass the same options to every
// model in a sweep.
struct ReductionOptions {
  bool por = false;       // ample-set partial-order reduction
  bool symmetry = false;  // canonical-form symmetry reduction
};

template <typename M>
struct ReductionSpec {
  using State = typename M::State;
  using Action = typename M::Action;

  // Number of interchangeable-or-not components the actions partition into.
  // POR needs >= 2 to ever reduce anything.
  int components = 1;
  std::function<int(const State&, const Action&)> owner;
  std::function<bool(const State&, const Action&)> local;
  std::function<bool(const State&, const Action&)> visible;
  std::function<bool(const State&, int)> unsafe;
  std::function<State(const State&)> canonicalize;
  std::function<std::uint64_t(const State&)> orbit_size;
};

template <typename M>
concept ReducibleModel = requires(const M m) {
  { m.reduction() } -> std::convertible_to<ReductionSpec<M>>;
};

}  // namespace cnv::mck
