// Procedure spans: typed intervals stitched out of the flat TraceRecord
// stream a run produces. Where QXDM gives the paper individual trace items
// (§3.3), a span covers one whole control-plane procedure — an attach from
// first Attach Request to Accept/Reject, a CSFB call from dial to
// establishment, an outage window from "outage begins" to "recovered" —
// with its outcome and how many retransmissions it took. Spans export to
// Chrome trace-event JSON so a run opens directly in a trace viewer
// (chrome://tracing, Perfetto).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "trace/record.h"

namespace cnv::obs {

enum class SpanKind : std::uint8_t {
  kAttach,          // EMM attach (4G)
  kGprsAttach,      // GMM attach (3G PS)
  kLocationUpdate,  // MM LAU (3G CS)
  kRoutingUpdate,   // GMM RAU (3G PS)
  kTrackingUpdate,  // EMM TAU (4G)
  kPdpActivation,   // SM PDP context activation (3G PS)
  kCall,            // CM/CC call setup: dial -> established (CSFB or VoLTE)
  kOutage,          // RecoveryMonitor outage window per property
};

std::string ToString(SpanKind k);

enum class SpanOutcome : std::uint8_t {
  kSuccess,
  kFailure,  // explicit reject, or superseded by a restarted procedure
  kOpen,     // still pending when the run ended
};

std::string ToString(SpanOutcome o);

struct ProcedureSpan {
  SpanKind kind = SpanKind::kAttach;
  SimTime start = 0;
  SimTime end = 0;  // for kOpen spans: the time of the last trace record
  SpanOutcome outcome = SpanOutcome::kOpen;
  int retries = 0;      // retransmissions observed inside the span
  std::string detail;   // closing record's description (cause, property...)

  SimDuration Duration() const { return end - start; }

  bool operator==(const ProcedureSpan&) const = default;
};

// Scans the records in order and pairs procedure starts with their ends.
// A start marker arriving while the same-kind span is open closes the open
// span as kFailure (the stack restarted the procedure); spans still open at
// the end of the log are emitted with outcome kOpen. Output is ordered by
// span end time (open spans last, by start time), deterministically.
std::vector<ProcedureSpan> StitchSpans(
    const std::vector<trace::TraceRecord>& records);

// Chrome trace-event JSON for one process. `pid` groups the spans in the
// viewer; pass distinct pids to merge several runs into one file via
// ChromeTraceCombine. ts/dur are microseconds — exactly SimTime's unit.
std::string ChromeTraceEvents(const std::vector<ProcedureSpan>& spans,
                              const std::string& process_name, int pid);

// Wraps per-process event fragments into one loadable trace document.
std::string ChromeTraceDocument(const std::vector<std::string>& fragments);

// Folds spans into a registry: per-kind counters ("span.attach.count",
// ".success", ".failure", ".retries") and latency histograms
// ("span.attach.latency_s", completed spans only).
void RecordSpans(Registry& reg, const std::vector<ProcedureSpan>& spans);

}  // namespace cnv::obs
