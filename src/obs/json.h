// Minimal deterministic JSON writer used by the telemetry exporters. Same
// inputs always serialize to the same bytes (field order is caller-driven,
// number formatting is fixed), which is what makes the exported metric
// snapshots and span files byte-identical across replayed runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cnv::obs {

// Escapes a string for embedding inside JSON double quotes.
std::string JsonEscape(const std::string& s);

// Fixed-format rendering of a double: integral values print without a
// fractional part, everything else with up to 6 significant decimals and
// trailing zeros trimmed. NaN/inf (not valid JSON) render as null.
std::string JsonNumber(double v);

// Streaming writer with an explicit nesting stack; commas are inserted
// automatically. Misuse (e.g. a value where a key is required) is a logic
// error and asserts in debug builds rather than emitting bad JSON.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value inside an object.
  JsonWriter& Key(const std::string& k);

  JsonWriter& String(const std::string& v);
  JsonWriter& Int(std::int64_t v);
  JsonWriter& UInt(std::uint64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();
  // Splices a pre-serialized JSON value verbatim (for nesting snapshots).
  JsonWriter& Raw(const std::string& json);

  // Returns the serialized document; the writer is left empty.
  std::string Take();

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open object/array: whether a value was already written.
  struct Frame {
    bool array = false;
    bool has_value = false;
  };
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace cnv::obs
