#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace cnv::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  std::string s = buf;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    assert(stack_.back().array && "object members need a Key() first");
    if (stack_.back().has_value) out_ += ',';
    stack_.back().has_value = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && !stack_.back().array);
  out_ += '}';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back().array);
  out_ += ']';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  assert(!stack_.empty() && !stack_.back().array);
  if (stack_.back().has_value) out_ += ',';
  stack_.back().has_value = true;
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  out_ += JsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Take() {
  assert(stack_.empty() && "Take() with unclosed objects/arrays");
  std::string s = std::move(out_);
  out_.clear();
  pending_key_ = false;
  return s;
}

}  // namespace cnv::obs
