#include "obs/export.h"

#include <cctype>
#include <filesystem>
#include <fstream>

#include "obs/json.h"

namespace cnv::obs {

SnapshotScheduler::SnapshotScheduler(sim::Simulator& sim, Refresh refresh,
                                     SimDuration period)
    : sim_(sim), refresh_(std::move(refresh)), period_(period) {}

void SnapshotScheduler::Start() {
  if (running_) return;
  running_ = true;
  sim_.ScheduleIn(period_, [this] {
    SnapshotNow();
    running_ = false;
    Start();
  });
}

void SnapshotScheduler::SnapshotNow() {
  Registry reg;
  refresh_(reg);
  snapshots_.push_back(reg.ToJson(sim_.now()));
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("meta").BeginObject();
  for (const auto& [k, v] : meta) w.Key(k).String(v);
  w.EndObject();
  w.Key("snapshots").BeginArray();
  for (const auto& s : snapshots) w.Raw(s);
  w.EndArray();
  w.Key("final");
  if (final_metrics.empty()) {
    w.Null();
  } else {
    w.Raw(final_metrics);
  }
  w.Key("spans").BeginArray();
  for (const auto& s : spans) {
    w.BeginObject()
        .Key("kind")
        .String(ToString(s.kind))
        .Key("start_us")
        .Int(s.start)
        .Key("end_us")
        .Int(s.end)
        .Key("outcome")
        .String(ToString(s.outcome))
        .Key("retries")
        .Int(s.retries)
        .Key("detail")
        .String(s.detail)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::string RunReport::ChromeFragment(int pid) const {
  return ChromeTraceEvents(spans, Label(), pid);
}

std::string RunReport::Label() const {
  std::string label;
  for (const auto& [k, v] : meta) {
    if (!label.empty()) label += ' ';
    label += k + "=" + v;
  }
  return label;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

std::string SanitizeFilename(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_' || c == '.')
               ? c
               : '-';
  }
  return out;
}

}  // namespace cnv::obs
