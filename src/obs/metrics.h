// Session-scoped metrics registry: counters, gauges and fixed-bucket
// histograms that answer Samples-style percentile queries. One Registry per
// run (campaign run, bench iteration, explorer invocation); all values are
// derived from simulated time and deterministic counters unless a metric is
// explicitly labelled as wall-clock throughput, so an exported snapshot is
// byte-identical across replays of the same seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/time.h"

namespace cnv::obs {

// Monotonically increasing event count (attach retries, messages sent, ...).
class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Point-in-time level (queue depth, frontier size, occupancy, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
// implicit overflow bucket counts the rest. The raw observations are also
// retained in a util::Samples so percentile queries interpolate exactly
// instead of being quantized to bucket bounds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // counts() has bounds().size() + 1 entries; the last is the overflow.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t Count() const { return static_cast<std::uint64_t>(samples_.Count()); }
  double Sum() const { return sum_; }
  // Exact interpolated percentile over the raw observations; p in [0,100].
  // Requires at least one observation (Samples::Percentile throws on empty).
  double Percentile(double p) const { return samples_.Percentile(p); }
  const Samples& samples() const { return samples_; }

  // Default bounds for procedure latencies, in seconds.
  static std::vector<double> LatencySecondsBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  double sum_ = 0;
  Samples samples_;
};

// Owns metrics by name. Lookup creates on first use; the name-sorted map
// ordering is what makes exports deterministic regardless of registration
// order. Metric names are dotted paths ("sim.events_executed",
// "stack.attach.latency_s"); an optional help string documents the metric
// in the human-readable summary.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  // `bounds` is used only on first creation of the histogram.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = Histogram::LatencySecondsBounds(),
                          const std::string& help = "");

  bool Has(const std::string& name) const;
  std::size_t Size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Human-readable end-of-run table, name-sorted, histograms rendered as
  // count/sum/p50/p95/max.
  std::string SummaryTable() const;

  // One JSON snapshot object:
  //   {"sim_time_us":N,"counters":{...},"gauges":{...},"histograms":{...}}
  // Deterministic: name-sorted, fixed number formatting.
  std::string ToJson(SimTime at) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace cnv::obs
