// Harvesters: translate each layer's native counters into registry metrics.
// A harvest writes absolute cumulative values, so call it on a registry (or
// registry namespace) that has not been harvested before — the snapshot
// exporters build a fresh registry per snapshot for exactly this reason.
// Everything harvested is deterministic (derived from simulated time and
// event counts); the only wall-clock figures are the explicitly "_wall"-
// suffixed explorer throughput gauges.
#pragma once

#include <string>

#include "ckpt/manifest.h"
#include "mck/explorer.h"
#include "mck/parallel_explorer.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/wheel.h"
#include "stack/city.h"
#include "stack/testbed.h"

namespace cnv::obs {

// Event-queue and guard-timer metrics of the kernel:
//   sim.events_executed / scheduled / cancelled, sim.pending_events,
//   sim.queue_depth_peak, sim.handler_slots,
//   sim.timers_armed / fired / cancelled.
void HarvestSimulator(Registry& reg, const sim::Simulator& sim);

// Timer-wheel tier metrics under `prefix` (default "sim.wheel"): per-tier
// insert counters and occupancy/peak gauges ("<prefix>.l0.inserts", ...),
// overflow-calendar figures, and the cascade / migration / sorted-tick
// counters. Everything is an event count — deterministic and byte-stable
// across replays and worker counts.
void HarvestTimerWheel(Registry& reg, const sim::TimerWheel::Stats& stats,
                       const std::string& prefix = "sim.wheel");

// City-engine metrics under "city.": kernel accounting (executed /
// scheduled / cancelled / stale tombstones), protocol procedure counters,
// parallel-window shape (windows, shard lookahead stalls, cross-cell
// messages), arena footprint (bytes total and per UE), sampled-vs-dropped
// trace records, the determinism digest, and the aggregated wheel tiers
// under "city.wheel.". Deterministic at any --jobs value.
void HarvestCity(Registry& reg, const stack::CityReport& report);

// Protocol-stack metrics of one testbed run: per-module NAS message counts
// (from the trace collector), per-procedure retry counters, attach/detach
// bookkeeping, and the UE's latency series as histograms
// ("stack.call_setup.latency_s", ...). Includes HarvestSimulator on the
// testbed's kernel.
void HarvestTestbed(Registry& reg, stack::Testbed& tb);

// Explorer metrics under `prefix` (e.g. "mck.s3_cell"): states visited,
// transitions, depth, frontier peak, hash occupancy; when `include_wall`
// is set, also "<prefix>.states_per_sec_wall" and
// "<prefix>.elapsed_wall_seconds" — wall-clock throughput figures that must
// stay out of byte-identical replay comparisons.
void HarvestExploreStats(Registry& reg, const mck::ExploreStats& stats,
                         const std::string& prefix, bool include_wall = false);

// Parallel-engine execution metrics under `prefix`: wave count, shard count
// and peak shard size (all deterministic at any worker count); when
// `include_wall` is set, also the worker-utilization gauges
// "<prefix>.worker_busy_seconds_wall" and "<prefix>.utilization_wall" plus
// the job count — wall-clock execution-shape figures that must stay out of
// byte-identical replay comparisons.
void HarvestParallelExploreStats(Registry& reg,
                                 const mck::ParallelExploreStats& stats,
                                 const std::string& prefix,
                                 bool include_wall = false);

// Checkpoint/resume execution accounting under `prefix` (default "ckpt"):
// "<prefix>.cells_total", ".cells_resumed", ".cells_run", ".retries",
// ".watchdog_hits", ".checkpoints_written", ".corrupt_cells_discarded",
// ".interrupted". These depend on the process's interruption history, so
// harvest them only into exports that are never byte-compared against an
// uninterrupted run (drivers keep them out of --metrics-json).
void HarvestExecutionStats(Registry& reg, const ckpt::ExecutionStats& stats,
                           const std::string& prefix = "ckpt");

}  // namespace cnv::obs
