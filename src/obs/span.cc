#include "obs/span.h"

#include <map>
#include <optional>

#include "obs/json.h"
#include "util/time.h"

namespace cnv::obs {

namespace {

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// Marker table for the non-outage procedures. Matching is constrained by
// the generating module so e.g. EMM "Attach Request sent" never collides
// with GMM "GPRS Attach Request sent".
struct Marker {
  const char* module;
  const char* needle;  // substring of the record description
};

struct Rule {
  SpanKind kind;
  std::vector<Marker> starts;
  std::vector<Marker> retries;
  std::vector<Marker> successes;
  std::vector<Marker> failures;
};

const std::vector<Rule>& Rules() {
  static const std::vector<Rule> rules = {
      {SpanKind::kAttach,
       {{"EMM", "Attach Request sent"}},
       {{"EMM", "Attach Request retransmitted"}},
       {{"EMM", "Attach Accept received"}},
       {{"EMM", "Attach Reject received"}}},
      {SpanKind::kGprsAttach,
       {{"GMM", "GPRS Attach Request sent"}},
       {{"GMM", "GPRS Attach Request retransmitted"}},
       {{"GMM", "GPRS Attach Accept received"}},
       {{"GMM", "GMM procedure abandoned"}}},
      {SpanKind::kLocationUpdate,
       {{"MM", "Location Updating Request sent"}},
       {{"MM", "Location Updating Request retransmitted"}},
       {{"MM", "Location Updating Accept received"}},
       {{"MM", "Location Updating Reject received"},
        {"MM", "location update abandoned"}}},
      {SpanKind::kRoutingUpdate,
       {{"GMM", "Routing Area Update Request sent"}},
       {{"GMM", "Routing Area Update Request retransmitted"}},
       {{"GMM", "Routing Area Update Accept received"}},
       {{"GMM", "GMM procedure abandoned"}}},
      {SpanKind::kTrackingUpdate,
       {{"EMM", "Tracking Area Update Request sent"}},
       {{"EMM", "TAU retransmitted"}},
       {{"EMM", "Tracking Area Update Accept received"}},
       {{"EMM", "Tracking Area Update Reject received"}}},
      {SpanKind::kPdpActivation,
       {{"SM", "Activate PDP Context Request sent"}},
       {{"SM", "Activate PDP Context Request retransmitted"}},
       {{"SM", "Activate PDP Context Accept received"}},
       {{"SM", "PDP activation abandoned"}}},
      {SpanKind::kCall,
       {{"CM/CC", "user dials an outgoing call"},
        {"EMM", "Extended Service Request (CSFB) sent"},
        {"EMM", "VoLTE call setup"}},
       {{"MM", "CM Service Request re-requested"}},
       {{"CM/CC", "a call is established"},
        {"EMM", "VoLTE call established"}},
       {{"MM", "CM Service Reject received"},
        {"MM", "CM service abandoned"}}},
  };
  return rules;
}

bool Matches(const trace::TraceRecord& r, const std::vector<Marker>& ms) {
  for (const auto& m : ms) {
    if (r.module == m.module && Contains(r.description, m.needle)) return true;
  }
  return false;
}

}  // namespace

std::string ToString(SpanKind k) {
  switch (k) {
    case SpanKind::kAttach:
      return "attach";
    case SpanKind::kGprsAttach:
      return "gprs_attach";
    case SpanKind::kLocationUpdate:
      return "location_update";
    case SpanKind::kRoutingUpdate:
      return "routing_update";
    case SpanKind::kTrackingUpdate:
      return "tracking_update";
    case SpanKind::kPdpActivation:
      return "pdp_activation";
    case SpanKind::kCall:
      return "call";
    case SpanKind::kOutage:
      return "outage";
  }
  return "?";
}

std::string ToString(SpanOutcome o) {
  switch (o) {
    case SpanOutcome::kSuccess:
      return "success";
    case SpanOutcome::kFailure:
      return "failure";
    case SpanOutcome::kOpen:
      return "open";
  }
  return "?";
}

std::vector<ProcedureSpan> StitchSpans(
    const std::vector<trace::TraceRecord>& records) {
  std::vector<ProcedureSpan> out;
  const auto& rules = Rules();
  // One open slot per rule; outages are per-property, so keyed by name.
  std::vector<std::optional<ProcedureSpan>> open(rules.size());
  std::map<std::string, ProcedureSpan> open_outages;

  for (const auto& r : records) {
    if (r.type == trace::TraceType::kRecovery && r.module == "MONITOR") {
      constexpr const char* kBegins = " outage begins";
      const auto b = r.description.find(kBegins);
      if (b != std::string::npos) {
        ProcedureSpan s;
        s.kind = SpanKind::kOutage;
        s.start = r.time;
        s.detail = r.description.substr(0, b);  // the property name
        open_outages[s.detail] = s;
        continue;
      }
      constexpr const char* kRecovered = " recovered after";
      const auto e = r.description.find(kRecovered);
      if (e != std::string::npos) {
        const std::string prop = r.description.substr(0, e);
        const auto it = open_outages.find(prop);
        if (it != open_outages.end()) {
          it->second.end = r.time;
          it->second.outcome = SpanOutcome::kSuccess;
          out.push_back(it->second);
          open_outages.erase(it);
        }
      }
      continue;
    }

    for (std::size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (Matches(r, rule.starts)) {
        if (open[i]) {
          // The stack restarted the procedure: the superseded attempt
          // never completed.
          open[i]->end = r.time;
          open[i]->outcome = SpanOutcome::kFailure;
          open[i]->detail = "superseded by restarted procedure";
          out.push_back(*open[i]);
        }
        ProcedureSpan s;
        s.kind = rule.kind;
        s.start = r.time;
        open[i] = s;
        break;
      }
      if (!open[i]) continue;
      if (Matches(r, rule.retries)) {
        ++open[i]->retries;
        break;
      }
      const bool ok = Matches(r, rule.successes);
      if (ok || Matches(r, rule.failures)) {
        open[i]->end = r.time;
        open[i]->outcome = ok ? SpanOutcome::kSuccess : SpanOutcome::kFailure;
        open[i]->detail = r.description;
        out.push_back(*open[i]);
        open[i].reset();
        break;
      }
    }
  }

  // Flush procedures still pending at the end of the log.
  const SimTime log_end = records.empty() ? 0 : records.back().time;
  for (auto& s : open) {
    if (!s) continue;
    s->end = log_end;
    s->outcome = SpanOutcome::kOpen;
    out.push_back(*s);
  }
  for (auto& [prop, s] : open_outages) {
    s.end = log_end;
    s.outcome = SpanOutcome::kOpen;
    out.push_back(s);
  }
  return out;
}

std::string ChromeTraceEvents(const std::vector<ProcedureSpan>& spans,
                              const std::string& process_name, int pid) {
  JsonWriter w;
  // Metadata event naming the process row in the viewer.
  w.BeginObject()
      .Key("name")
      .String("process_name")
      .Key("ph")
      .String("M")
      .Key("pid")
      .Int(pid)
      .Key("args")
      .BeginObject()
      .Key("name")
      .String(process_name)
      .EndObject()
      .EndObject();
  std::string out = w.Take();
  for (const auto& s : spans) {
    std::string name = ToString(s.kind);
    if (s.kind == SpanKind::kOutage && !s.detail.empty()) {
      name += ":" + s.detail;
    }
    JsonWriter e;
    e.BeginObject()
        .Key("name")
        .String(name)
        .Key("cat")
        .String("procedure")
        .Key("ph")
        .String("X")
        .Key("ts")
        .Int(s.start)
        .Key("dur")
        .Int(s.Duration())
        .Key("pid")
        .Int(pid)
        .Key("tid")
        .Int(static_cast<int>(s.kind) + 1)
        .Key("args")
        .BeginObject()
        .Key("outcome")
        .String(ToString(s.outcome))
        .Key("retries")
        .Int(s.retries)
        .Key("detail")
        .String(s.detail)
        .EndObject()
        .EndObject();
    out += ',';
    out += e.Take();
  }
  return out;
}

std::string ChromeTraceDocument(const std::vector<std::string>& fragments) {
  std::string events;
  for (const auto& f : fragments) {
    if (f.empty()) continue;
    if (!events.empty()) events += ',';
    events += f;
  }
  return "{\"traceEvents\":[" + events + "],\"displayTimeUnit\":\"ms\"}";
}

void RecordSpans(Registry& reg, const std::vector<ProcedureSpan>& spans) {
  for (const auto& s : spans) {
    const std::string prefix = "span." + ToString(s.kind);
    reg.GetCounter(prefix + ".count").Increment();
    reg.GetCounter(prefix + "." + ToString(s.outcome)).Increment();
    if (s.retries > 0) {
      reg.GetCounter(prefix + ".retries")
          .Increment(static_cast<std::uint64_t>(s.retries));
    }
    if (s.outcome != SpanOutcome::kOpen) {
      reg.GetHistogram(prefix + ".latency_s")
          .Observe(ToSeconds(s.Duration()));
    }
  }
}

}  // namespace cnv::obs
