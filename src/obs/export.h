// Export surfaces of the telemetry layer:
//  - SnapshotScheduler: periodic JSON metric snapshots driven by the
//    simulator clock (never wall-clock), so the snapshot cadence replays
//    byte-identically with the run;
//  - RunReport: one machine-readable report per run — metadata,
//    snapshot series, final metrics, and stitched procedure spans;
//  - file helpers for the CLI drivers.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace cnv::obs {

// Serializes a registry snapshot every `period` of simulated time. The
// refresh hook populates a fresh registry with absolute cumulative values
// (see harvest.h); the scheduler serializes and discards it, keeping only
// the JSON strings.
class SnapshotScheduler {
 public:
  using Refresh = std::function<void(Registry&)>;

  SnapshotScheduler(sim::Simulator& sim, Refresh refresh, SimDuration period);
  SnapshotScheduler(const SnapshotScheduler&) = delete;
  SnapshotScheduler& operator=(const SnapshotScheduler&) = delete;

  // Arms the first snapshot one period from now (idempotent).
  void Start();

  // Takes one snapshot immediately at the current simulated time.
  void SnapshotNow();

  const std::vector<std::string>& snapshots() const { return snapshots_; }

 private:
  sim::Simulator& sim_;
  Refresh refresh_;
  SimDuration period_;
  bool running_ = false;
  std::vector<std::string> snapshots_;
};

// Machine-readable report of one run. `meta` is an ordered key/value list
// (seed, plan, profile, ...) so export order — and therefore bytes — are
// caller-controlled and stable.
struct RunReport {
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<std::string> snapshots;  // periodic registry snapshots (JSON)
  std::string final_metrics;           // end-of-run registry snapshot (JSON)
  std::vector<ProcedureSpan> spans;

  // {"meta":{...},"snapshots":[...],"final":{...},"spans":[...]}
  std::string ToJson() const;

  // This run's span events as a Chrome trace fragment (see span.h).
  std::string ChromeFragment(int pid) const;

  // Human-readable process label, e.g. "seed=1 plan=x profile=OP-I".
  std::string Label() const;
};

// Writes `content` to `path`, creating parent directories. Returns false on
// I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

// Replaces characters that are awkward in filenames with '-'.
std::string SanitizeFilename(const std::string& s);

}  // namespace cnv::obs
