#include "obs/harvest.h"

#include <map>

#include "trace/record.h"
#include "util/time.h"

namespace cnv::obs {

namespace {

// Copies a Samples series into a latency histogram.
void HarvestSamples(Registry& reg, const std::string& name, const Samples& s) {
  if (s.Empty()) return;
  Histogram& h = reg.GetHistogram(name);
  for (const double v : s.Values()) h.Observe(v);
}

}  // namespace

void HarvestSimulator(Registry& reg, const sim::Simulator& sim) {
  reg.GetCounter("sim.events_executed").Increment(sim.ExecutedEvents());
  reg.GetCounter("sim.events_scheduled").Increment(sim.ScheduledEvents());
  reg.GetCounter("sim.events_cancelled").Increment(sim.CancelledEvents());
  reg.GetGauge("sim.pending_events")
      .Set(static_cast<double>(sim.PendingEvents()));
  reg.GetGauge("sim.queue_depth_peak")
      .Set(static_cast<double>(sim.PeakQueueDepth()));
  reg.GetGauge("sim.handler_slots")
      .Set(static_cast<double>(sim.HandlerSlots()));
  const auto& ts = sim.timer_stats();
  reg.GetCounter("sim.timers_armed").Increment(ts.armed);
  reg.GetCounter("sim.timers_fired").Increment(ts.fired);
  reg.GetCounter("sim.timers_cancelled").Increment(ts.cancelled);
}

void HarvestTimerWheel(Registry& reg, const sim::TimerWheel::Stats& stats,
                       const std::string& prefix) {
  for (int level = 0; level < sim::TimerWheel::kLevels; ++level) {
    const std::string tier = prefix + ".l" + std::to_string(level);
    reg.GetCounter(tier + ".inserts").Increment(stats.inserts[level]);
    reg.GetGauge(tier + ".occupancy")
        .Set(static_cast<double>(stats.occupancy[level]));
    reg.GetGauge(tier + ".occupancy_peak")
        .Set(static_cast<double>(stats.peak_occupancy[level]));
  }
  reg.GetCounter(prefix + ".overflow.inserts")
      .Increment(stats.overflow_inserts);
  reg.GetGauge(prefix + ".overflow.occupancy")
      .Set(static_cast<double>(stats.overflow_occupancy));
  reg.GetGauge(prefix + ".overflow.occupancy_peak")
      .Set(static_cast<double>(stats.overflow_peak));
  reg.GetCounter(prefix + ".cascaded").Increment(stats.cascaded);
  reg.GetCounter(prefix + ".migrated").Increment(stats.migrated);
  reg.GetCounter(prefix + ".sorted_ticks").Increment(stats.sorted_ticks);
  reg.GetCounter(prefix + ".reaped").Increment(stats.reaped);
}

void HarvestCity(Registry& reg, const stack::CityReport& r) {
  reg.GetCounter("city.events_executed").Increment(r.events_executed);
  reg.GetCounter("city.events_scheduled").Increment(r.events_scheduled);
  reg.GetCounter("city.events_cancelled").Increment(r.events_cancelled);
  reg.GetCounter("city.stale_events").Increment(r.stale_events);
  reg.GetCounter("city.attaches_started").Increment(r.attaches_started);
  reg.GetCounter("city.attaches_completed").Increment(r.attaches_completed);
  reg.GetCounter("city.attaches_rejected").Increment(r.attaches_rejected);
  reg.GetCounter("city.guard_expiries").Increment(r.guard_expiries);
  reg.GetCounter("city.backoffs_armed").Increment(r.backoffs_armed);
  reg.GetCounter("city.sessions").Increment(r.sessions);
  reg.GetCounter("city.pagings").Increment(r.pagings);
  reg.GetCounter("city.handovers").Increment(r.handovers);
  reg.GetCounter("city.location_updates").Increment(r.location_updates);
  reg.GetCounter("city.taus").Increment(r.taus);
  reg.GetCounter("city.storms_flagged").Increment(r.storms_flagged);
  reg.GetCounter("city.windows").Increment(r.windows);
  reg.GetCounter("city.shard_stalls").Increment(r.shard_stalls);
  reg.GetCounter("city.cross_cell_messages")
      .Increment(r.cross_cell_messages);
  reg.GetCounter("city.trace_emitted").Increment(r.trace_emitted);
  reg.GetCounter("city.trace_dropped").Increment(r.trace_dropped);
  reg.GetCounter("city.digest").Increment(r.digest);
  reg.GetGauge("city.arena_bytes").Set(static_cast<double>(r.arena_bytes));
  reg.GetGauge("city.bytes_per_ue").Set(r.bytes_per_ue);
  HarvestTimerWheel(reg, r.wheel, "city.wheel");
}

void HarvestTestbed(Registry& reg, stack::Testbed& tb) {
  HarvestSimulator(reg, tb.sim());

  // Per-module NAS signaling counts, derived from the trace stream the same
  // way the paper counts QXDM message items per module.
  std::map<std::string, std::uint64_t> per_module;
  std::uint64_t total = 0;
  for (const auto& r : tb.traces().records()) {
    if (r.type != trace::TraceType::kMsg) continue;
    ++per_module[r.module];
    ++total;
  }
  reg.GetCounter("stack.nas_msgs.total").Increment(total);
  for (const auto& [module, n] : per_module) {
    reg.GetCounter("stack.nas_msgs." + module).Increment(n);
  }

  const stack::UeDevice& ue = tb.ue();
  reg.GetCounter("stack.attach.attempts").Increment(ue.attach_attempts_total());
  reg.GetCounter("stack.attach.backoff_cycles")
      .Increment(ue.attach_backoff_cycles());
  reg.GetCounter("stack.lu.retries").Increment(ue.lu_retries());
  reg.GetCounter("stack.gmm.retries").Increment(ue.gmm_retries());
  reg.GetCounter("stack.pdp.retries").Increment(ue.pdp_retries());
  reg.GetCounter("stack.cm.retries").Increment(ue.cm_retries());
  reg.GetCounter("stack.cm.abandoned").Increment(ue.cm_abandoned());
  reg.GetCounter("stack.oos_events").Increment(ue.oos_events());
  reg.GetCounter("stack.data_disruptions").Increment(ue.data_disruptions());
  reg.GetCounter("stack.deferred_service_requests")
      .Increment(ue.deferred_service_requests());
  reg.GetCounter("stack.detaches.no_eps_bearer")
      .Increment(ue.detaches_no_eps_bearer());
  reg.GetCounter("stack.detaches.implicit").Increment(ue.detaches_implicit());
  reg.GetCounter("stack.detaches.msc_unreachable")
      .Increment(ue.detaches_msc_unreachable());
  reg.GetCounter("stack.calls.connected").Increment(ue.calls_connected());
  reg.GetCounter("stack.calls.with_data").Increment(ue.calls_with_data());

  HarvestSamples(reg, "stack.call_setup.latency_s", ue.call_setup_seconds());
  HarvestSamples(reg, "stack.lau.latency_s", ue.lau_duration_seconds());
  HarvestSamples(reg, "stack.rau.latency_s", ue.rau_duration_seconds());
  HarvestSamples(reg, "stack.recovery.latency_s", ue.recovery_seconds());
  HarvestSamples(reg, "stack.stuck_in_3g.duration_s",
                 ue.stuck_in_3g_seconds());
  HarvestSamples(reg, "stack.call.duration_s", ue.call_durations_seconds());

  // Overload-control view: per-element admission counters, the UE's
  // congestion-backoff discipline, and the storm generator's load.
  reg.GetCounter("stack.congestion.rejects_seen")
      .Increment(ue.congestion_rejects());
  reg.GetCounter("stack.congestion.backoffs")
      .Increment(ue.congestion_backoffs());
  HarvestSamples(reg, "stack.attach.latency_s", ue.attach_latency_seconds());
  reg.GetCounter("stack.storm.injected").Increment(tb.storm().injected());
  const struct {
    const char* name;
    const stack::OverloadStats& s;
  } elements[] = {{"mme", tb.mme().overload_stats()},
                  {"msc", tb.msc().overload_stats()},
                  {"sgsn", tb.sgsn().overload_stats()},
                  {"hss", tb.hss().overload_stats()}};
  for (const auto& e : elements) {
    const std::string prefix = std::string("stack.overload.") + e.name;
    reg.GetCounter(prefix + ".admitted").Increment(e.s.admitted);
    reg.GetCounter(prefix + ".rejected_congestion")
        .Increment(e.s.rejected_congestion);
    reg.GetCounter(prefix + ".shed").Increment(e.s.shed);
    reg.GetCounter(prefix + ".background_served")
        .Increment(e.s.background_served);
    reg.GetCounter(prefix + ".integrity_rejected")
        .Increment(e.s.integrity_rejected);
    reg.GetCounter(prefix + ".replay_dropped")
        .Increment(e.s.replay_dropped);
    reg.GetGauge(prefix + ".queue_peak")
        .Set(static_cast<double>(e.s.queue_peak));
  }
}

void HarvestExploreStats(Registry& reg, const mck::ExploreStats& stats,
                         const std::string& prefix, bool include_wall) {
  reg.GetCounter(prefix + ".states_visited").Increment(stats.states_visited);
  reg.GetCounter(prefix + ".transitions").Increment(stats.transitions);
  reg.GetGauge(prefix + ".max_depth_reached")
      .Set(static_cast<double>(stats.max_depth_reached));
  reg.GetGauge(prefix + ".frontier_peak")
      .Set(static_cast<double>(stats.frontier_peak));
  reg.GetGauge(prefix + ".hash_occupancy").Set(stats.hash_occupancy);
  reg.GetGauge(prefix + ".truncated").Set(stats.truncated ? 1 : 0);
  if (include_wall) {
    reg.GetGauge(prefix + ".elapsed_wall_seconds")
        .Set(stats.elapsed_wall_seconds);
    reg.GetGauge(prefix + ".states_per_sec_wall")
        .Set(stats.StatesPerSecond());
  }
}

void HarvestParallelExploreStats(Registry& reg,
                                 const mck::ParallelExploreStats& stats,
                                 const std::string& prefix, bool include_wall) {
  reg.GetCounter(prefix + ".waves").Increment(stats.waves);
  reg.GetGauge(prefix + ".shards").Set(static_cast<double>(stats.shards));
  reg.GetGauge(prefix + ".largest_shard")
      .Set(static_cast<double>(stats.largest_shard));
  if (include_wall) {
    reg.GetGauge(prefix + ".jobs").Set(static_cast<double>(stats.jobs));
    reg.GetGauge(prefix + ".worker_busy_seconds_wall")
        .Set(stats.worker_busy_seconds);
    reg.GetGauge(prefix + ".utilization_wall").Set(stats.utilization);
  }
}

void HarvestExecutionStats(Registry& reg, const ckpt::ExecutionStats& stats,
                           const std::string& prefix) {
  reg.GetCounter(prefix + ".cells_total").Increment(stats.cells_total);
  reg.GetCounter(prefix + ".cells_resumed").Increment(stats.cells_resumed);
  reg.GetCounter(prefix + ".cells_run").Increment(stats.cells_run);
  reg.GetCounter(prefix + ".retries").Increment(stats.retries);
  reg.GetCounter(prefix + ".watchdog_hits").Increment(stats.watchdog_hits);
  reg.GetCounter(prefix + ".checkpoints_written")
      .Increment(stats.checkpoints_written);
  reg.GetCounter(prefix + ".corrupt_cells_discarded")
      .Increment(stats.corrupt_cells_discarded);
  reg.GetGauge(prefix + ".interrupted").Set(stats.interrupted ? 1 : 0);
}

}  // namespace cnv::obs
