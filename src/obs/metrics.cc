#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"
#include "util/strings.h"

namespace cnv::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  sum_ += v;
  samples_.Add(v);
}

std::vector<double> Histogram::LatencySecondsBounds() {
  return {0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60, 120, 300};
}

Counter& Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  if (!help.empty()) help_.emplace(name, help);
  return counters_[name];
}

Gauge& Registry::GetGauge(const std::string& name, const std::string& help) {
  if (!help.empty()) help_.emplace(name, help);
  return gauges_[name];
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds,
                                  const std::string& help) {
  if (!help.empty()) help_.emplace(name, help);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

bool Registry::Has(const std::string& name) const {
  return counters_.contains(name) || gauges_.contains(name) ||
         histograms_.contains(name);
}

std::string Registry::SummaryTable() const {
  std::string out = "metric                                              value\n";
  for (const auto& [name, c] : counters_) {
    out += Format("%-48s  %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += Format("%-48s  %s\n", name.c_str(), JsonNumber(g.value()).c_str());
  }
  for (const auto& [name, h] : histograms_) {
    if (h.Count() == 0) {
      out += Format("%-48s  (no observations)\n", name.c_str());
      continue;
    }
    out += Format("%-48s  n=%llu sum=%s p50=%s p95=%s max=%s\n", name.c_str(),
                  static_cast<unsigned long long>(h.Count()),
                  JsonNumber(h.Sum()).c_str(),
                  JsonNumber(h.Percentile(50)).c_str(),
                  JsonNumber(h.Percentile(95)).c_str(),
                  JsonNumber(h.samples().Max()).c_str());
  }
  return out;
}

std::string Registry::ToJson(SimTime at) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("sim_time_us").Int(at);
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.Key(name).UInt(c.value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.Key(name).Double(g.value());
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(h.Count());
    w.Key("sum").Double(h.Sum());
    w.Key("bounds").BeginArray();
    for (const double b : h.bounds()) w.Double(b);
    w.EndArray();
    w.Key("bucket_counts").BeginArray();
    for (const std::uint64_t c : h.counts()) w.UInt(c);
    w.EndArray();
    if (h.Count() > 0) {
      w.Key("p50").Double(h.Percentile(50));
      w.Key("p95").Double(h.Percentile(95));
      w.Key("p99").Double(h.Percentile(99));
      w.Key("min").Double(h.samples().Min());
      w.Key("max").Double(h.samples().Max());
    }
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace cnv::obs
