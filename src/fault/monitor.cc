#include "fault/monitor.h"

#include <algorithm>

#include "util/strings.h"

namespace cnv::fault {

namespace {
// Hour used for the time-of-day load factor in throughput sampling; noon
// keeps the factor deterministic and non-degenerate.
constexpr int kSampleHour = 12;
// A CSFB device stranded in 3G longer than this counts as the S3 defect.
constexpr double kStuckIn3gThresholdS = 10.0;
}  // namespace

RecoveryMonitor::RecoveryMonitor(stack::Testbed& tb, SloBounds slo,
                                 SimDuration period)
    : tb_(tb), slo_(slo), period_(period) {
  mm_.name = "MM_OK";
  mm_.slo = slo_.mm_recovery;
  ps_.name = "PacketService_OK";
  ps_.slo = slo_.ps_recovery;
  cs_.name = "CallService_OK";
  cs_.slo = slo_.cs_recovery;
}

bool RecoveryMonitor::MmOk() const {
  const auto& ue = tb_.ue();
  switch (ue.serving()) {
    case nas::System::k4G:
      return ue.emm_state() == stack::UeDevice::EmmState::kRegistered ||
             ue.emm_state() == stack::UeDevice::EmmState::kWaitTauAccept;
    case nas::System::k3G:
      return tb_.msc().registered();
    default:
      return false;
  }
}

bool RecoveryMonitor::PsOk() const {
  auto& tb = tb_;
  const auto& ue = tb.ue();
  bool path_ok = false;
  switch (ue.serving()) {
    case nas::System::k4G:
      path_ok = (ue.emm_state() == stack::UeDevice::EmmState::kRegistered ||
                 ue.emm_state() == stack::UeDevice::EmmState::kWaitTauAccept) &&
                tb.mme().available();
      break;
    case nas::System::k3G:
      path_ok = tb.sgsn().available() && tb.sgsn().registered();
      break;
    default:
      return false;
  }
  if (!path_ok) return false;
  // With a data session up, "the path exists" is not enough: the user sees
  // throughput, so sample it.
  if (ue.data_session_active()) {
    return ue.CurrentPsRateMbps(sim::Direction::kDownlink, kSampleHour) > 0.0;
  }
  return true;
}

bool RecoveryMonitor::CsOk() const {
  auto& tb = tb_;
  if (!MmOk()) return false;
  // VoLTE carriers serve calls in 4G without the MSC; everyone else anchors
  // call service on it (directly in 3G, via CSFB from 4G).
  if (tb.profile().volte_enabled &&
      tb.ue().serving() == nas::System::k4G) {
    return true;
  }
  return tb.msc().available();
}

void RecoveryMonitor::Observe(Tracker& t, bool ok_now) {
  if (!t.established) {
    if (ok_now) {
      t.established = true;
      t.ok = true;
      tb_.traces().Recovery(nas::System::kNone, "MONITOR",
                            t.name + " established");
    }
    return;
  }
  if (t.ok && !ok_now) {
    t.ok = false;
    t.outage_started = tb_.sim().now();
    ++t.outages;
    tb_.traces().Recovery(nas::System::kNone, "MONITOR",
                          t.name + " outage begins");
  } else if (!t.ok && ok_now) {
    t.ok = true;
    const SimDuration d = tb_.sim().now() - t.outage_started;
    t.total_outage += d;
    t.longest_outage = std::max(t.longest_outage, d);
    tb_.traces().Recovery(
        nas::System::kNone, "MONITOR",
        Format("%s recovered after %.1f s", t.name.c_str(), ToSeconds(d)));
  }
}

void RecoveryMonitor::Sample() {
  if (!running_) return;
  Observe(mm_, MmOk());
  Observe(ps_, PsOk());
  Observe(cs_, CsOk());
  tb_.sim().ScheduleIn(period_, [this] { Sample(); });
}

void RecoveryMonitor::Start() {
  if (running_) return;
  running_ = true;
  tb_.sim().ScheduleIn(period_, [this] { Sample(); });
}

DegradationReport RecoveryMonitor::ProbeDegradation(stack::Testbed& tb,
                                                    const SloBounds& slo) {
  DegradationReport d;
  d.active = tb.storm().injected() > 0;
  d.storm_injected = tb.storm().injected();
  for (const stack::OverloadStats* s :
       {&tb.mme().overload_stats(), &tb.msc().overload_stats(),
        &tb.sgsn().overload_stats()}) {
    d.offered += s->offered();
    d.served += s->admitted + s->background_served;
    d.rejected_congestion += s->rejected_congestion;
    d.shed += s->shed;
    d.integrity_rejected += s->integrity_rejected;
    d.replay_dropped += s->replay_dropped;
    d.queue_peak = std::max(d.queue_peak, s->queue_peak);
  }
  if (d.offered > 0) {
    d.shed_fraction =
        static_cast<double>(d.rejected_congestion + d.shed) /
        static_cast<double>(d.offered);
  }
  const auto& attach = tb.ue().attach_latency_seconds();
  d.attach_p99_s = attach.Empty() ? 0.0 : attach.Percentile(99.0);
  d.ue_congestion_rejects = tb.ue().congestion_rejects();
  d.ue_congestion_backoffs = tb.ue().congestion_backoffs();
  // Time to drain: how long past the storm's final injection each element
  // kept a backlog. DrainedAfter finds the first instant the queue emptied
  // at or after the storm end, so later foreground bursts don't inflate it.
  const SimTime storm_end = tb.storm().last_injection_at();
  const SimTime drains[] = {tb.mme().DrainedAfter(storm_end),
                            tb.msc().DrainedAfter(storm_end),
                            tb.sgsn().DrainedAfter(storm_end)};
  d.drained = true;
  SimTime last_drain = storm_end;
  for (const SimTime at : drains) {
    if (at < 0) d.drained = false;
    last_drain = std::max(last_drain, at);
  }
  if (d.drained) d.time_to_drain = last_drain - storm_end;
  d.attach_p99_slo = slo.storm_attach_p99;
  d.shed_fraction_slo = slo.storm_max_shed_fraction;
  d.drain_slo = slo.storm_drain_bound;
  return d;
}

MonitorReport RecoveryMonitor::Finalize() {
  running_ = false;
  MonitorReport report;
  for (Tracker* t : {&mm_, &ps_, &cs_}) {
    // Close an open outage window at the current time.
    if (t->established && !t->ok) {
      const SimDuration d = tb_.sim().now() - t->outage_started;
      t->total_outage += d;
      t->longest_outage = std::max(t->longest_outage, d);
    }
    PropertyReport p;
    p.name = t->name;
    p.established = t->established;
    p.ok_at_end = t->established && t->ok;
    p.outages = t->outages;
    p.total_outage = t->total_outage;
    p.longest_outage = t->longest_outage;
    p.slo = t->slo;
    if (!t->established) {
      // Never came up: the whole run is one outage.
      p.outages = 1;
      p.total_outage = tb_.sim().now();
      p.longest_outage = tb_.sim().now();
    }
    report.properties.push_back(std::move(p));
  }
  report.findings = ProbeFindings(tb_);
  report.degradation = ProbeDegradation(tb_, slo_);
  if (report.degradation.active) {
    const DegradationReport& d = report.degradation;
    tb_.traces().Recovery(
        nas::System::kNone, "MONITOR",
        Format("storm degradation: offered=%llu served=%llu rejected=%llu "
               "shed=%llu (%.2f) attach-p99=%.2fs drain=%.1fs -> %s",
               static_cast<unsigned long long>(d.offered),
               static_cast<unsigned long long>(d.served),
               static_cast<unsigned long long>(d.rejected_congestion),
               static_cast<unsigned long long>(d.shed), d.shed_fraction,
               d.attach_p99_s,
               d.drained ? ToSeconds(d.time_to_drain) : -1.0,
               d.within_slo() ? "within SLO" : "SLO-VIOLATION"));
  }
  return report;
}

std::vector<Finding> RecoveryMonitor::ProbeFindings(stack::Testbed& tb) {
  std::vector<Finding> out;
  const auto& ue = tb.ue();
  if (ue.detaches_no_eps_bearer() > 0) {
    out.push_back(
        {"S1", Format("%llu detach(es) for missing EPS bearer context",
                      static_cast<unsigned long long>(
                          ue.detaches_no_eps_bearer()))});
  }
  if (tb.mme().stale_attach_detaches() > 0) {
    out.push_back(
        {"S2", Format("%llu detach(es) from stale/duplicated attach "
                      "signaling at the MME",
                      static_cast<unsigned long long>(
                          tb.mme().stale_attach_detaches()))});
  }
  // Completed stuck periods are sampled on the return to 4G; a device still
  // pinned in 3G when the run ends never gets to record one.
  const bool stranded_now = ue.serving() == nas::System::k3G &&
                            ue.awaiting_cell_reselection();
  if (!ue.stuck_in_3g_seconds().Empty() &&
      ue.stuck_in_3g_seconds().Max() > kStuckIn3gThresholdS) {
    out.push_back({"S3", Format("stranded in 3G for up to %.1f s after a "
                                "CSFB call",
                                ue.stuck_in_3g_seconds().Max())});
  } else if (stranded_now) {
    out.push_back({"S3", "still stranded in 3G awaiting cell reselection "
                         "at end of run"});
  }
  if (ue.deferred_call_requests() > 0) {
    out.push_back(
        {"S4", Format("%llu call request(s) head-of-line blocked behind a "
                      "location update",
                      static_cast<unsigned long long>(
                          ue.deferred_call_requests()))});
  }
  if (ue.calls_with_data() > 0) {
    out.push_back(
        {"S5", Format("%llu call(s) overlapped a data session on the "
                      "shared 3G channel (PS rate degraded)",
                      static_cast<unsigned long long>(ue.calls_with_data()))});
  }
  if (tb.mme().sgs_update_failures() > 0) {
    out.push_back(
        {"S6", Format("3G location-update failure reached the 4G core "
                      "(%llu SGs failure(s): %llu detach(es), %llu core-side "
                      "recover(ies))",
                      static_cast<unsigned long long>(
                          tb.mme().sgs_update_failures()),
                      static_cast<unsigned long long>(
                          ue.detaches_msc_unreachable()),
                      static_cast<unsigned long long>(
                          tb.mme().lu_recoveries()))});
  }
  return out;
}

}  // namespace cnv::fault
