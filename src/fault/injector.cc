#include "fault/injector.h"

#include <stdexcept>

namespace cnv::fault {

sim::Link& FaultInjector::LinkOf(FaultTarget t) {
  switch (t) {
    case FaultTarget::kUl4g:
      return tb_.ul4g();
    case FaultTarget::kDl4g:
      return tb_.dl4g();
    case FaultTarget::kUl3gCs:
      return tb_.ul3g_cs();
    case FaultTarget::kDl3gCs:
      return tb_.dl3g_cs();
    case FaultTarget::kUl3gPs:
      return tb_.ul3g_ps();
    case FaultTarget::kDl3gPs:
      return tb_.dl3g_ps();
    default:
      throw std::logic_error("fault target is not a link");
  }
}

nas::System FaultInjector::SystemOf(FaultTarget t) {
  switch (t) {
    case FaultTarget::kUl4g:
    case FaultTarget::kDl4g:
    case FaultTarget::kMme:
      return nas::System::k4G;
    case FaultTarget::kHss:
    case FaultTarget::kUe:
      return nas::System::kNone;
    default:
      return nas::System::k3G;
  }
}

void FaultInjector::Apply(const FaultPlan& plan) {
  for (const FaultAction& a : plan.actions) {
    const SimTime at = std::max(a.at, tb_.sim().now());
    tb_.sim().ScheduleAt(at, [this, a] { Execute(a); });
  }
}

void FaultInjector::Execute(const FaultAction& a) {
  tb_.traces().Fault(SystemOf(a.target), "FAULT-INJ", Describe(a));
  ++injected_;
  switch (a.kind) {
    case FaultKind::kDropNext:
      LinkOf(a.target).ForceDropNext(a.count);
      break;
    case FaultKind::kDeferNext:
      LinkOf(a.target).DeferNext(FromSeconds(a.value));
      break;
    case FaultKind::kDuplicateNext:
      LinkOf(a.target).ForceDuplicateNext(a.count);
      break;
    case FaultKind::kReorderNext:
      LinkOf(a.target).ReorderNext();
      break;
    case FaultKind::kCorruptNext:
      LinkOf(a.target).CorruptNext(a.count);
      break;
    case FaultKind::kExtraDelay:
      LinkOf(a.target).set_extra_delay(FromSeconds(a.value));
      break;
    case FaultKind::kLinkLoss:
      LinkOf(a.target).set_loss_prob(a.value);
      break;
    case FaultKind::kElementOutage:
      switch (a.target) {
        case FaultTarget::kMme:
          tb_.mme().BeginOutage();
          break;
        case FaultTarget::kMsc:
          tb_.msc().BeginOutage();
          break;
        case FaultTarget::kSgsn:
          tb_.sgsn().BeginOutage();
          break;
        case FaultTarget::kHss:
          tb_.hss().BeginOutage();
          break;
        default:
          throw std::logic_error("outage target is not an element");
      }
      break;
    case FaultKind::kElementRestart:
      switch (a.target) {
        case FaultTarget::kMme:
          tb_.mme().Restart(a.lose_state);
          break;
        case FaultTarget::kMsc:
          tb_.msc().Restart(a.lose_state);
          break;
        case FaultTarget::kSgsn:
          tb_.sgsn().Restart(a.lose_state);
          break;
        case FaultTarget::kHss:
          tb_.hss().Restart(a.lose_state);
          break;
        default:
          throw std::logic_error("restart target is not an element");
      }
      break;
    case FaultKind::kPdpDeactivate:
      tb_.sgsn().DeactivatePdp(nas::PdpDeactCause::kRegularDeactivation);
      break;
    case FaultKind::kDisruptNextLu:
      tb_.msc().DisruptNextLocationUpdate();
      break;
    case FaultKind::kForceSgsRace:
      tb_.mme().ForceNextSgsRace();
      break;
    case FaultKind::kTimerSkew:
      tb_.ue().set_timer_scale(a.value);
      break;
    case FaultKind::kStormMassAttach:
      tb_.storm().MassAttach(tb_.sim().now(),
                             static_cast<std::size_t>(a.count),
                             FromSeconds(a.value));
      break;
    case FaultKind::kStormTaPingPong:
      tb_.storm().TaPingPong(tb_.sim().now(),
                             static_cast<std::size_t>(a.count),
                             FromSeconds(a.value));
      break;
    case FaultKind::kStormPagingFlood:
      tb_.storm().PagingFlood(tb_.sim().now(),
                              static_cast<std::size_t>(a.count),
                              FromSeconds(a.value));
      break;
    case FaultKind::kStormAdversarialNas:
      tb_.storm().AdversarialNas(tb_.sim().now(),
                                 static_cast<std::size_t>(a.count),
                                 FromSeconds(a.value));
      break;
  }
}

}  // namespace cnv::fault
