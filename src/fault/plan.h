// Deterministic fault plans for chaos campaigns. A FaultPlan is a named
// script of timed faults against a Testbed: radio/backhaul message drop,
// delay, duplication, reorder and corruption; core-element outage and
// restart with optional state loss; and device timer skew. Plans are plain
// data — the FaultInjector interprets them — so campaigns can sweep
// seeds x plans x carrier profiles and replay any run byte-for-byte.
//
// The canned plans mirror the paper's findings S1-S6: each arranges the
// fault (or the absence of one) that lets the corresponding protocol
// interaction defect surface under the standard campaign workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace cnv::fault {

enum class FaultKind : std::uint8_t {
  // Link faults (value/count semantics noted per kind).
  kDropNext,       // drop the next `count` messages
  kDeferNext,      // defer the next message by `value` seconds
  kDuplicateNext,  // duplicate the next `count` messages
  kReorderNext,    // hold the next message until one overtakes it
  kCorruptNext,    // corrupt (discard at delivery) the next `count` messages
  kExtraDelay,     // persistent extra latency of `value` seconds (0 clears)
  kLinkLoss,       // set the link loss probability to `value`
  // Element faults.
  kElementOutage,   // the element stops processing traffic
  kElementRestart,  // the element comes back; `lose_state` wipes its state
  kPdpDeactivate,   // SGSN-initiated PDP deactivation (the S1 trigger)
  kDisruptNextLu,   // MSC loses the next location update mid-flight
  kForceSgsRace,    // MME's next SGs update hits the §6.3 race (S6)
  // Device faults.
  kTimerSkew,  // scale the UE's NAS guard timers by `value`
  // Signalling storms (the testbed's StormGenerator). `count` messages are
  // injected at `value`-second spacing starting when the action fires; the
  // target names the element the storm is aimed at (trace attribution —
  // the generator routes messages itself).
  kStormMassAttach,      // background attach flood at the MME
  kStormTaPingPong,      // border devices bouncing TAU between two TAs
  kStormPagingFlood,     // paging-response flood at the MSC
  kStormAdversarialNas,  // malformed/truncated/replayed/mis-typed NAS
};

enum class FaultTarget : std::uint8_t {
  kUl4g,
  kDl4g,
  kUl3gCs,
  kDl3gCs,
  kUl3gPs,
  kDl3gPs,
  kMme,
  kMsc,
  kSgsn,
  kHss,
  kUe,
};

struct FaultAction {
  SimTime at = 0;  // absolute simulation time the fault fires
  FaultKind kind = FaultKind::kDropNext;
  FaultTarget target = FaultTarget::kUl4g;
  int count = 1;       // kDropNext / kDuplicateNext / kCorruptNext
  double value = 0.0;  // seconds, probability, or scale (see FaultKind)
  bool lose_state = false;  // kElementRestart only
};

struct FaultPlan {
  std::string name;
  std::string description;
  std::vector<FaultAction> actions;
};

std::string ToString(FaultKind k);
std::string ToString(FaultTarget t);
// One-line description of an action, used for FAULT trace records.
std::string Describe(const FaultAction& a);

// --- Canned plans -------------------------------------------------------
// Times are aligned with the CampaignRunner's standard workload (see
// campaign.h): data from t=30s, CSFB call 120-180s, area crossing at 240s
// followed by a call at 250s, another crossing at 400s, call 420-480s.
namespace plans {

FaultPlan S1MissingBearerContext();  // PDP dies mid-CSFB -> detach on return
FaultPlan S2AttachDisruption();      // duplicated/lost attach signaling
FaultPlan S3StuckIn3g();             // control: CSFB + data, no extra fault
FaultPlan S4MmHolBlocking();         // slow LU window overlapping a dial
FaultPlan S5SharedChannelDrop();     // control: voice+data on the 3G channel
FaultPlan S6LuFailurePropagation();  // disrupted 3G LU hits 4G service

// Signalling-storm plans. Counts and windows are sized against the
// standard workload so the 240 s area-crossing TAU (and the 250 s call)
// land mid-storm: with admission control off the backlog head-of-line
// blocks the real device and takes minutes to drain; with reject/shed
// policies the device is told to back off and the queue drains in bounded
// time.
FaultPlan MassAttachStorm();      // sustained attach flood over 200-260 s
FaultPlan TaPingPongStorm();      // TAU ping-pong burst over 220-260 s
FaultPlan PagingFloodStorm();     // MSC paging flood across the 120 s call
FaultPlan AdversarialNasStorm();  // malformed-NAS barrage from 50 s
FaultPlan SignallingStormMix();   // all of the above, overlapping

FaultPlan MmeCrashRestart();     // MME outage + lossy restart
FaultPlan MscOutage();           // MSC down across a call attempt
FaultPlan SgsnFlap();            // short SGSN flap with state loss
FaultPlan HssBlackout();         // long HSS outage, lossy restart
FaultPlan RadioBurstLoss();      // 30% loss burst on every radio leg
FaultPlan BackhaulDegradation(); // 2s extra one-way delay, later cleared
FaultPlan TimerSkew();           // UE clock runs 2.5x slow
FaultPlan AttachInterference();  // drop+duplicate+corrupt attach signaling

// Every canned plan, S1-S6 first.
std::vector<FaultPlan> All();
// The S1-S6 reproduction set only.
std::vector<FaultPlan> Findings();
// The signalling-storm set only (for overload-control sweeps).
std::vector<FaultPlan> Storms();

}  // namespace plans
}  // namespace cnv::fault
