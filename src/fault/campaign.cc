#include "fault/campaign.h"

#include <memory>

#include "dist/coordinator.h"
#include "fault/checkpoint.h"
#include "obs/harvest.h"
#include "obs/span.h"
#include "trace/qxdm.h"
#include "util/strings.h"

namespace cnv::fault {

namespace {

// Folds the monitor's per-property outage accounting into SLO metrics.
void HarvestMonitorReport(obs::Registry& reg, const MonitorReport& report) {
  for (const auto& p : report.properties) {
    const std::string prefix = "fault.slo." + p.name;
    reg.GetCounter(prefix + ".outages")
        .Increment(static_cast<std::uint64_t>(p.outages));
    reg.GetGauge(prefix + ".total_outage_s").Set(ToSeconds(p.total_outage));
    reg.GetGauge(prefix + ".longest_outage_s")
        .Set(ToSeconds(p.longest_outage));
    reg.GetGauge(prefix + ".within_slo").Set(p.within_slo() ? 1 : 0);
  }
  reg.GetCounter("fault.findings.total")
      .Increment(report.findings.size());
  for (const auto& f : report.findings) {
    reg.GetCounter("fault.findings." + f.id).Increment();
  }
  if (report.degradation.active) {
    const DegradationReport& d = report.degradation;
    reg.GetCounter("fault.storm.injected").Increment(d.storm_injected);
    reg.GetCounter("fault.storm.offered").Increment(d.offered);
    reg.GetCounter("fault.storm.served").Increment(d.served);
    reg.GetCounter("fault.storm.rejected_congestion")
        .Increment(d.rejected_congestion);
    reg.GetCounter("fault.storm.shed").Increment(d.shed);
    reg.GetCounter("fault.storm.integrity_rejected")
        .Increment(d.integrity_rejected);
    reg.GetCounter("fault.storm.replay_dropped").Increment(d.replay_dropped);
    reg.GetGauge("fault.storm.queue_peak")
        .Set(static_cast<double>(d.queue_peak));
    reg.GetGauge("fault.storm.shed_fraction").Set(d.shed_fraction);
    reg.GetGauge("fault.storm.attach_p99_s").Set(d.attach_p99_s);
    reg.GetGauge("fault.storm.time_to_drain_s")
        .Set(d.drained ? ToSeconds(d.time_to_drain) : -1.0);
    reg.GetGauge("fault.storm.within_slo").Set(d.within_slo() ? 1 : 0);
  }
}

}  // namespace

void CampaignRunner::ScheduleWorkload(stack::Testbed& tb) {
  auto& sim = tb.sim();
  auto& ue = tb.ue();
  sim.ScheduleAt(0, [&ue] {
    ue.PowerOn(nas::System::k4G);
    ue.EnablePeriodicUpdates(Seconds(300));
  });
  sim.ScheduleAt(Seconds(30), [&ue] { ue.StartDataSession(0.2); });
  sim.ScheduleAt(Seconds(120), [&ue] { ue.Dial(); });
  sim.ScheduleAt(Seconds(180), [&ue] { ue.HangUp(); });
  sim.ScheduleAt(Seconds(240), [&ue] { ue.CrossAreaBoundary(); });
  sim.ScheduleAt(Seconds(250), [&ue] { ue.Dial(); });
  sim.ScheduleAt(Seconds(310), [&ue] { ue.HangUp(); });
  sim.ScheduleAt(Seconds(400), [&ue] { ue.CrossAreaBoundary(); });
  sim.ScheduleAt(Seconds(420), [&ue] { ue.Dial(); });
  sim.ScheduleAt(Seconds(480), [&ue] { ue.HangUp(); });
}

std::string CampaignRunner::AdmissionLabel(
    const stack::OverloadConfig& overload) {
  if (!overload.enabled) return "";
  return ToString(overload.policy);
}

RunOutcome CampaignRunner::RunOne(
    std::uint64_t seed, const FaultPlan& plan,
    const stack::CarrierProfile& profile,
    const stack::OverloadConfig& overload) const {
  stack::TestbedConfig cfg;
  cfg.profile = profile;
  cfg.solutions = config_.solutions;
  cfg.robustness = config_.robustness;
  cfg.overload = overload;
  cfg.seed = seed;
  stack::Testbed tb(cfg);

  FaultInjector injector(tb);
  injector.Apply(plan);
  RecoveryMonitor monitor(tb, config_.slo);
  monitor.Start();
  ScheduleWorkload(tb);

  std::unique_ptr<obs::SnapshotScheduler> snapshots;
  if (config_.collect_telemetry) {
    snapshots = std::make_unique<obs::SnapshotScheduler>(
        tb.sim(), [&tb](obs::Registry& reg) { obs::HarvestTestbed(reg, tb); },
        config_.snapshot_period);
    snapshots->Start();
  }

  tb.Run(config_.duration);

  RunOutcome out;
  out.seed = seed;
  out.plan = plan.name;
  out.profile = profile.name;
  out.admission = AdmissionLabel(overload);
  out.report = monitor.Finalize();
  out.faults_injected = injector.injected();
  if (keep_traces_) out.trace_log = trace::FormatLog(tb.traces().records());

  if (config_.collect_telemetry) {
    obs::RunReport report;
    report.meta = {{"seed", std::to_string(seed)},
                   {"plan", plan.name},
                   {"profile", profile.name}};
    if (!out.admission.empty()) {
      report.meta.emplace_back("admission", out.admission);
    }
    report.snapshots = snapshots->snapshots();
    report.spans = obs::StitchSpans(tb.traces().records());

    obs::Registry final_reg;
    obs::HarvestTestbed(final_reg, tb);
    HarvestMonitorReport(final_reg, out.report);
    final_reg.GetCounter("fault.injected").Increment(out.faults_injected);
    obs::RecordSpans(final_reg, report.spans);
    report.final_metrics = final_reg.ToJson(tb.sim().now());
    out.telemetry = std::move(report);
  }
  return out;
}

std::vector<stack::CarrierProfile> CampaignRunner::ResolvedProfiles() const {
  std::vector<stack::CarrierProfile> profiles = config_.profiles;
  if (profiles.empty()) profiles.push_back(stack::OpI());
  return profiles;
}

std::vector<stack::OverloadConfig> CampaignRunner::ResolvedAdmission() const {
  std::vector<stack::OverloadConfig> admission = config_.admission;
  if (admission.empty()) admission.push_back(stack::OverloadConfig{});
  return admission;
}

std::uint64_t CampaignRunner::ConfigDigest() const {
  ckpt::DigestBuilder d;
  d.Add(std::string_view("fault-campaign"));
  d.Add(static_cast<std::uint64_t>(config_.seeds.size()));
  for (const std::uint64_t seed : config_.seeds) d.Add(seed);
  d.Add(static_cast<std::uint64_t>(config_.plans.size()));
  for (const auto& plan : config_.plans) d.Add(std::string_view(plan.name));
  const auto profiles = ResolvedProfiles();
  d.Add(static_cast<std::uint64_t>(profiles.size()));
  for (const auto& p : profiles) d.Add(std::string_view(p.name));
  d.Add(config_.duration);
  d.Add(config_.collect_telemetry);
  d.Add(config_.snapshot_period);
  d.Add(config_.slo.mm_recovery);
  d.Add(config_.slo.ps_recovery);
  d.Add(config_.slo.cs_recovery);
  d.Add(keep_traces_);
  // The admission dimension only perturbs the digest when it is actually
  // swept, so checkpoints from admission-free campaigns stay compatible.
  const auto admission = ResolvedAdmission();
  const bool default_admission =
      admission.size() == 1 && !admission.front().enabled;
  if (!default_admission) {
    d.Add(std::string_view("admission"));
    d.Add(static_cast<std::uint64_t>(admission.size()));
    for (const auto& a : admission) {
      d.Add(a.enabled);
      d.Add(static_cast<std::uint64_t>(a.policy));
      d.Add(static_cast<std::uint64_t>(a.queue_capacity));
      d.Add(a.service_time);
      d.Add(a.t3346_backoff);
    }
    d.Add(config_.slo.storm_attach_p99);
    d.Add(config_.slo.storm_max_shed_fraction);
    d.Add(config_.slo.storm_drain_bound);
  }
  return d.Finish();
}

CampaignResult CampaignRunner::Run() const {
  CampaignResult result;
  const std::vector<stack::CarrierProfile> profiles = ResolvedProfiles();
  const std::vector<stack::OverloadConfig> admission = ResolvedAdmission();

  // Enumerate the sweep up front so runs can execute on any worker while
  // the results vector keeps the serial profile -> plan -> admission ->
  // seed ordering.
  struct Triple {
    const stack::CarrierProfile* profile;
    const FaultPlan* plan;
    const stack::OverloadConfig* overload;
    std::uint64_t seed;
  };
  std::vector<Triple> triples;
  triples.reserve(profiles.size() * config_.plans.size() *
                  admission.size() * config_.seeds.size());
  for (const auto& profile : profiles) {
    for (const auto& plan : config_.plans) {
      for (const auto& adm : admission) {
        for (const std::uint64_t seed : config_.seeds) {
          triples.push_back({&profile, &plan, &adm, seed});
        }
      }
    }
  }

  result.runs.resize(triples.size());

  // The grid view of the sweep: one cell per triple, outcomes carried as
  // the lossless EncodeRunOutcome blob. Dispatch, supervision, retries,
  // checkpoint/resume and quarantine all live in dist::RunGrid.
  class Grid final : public dist::CellGrid {
   public:
    Grid(const CampaignRunner& runner, const std::vector<Triple>& triples)
        : runner_(runner), triples_(triples) {}
    std::size_t size() const override { return triples_.size(); }
    std::string CellName(std::size_t i) const override {
      const Triple& t = triples_[i];
      std::string name = "seed=" + std::to_string(t.seed) +
                         " plan=" + t.plan->name +
                         " profile=" + t.profile->name;
      const std::string adm = AdmissionLabel(*t.overload);
      if (!adm.empty()) name += " admission=" + adm;
      return name;
    }
    dist::CellOutcome RunCell(std::size_t i, std::string_view) override {
      const Triple& t = triples_[i];
      dist::CellOutcome out;
      out.payload = EncodeRunOutcome(
          runner_.RunOne(t.seed, *t.plan, *t.profile, *t.overload));
      return out;
    }

   private:
    const CampaignRunner& runner_;
    const std::vector<Triple>& triples_;
  };
  Grid grid(*this, triples);

  dist::DistOptions opt;
  opt.backend = config_.backend;
  opt.workers = config_.parallelism;
  opt.heartbeat_ms = config_.heartbeat_ms;
  opt.quarantine_after = config_.quarantine_after;
  opt.retry = config_.retry;
  opt.kill_plan = config_.kill_plan;
  opt.cancel = config_.cancel != nullptr ? &config_.cancel->flag() : nullptr;
  opt.cell_type = ckpt::PayloadType::kCampaignCell;
  opt.validate_payload = [](std::size_t, std::string_view blob) {
    RunOutcome out;
    return DecodeRunOutcome(blob, &out);
  };
  std::unique_ptr<ckpt::ManifestStore> store;
  if (!config_.checkpoint_dir.empty()) {
    store = std::make_unique<ckpt::ManifestStore>(config_.checkpoint_dir,
                                                  ConfigDigest());
    opt.store = store.get();
    opt.resume = config_.resume;
  }

  dist::GridResult cells = dist::RunGrid(grid, opt);
  for (std::size_t i = 0; i < triples.size(); ++i) {
    if (cells.Done(i)) DecodeRunOutcome(cells.payloads[i], &result.runs[i]);
  }
  result.exec = cells.exec;
  result.quarantined = std::move(cells.quarantined);
  result.worker_deaths = cells.worker_deaths;
  result.worker_respawns = cells.worker_respawns;
  result.heartbeat_timeouts = cells.heartbeat_timeouts;
  result.complete = cells.complete && result.quarantined.empty();

  for (const RunOutcome& run : result.runs) {
    if (run.report.all_within_slo()) ++result.runs_within_slo;
    if (!run.report.findings.empty()) ++result.runs_with_findings;
  }
  return result;
}

std::string CampaignResult::Summary() const {
  std::string out = Format(
      "%zu run(s): %zu within SLO, %zu with findings\n", runs.size(),
      runs_within_slo, runs_with_findings);
  for (const auto& r : runs) {
    out += Format("  seed=%llu plan=%s profile=%s faults=%zu",
                  static_cast<unsigned long long>(r.seed), r.plan.c_str(),
                  r.profile.c_str(), r.faults_injected);
    // Admission label only when the run swept one, so legacy summaries are
    // byte-identical.
    if (!r.admission.empty()) {
      out += Format(" admission=%s", r.admission.c_str());
    }
    out += Format(" -> %s",
                  r.report.all_within_slo() ? "OK" : "SLO-VIOLATION");
    if (!r.report.findings.empty()) {
      out += " [";
      for (std::size_t i = 0; i < r.report.findings.size(); ++i) {
        if (i > 0) out += ' ';
        out += r.report.findings[i].id;
      }
      out += ']';
    }
    out += '\n';
    for (const auto& p : r.report.properties) {
      if (p.within_slo() && p.outages == 0) continue;
      out += Format("    %-16s outages=%d longest=%.1fs total=%.1fs %s\n",
                    p.name.c_str(), p.outages, ToSeconds(p.longest_outage),
                    ToSeconds(p.total_outage),
                    p.within_slo() ? "recovered-within-SLO" : "VIOLATION");
    }
    if (r.report.degradation.active) {
      const DegradationReport& d = r.report.degradation;
      out += Format(
          "    %-16s injected=%llu offered=%llu rejected=%llu shed=%llu "
          "(%.2f) queue-peak=%zu attach-p99=%.2fs drain=%s %s\n", "storm",
          static_cast<unsigned long long>(d.storm_injected),
          static_cast<unsigned long long>(d.offered),
          static_cast<unsigned long long>(d.rejected_congestion),
          static_cast<unsigned long long>(d.shed), d.shed_fraction,
          d.queue_peak, d.attach_p99_s,
          d.drained ? Format("%.1fs", ToSeconds(d.time_to_drain)).c_str()
                    : "never",
          d.within_slo() ? "degraded-within-SLO" : "VIOLATION");
    }
  }
  // Quarantine block only when cells were actually quarantined, so legacy
  // summaries stay byte-identical.
  if (!quarantined.empty()) {
    out += Format("%zu quarantined cell(s):\n", quarantined.size());
    for (const auto& q : quarantined) {
      out += Format("  QUARANTINED %s after %u strike(s)%s%s\n",
                    q.name.c_str(), q.strikes,
                    q.last_error.empty() ? "" : ": ",
                    q.last_error.c_str());
    }
  }
  return out;
}

std::string CampaignResult::ChromeTraceJson() const {
  std::vector<std::string> fragments;
  int pid = 1;
  for (const auto& r : runs) {
    if (!r.telemetry) continue;
    fragments.push_back(r.telemetry->ChromeFragment(pid++));
  }
  return obs::ChromeTraceDocument(fragments);
}

}  // namespace cnv::fault
