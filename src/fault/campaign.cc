#include "fault/campaign.h"

#include "trace/qxdm.h"
#include "util/strings.h"

namespace cnv::fault {

void CampaignRunner::ScheduleWorkload(stack::Testbed& tb) {
  auto& sim = tb.sim();
  auto& ue = tb.ue();
  sim.ScheduleAt(0, [&ue] {
    ue.PowerOn(nas::System::k4G);
    ue.EnablePeriodicUpdates(Seconds(300));
  });
  sim.ScheduleAt(Seconds(30), [&ue] { ue.StartDataSession(0.2); });
  sim.ScheduleAt(Seconds(120), [&ue] { ue.Dial(); });
  sim.ScheduleAt(Seconds(180), [&ue] { ue.HangUp(); });
  sim.ScheduleAt(Seconds(240), [&ue] { ue.CrossAreaBoundary(); });
  sim.ScheduleAt(Seconds(250), [&ue] { ue.Dial(); });
  sim.ScheduleAt(Seconds(310), [&ue] { ue.HangUp(); });
  sim.ScheduleAt(Seconds(400), [&ue] { ue.CrossAreaBoundary(); });
  sim.ScheduleAt(Seconds(420), [&ue] { ue.Dial(); });
  sim.ScheduleAt(Seconds(480), [&ue] { ue.HangUp(); });
}

RunOutcome CampaignRunner::RunOne(
    std::uint64_t seed, const FaultPlan& plan,
    const stack::CarrierProfile& profile) const {
  stack::TestbedConfig cfg;
  cfg.profile = profile;
  cfg.solutions = config_.solutions;
  cfg.robustness = config_.robustness;
  cfg.seed = seed;
  stack::Testbed tb(cfg);

  FaultInjector injector(tb);
  injector.Apply(plan);
  RecoveryMonitor monitor(tb, config_.slo);
  monitor.Start();
  ScheduleWorkload(tb);
  tb.Run(config_.duration);

  RunOutcome out;
  out.seed = seed;
  out.plan = plan.name;
  out.profile = profile.name;
  out.report = monitor.Finalize();
  out.faults_injected = injector.injected();
  if (keep_traces_) out.trace_log = trace::FormatLog(tb.traces().records());
  return out;
}

CampaignResult CampaignRunner::Run() const {
  CampaignResult result;
  std::vector<stack::CarrierProfile> profiles = config_.profiles;
  if (profiles.empty()) profiles.push_back(stack::OpI());
  for (const auto& profile : profiles) {
    for (const auto& plan : config_.plans) {
      for (const std::uint64_t seed : config_.seeds) {
        RunOutcome run = RunOne(seed, plan, profile);
        if (run.report.all_within_slo()) ++result.runs_within_slo;
        if (!run.report.findings.empty()) ++result.runs_with_findings;
        result.runs.push_back(std::move(run));
      }
    }
  }
  return result;
}

std::string CampaignResult::Summary() const {
  std::string out = Format(
      "%zu run(s): %zu within SLO, %zu with findings\n", runs.size(),
      runs_within_slo, runs_with_findings);
  for (const auto& r : runs) {
    out += Format("  seed=%llu plan=%s profile=%s faults=%zu -> %s",
                  static_cast<unsigned long long>(r.seed), r.plan.c_str(),
                  r.profile.c_str(), r.faults_injected,
                  r.report.all_within_slo() ? "OK" : "SLO-VIOLATION");
    if (!r.report.findings.empty()) {
      out += " [";
      for (std::size_t i = 0; i < r.report.findings.size(); ++i) {
        if (i > 0) out += ' ';
        out += r.report.findings[i].id;
      }
      out += ']';
    }
    out += '\n';
    for (const auto& p : r.report.properties) {
      if (p.within_slo() && p.outages == 0) continue;
      out += Format("    %-16s outages=%d longest=%.1fs total=%.1fs %s\n",
                    p.name.c_str(), p.outages, ToSeconds(p.longest_outage),
                    ToSeconds(p.total_outage),
                    p.within_slo() ? "recovered-within-SLO" : "VIOLATION");
    }
  }
  return out;
}

}  // namespace cnv::fault
