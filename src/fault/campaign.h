// Sweeps seeds x fault plans x carrier profiles, running each combination
// through a fresh Testbed with the standard workload, a FaultInjector and
// a RecoveryMonitor. Every run is fully deterministic: the same (seed,
// plan, profile) triple produces an identical trace, report and findings.
//
// The standard workload (all times from t=0):
//   0 s     power on in 4G, periodic updates every 300 s
//   30 s    data session starts (0.2 Mbps demand)
//   120 s   dial (CSFB when in 4G), hang up at 180 s
//   240 s   area crossing; dial at 250 s, hang up at 310 s
//   400 s   area crossing; dial at 420 s, hang up at 480 s
// Canned fault plans reference these times (see plan.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "dist/grid.h"
#include "fault/injector.h"
#include "fault/monitor.h"
#include "fault/plan.h"
#include "obs/export.h"
#include "stack/testbed.h"

namespace cnv::fault {

struct CampaignConfig {
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  std::vector<FaultPlan> plans = plans::Findings();
  std::vector<stack::CarrierProfile> profiles;  // empty -> {OpI()}
  // Admission-policy sweep dimension: each entry is one core overload
  // configuration crossed with profiles x plans x seeds. Empty -> one
  // default-constructed (disabled) entry, which keeps legacy campaigns —
  // ordering, summaries, digests — byte-identical.
  std::vector<stack::OverloadConfig> admission;
  stack::SolutionConfig solutions;
  stack::RobustnessConfig robustness;
  SloBounds slo;
  SimDuration duration = Seconds(600);
  // Telemetry: when collect_telemetry is set, every run carries an
  // obs::RunReport (periodic metric snapshots on the simulator clock,
  // end-of-run metrics, stitched procedure spans). All exported values are
  // simulated-time based, so reports replay byte-identically per
  // (seed, plan, profile).
  bool collect_telemetry = false;
  SimDuration snapshot_period = Seconds(60);
  // Worker count for the sweep: 1 = serial (default), 0 = hardware
  // concurrency. Each (seed, plan, profile) run is self-contained, so runs
  // execute concurrently while reports keep the serial ordering — the
  // Summary(), traces and telemetry exports are byte-identical at any
  // parallelism.
  int parallelism = 1;
  // Crash safety: when checkpoint_dir is set, a manifest plus one blob per
  // completed cell is kept there (atomic, checksummed writes). With resume,
  // completed cells replay from their blobs and only missing cells run —
  // the final report is byte-identical to an uninterrupted run at any
  // parallelism (the config digest deliberately excludes `parallelism`).
  std::string checkpoint_dir;
  bool resume = false;
  // Self-healing: per-cell watchdog + bounded retries.
  ckpt::RetryPolicy retry;
  // Graceful drain: when the token fires, in-flight cells finish and are
  // checkpointed, pending cells are skipped, and the result is marked
  // interrupted/incomplete.
  ckpt::CancelToken* cancel = nullptr;
  // Distributed execution (dist::RunGrid): thread backend dispatches on the
  // in-process pool exactly like the historical loop; process backend fans
  // cells out to supervised worker processes with heartbeat liveness,
  // crash detection + lease reassignment and poisoned-cell quarantine. The
  // merged result is byte-identical across backends and worker counts.
  dist::Backend backend = dist::Backend::kThread;
  std::int64_t heartbeat_ms = 2000;
  int quarantine_after = 3;
  // Failure-injection seam for the kill-schedule fuzzer (process backend).
  dist::KillPlan kill_plan;
};

struct RunOutcome {
  std::uint64_t seed = 0;
  std::string plan;
  std::string profile;
  // Admission-policy label for the run ("" = legacy disabled core, else
  // "unbounded" / "reject-backoff" / "priority-shed").
  std::string admission;
  MonitorReport report;
  std::size_t faults_injected = 0;
  // The QXDM-formatted trace of the run; kept only when
  // CampaignConfig-independent callers ask for it via keep_traces.
  std::string trace_log;
  // Machine-readable run report; present iff config.collect_telemetry.
  std::optional<obs::RunReport> telemetry;
};

struct CampaignResult {
  std::vector<RunOutcome> runs;
  std::size_t runs_within_slo = 0;
  std::size_t runs_with_findings = 0;
  // Process-level accounting (resumes, retries, watchdog hits). Varies with
  // interruption history, so it is never part of Summary() or any
  // byte-compared export — drivers print it to stderr.
  ckpt::ExecutionStats exec;
  // Cells quarantined after repeatedly killing/failing their workers
  // (index order, deterministic for a deterministic poison). Quarantined
  // cells keep default RunOutcome entries and are listed by Summary().
  std::vector<dist::QuarantineRecord> quarantined;
  // Process-backend supervision accounting; stderr only, like exec.
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_respawns = 0;
  std::uint64_t heartbeat_timeouts = 0;
  // False when a drain interrupted the sweep before every cell completed;
  // runs[] then holds default entries for the unfinished cells and Summary()
  // is not meaningful.
  bool complete = true;
  std::string Summary() const;
  // Chrome trace-event document covering every run that carried telemetry
  // (one viewer process per run). Empty-run document when telemetry was off.
  std::string ChromeTraceJson() const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config, bool keep_traces = false)
      : config_(std::move(config)), keep_traces_(keep_traces) {}

  CampaignResult Run() const;

  // One deterministic run; exposed for tests and the determinism checks.
  // The overload config defaults to the legacy disabled core.
  RunOutcome RunOne(std::uint64_t seed, const FaultPlan& plan,
                    const stack::CarrierProfile& profile,
                    const stack::OverloadConfig& overload = {}) const;

  // Label used for RunOutcome::admission.
  static std::string AdmissionLabel(const stack::OverloadConfig& overload);

  // Digest of the sweep definition (seeds, plans, profiles, duration, SLO,
  // telemetry settings) guarding checkpoint resume; excludes parallelism,
  // retry policy and checkpoint paths so those may differ across resumes.
  std::uint64_t ConfigDigest() const;

 private:
  static void ScheduleWorkload(stack::Testbed& tb);
  std::vector<stack::CarrierProfile> ResolvedProfiles() const;
  std::vector<stack::OverloadConfig> ResolvedAdmission() const;

  CampaignConfig config_;
  bool keep_traces_;
};

}  // namespace cnv::fault
