// Binary codec for campaign cell outcomes. A completed (profile, plan,
// seed) run serializes losslessly — monitor report, findings, trace log,
// optional telemetry — so a resumed campaign replays the cell from its
// checkpoint blob and produces a byte-identical final report.
#pragma once

#include <string>
#include <string_view>

#include "fault/campaign.h"

namespace cnv::fault {

inline constexpr std::uint32_t kRunOutcomeVersion = 2;

std::string EncodeRunOutcome(const RunOutcome& out);

// Returns false when the payload does not decode cleanly (wrong layout or
// trailing bytes); callers treat that like a checksum failure.
bool DecodeRunOutcome(std::string_view payload, RunOutcome* out);

}  // namespace cnv::fault
