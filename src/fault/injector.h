// Interprets a FaultPlan against a Testbed: every action is scheduled on
// the testbed's simulator at its absolute time and emits a FAULT trace
// record when it fires, so campaign logs show injected faults inline with
// the protocol traffic they disturb.
#pragma once

#include "fault/plan.h"
#include "stack/testbed.h"

namespace cnv::fault {

class FaultInjector {
 public:
  explicit FaultInjector(stack::Testbed& tb) : tb_(tb) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every action of `plan`. Actions whose time is already in the
  // past execute immediately. May be called more than once (plans compose).
  void Apply(const FaultPlan& plan);

  std::size_t injected() const { return injected_; }

 private:
  void Execute(const FaultAction& a);
  sim::Link& LinkOf(FaultTarget t);
  // Which system a fault record should be attributed to.
  static nas::System SystemOf(FaultTarget t);

  stack::Testbed& tb_;
  std::size_t injected_ = 0;
};

}  // namespace cnv::fault
