#include "fault/plan.h"

#include "util/strings.h"

namespace cnv::fault {

std::string ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kDropNext:
      return "drop-next";
    case FaultKind::kDeferNext:
      return "defer-next";
    case FaultKind::kDuplicateNext:
      return "duplicate-next";
    case FaultKind::kReorderNext:
      return "reorder-next";
    case FaultKind::kCorruptNext:
      return "corrupt-next";
    case FaultKind::kExtraDelay:
      return "extra-delay";
    case FaultKind::kLinkLoss:
      return "link-loss";
    case FaultKind::kElementOutage:
      return "element-outage";
    case FaultKind::kElementRestart:
      return "element-restart";
    case FaultKind::kPdpDeactivate:
      return "pdp-deactivate";
    case FaultKind::kDisruptNextLu:
      return "disrupt-next-lu";
    case FaultKind::kForceSgsRace:
      return "force-sgs-race";
    case FaultKind::kTimerSkew:
      return "timer-skew";
    case FaultKind::kStormMassAttach:
      return "storm-mass-attach";
    case FaultKind::kStormTaPingPong:
      return "storm-ta-ping-pong";
    case FaultKind::kStormPagingFlood:
      return "storm-paging-flood";
    case FaultKind::kStormAdversarialNas:
      return "storm-adversarial-nas";
  }
  return "?";
}

std::string ToString(FaultTarget t) {
  switch (t) {
    case FaultTarget::kUl4g:
      return "UE->MME";
    case FaultTarget::kDl4g:
      return "MME->UE";
    case FaultTarget::kUl3gCs:
      return "UE->MSC";
    case FaultTarget::kDl3gCs:
      return "MSC->UE";
    case FaultTarget::kUl3gPs:
      return "UE->SGSN";
    case FaultTarget::kDl3gPs:
      return "SGSN->UE";
    case FaultTarget::kMme:
      return "MME";
    case FaultTarget::kMsc:
      return "MSC";
    case FaultTarget::kSgsn:
      return "SGSN";
    case FaultTarget::kHss:
      return "HSS";
    case FaultTarget::kUe:
      return "UE";
  }
  return "?";
}

std::string Describe(const FaultAction& a) {
  switch (a.kind) {
    case FaultKind::kDropNext:
    case FaultKind::kDuplicateNext:
    case FaultKind::kCorruptNext:
      return Format("%s on %s (n=%d)", ToString(a.kind).c_str(),
                    ToString(a.target).c_str(), a.count);
    case FaultKind::kDeferNext:
    case FaultKind::kExtraDelay:
      return Format("%s on %s (%.3f s)", ToString(a.kind).c_str(),
                    ToString(a.target).c_str(), a.value);
    case FaultKind::kLinkLoss:
      return Format("%s on %s (p=%.2f)", ToString(a.kind).c_str(),
                    ToString(a.target).c_str(), a.value);
    case FaultKind::kTimerSkew:
      return Format("%s on %s (x%.2f)", ToString(a.kind).c_str(),
                    ToString(a.target).c_str(), a.value);
    case FaultKind::kElementRestart:
      return Format("%s of %s (%s)", ToString(a.kind).c_str(),
                    ToString(a.target).c_str(),
                    a.lose_state ? "state lost" : "state kept");
    case FaultKind::kStormMassAttach:
    case FaultKind::kStormTaPingPong:
    case FaultKind::kStormPagingFlood:
    case FaultKind::kStormAdversarialNas:
      return Format("%s at %s (n=%d, spacing=%.3f s)",
                    ToString(a.kind).c_str(), ToString(a.target).c_str(),
                    a.count, a.value);
    default:
      return ToString(a.kind) + " on " + ToString(a.target);
  }
}

namespace plans {

FaultPlan S1MissingBearerContext() {
  return {
      .name = "s1-missing-bearer-context",
      .description = "network deactivates the PDP context while the device "
                     "is in 3G for a CSFB call; the return TAU finds no "
                     "bearer context and the MME detaches the device (S1)",
      .actions = {{.at = Seconds(150),
                   .kind = FaultKind::kPdpDeactivate,
                   .target = FaultTarget::kSgsn}},
  };
}

FaultPlan S2AttachDisruption() {
  return {
      .name = "s2-attach-disruption",
      .description = "the Attach Complete is lost over the radio, so the "
                     "MME keeps waiting for an attach it believes never "
                     "finished; the next TAU meets stale attach state and "
                     "is rejected with implicit detach (S2)",
      // At 20 ms the Attach Request (sent at t=0) is already in flight;
      // the next uplink NAS message is the Attach Complete (~130 ms).
      .actions = {{.at = Millis(20),
                   .kind = FaultKind::kDropNext,
                   .target = FaultTarget::kUl4g,
                   .count = 1}},
  };
}

FaultPlan S3StuckIn3g() {
  return {
      .name = "s3-stuck-in-3g",
      .description = "control plan: CSFB call with ongoing data and no "
                     "extra fault; on cell-reselection carriers the data "
                     "session pins RRC and strands the device in 3G (S3)",
      .actions = {},
  };
}

FaultPlan S4MmHolBlocking() {
  return {
      .name = "s4-mm-hol-blocking",
      .description = "the MSC->UE leg gains 4 s latency around an area "
                     "crossing, stretching the location-update window that "
                     "head-of-line blocks the user's call (S4)",
      .actions = {{.at = Seconds(235),
                   .kind = FaultKind::kExtraDelay,
                   .target = FaultTarget::kDl3gCs,
                   .value = 4.0},
                  {.at = Seconds(330),
                   .kind = FaultKind::kExtraDelay,
                   .target = FaultTarget::kDl3gCs,
                   .value = 0.0}},
  };
}

FaultPlan S5SharedChannelDrop() {
  return {
      .name = "s5-shared-channel-drop",
      .description = "control plan: voice call and data session share the "
                     "3G channel; modulation downgrade cuts PS throughput "
                     "for the call's duration (S5)",
      .actions = {},
  };
}

FaultPlan S6LuFailurePropagation() {
  return {
      .name = "s6-lu-failure-propagation",
      .description = "the SGs location update after the CSFB call engages "
                     "the §6.3 race; the 3G CS failure propagates into 4G "
                     "service loss (S6)",
      // Armed before each CSFB call; consumed by the post-return TAU.
      .actions = {{.at = Seconds(110),
                   .kind = FaultKind::kForceSgsRace,
                   .target = FaultTarget::kMme},
                  {.at = Seconds(245),
                   .kind = FaultKind::kForceSgsRace,
                   .target = FaultTarget::kMme}},
  };
}

FaultPlan MassAttachStorm() {
  return {
      .name = "mass-attach-storm",
      .description = "30k background attach requests hit the MME at 500/s "
                     "from 200 s; the 240 s area-crossing TAU lands mid-"
                     "storm",
      .actions = {{.at = Seconds(200),
                   .kind = FaultKind::kStormMassAttach,
                   .target = FaultTarget::kMme,
                   .count = 30'000,
                   .value = 0.002}},
  };
}

FaultPlan TaPingPongStorm() {
  return {
      .name = "ta-ping-pong-storm",
      .description = "border devices bounce 12k TAUs between two tracking "
                     "areas at 400/s from 220 s, overlapping the 240 s "
                     "crossing",
      .actions = {{.at = Seconds(220),
                   .kind = FaultKind::kStormTaPingPong,
                   .target = FaultTarget::kMme,
                   .count = 12'000,
                   .value = 0.0025}},
  };
}

FaultPlan PagingFloodStorm() {
  return {
      .name = "paging-flood-storm",
      .description = "10k paging responses flood the MSC at 250/s from "
                     "100 s, across the 120 s CSFB dial",
      .actions = {{.at = Seconds(100),
                   .kind = FaultKind::kStormPagingFlood,
                   .target = FaultTarget::kMsc,
                   .count = 10'000,
                   .value = 0.004}},
  };
}

FaultPlan AdversarialNasStorm() {
  return {
      .name = "adversarial-nas-storm",
      .description = "2k malformed / truncated / mis-typed / replayed NAS "
                     "messages at 100/s from 50 s; every one must be "
                     "screened out with the right cause and no FSM damage",
      .actions = {{.at = Seconds(50),
                   .kind = FaultKind::kStormAdversarialNas,
                   .target = FaultTarget::kMme,
                   .count = 2'000,
                   .value = 0.010}},
  };
}

FaultPlan SignallingStormMix() {
  return {
      .name = "signalling-storm-mix",
      .description = "adversarial NAS from 50 s, a paging flood from "
                     "100 s and an attach flood from 200 s, overlapping "
                     "the workload's calls and crossings",
      .actions = {{.at = Seconds(50),
                   .kind = FaultKind::kStormAdversarialNas,
                   .target = FaultTarget::kMme,
                   .count = 1'000,
                   .value = 0.020},
                  {.at = Seconds(100),
                   .kind = FaultKind::kStormPagingFlood,
                   .target = FaultTarget::kMsc,
                   .count = 5'000,
                   .value = 0.004},
                  {.at = Seconds(200),
                   .kind = FaultKind::kStormMassAttach,
                   .target = FaultTarget::kMme,
                   .count = 15'000,
                   .value = 0.003}},
  };
}

FaultPlan MmeCrashRestart() {
  return {
      .name = "mme-crash-restart",
      .description = "MME crashes at 60 s and restarts at 90 s having lost "
                     "all volatile EMM state",
      .actions = {{.at = Seconds(60),
                   .kind = FaultKind::kElementOutage,
                   .target = FaultTarget::kMme},
                  {.at = Seconds(90),
                   .kind = FaultKind::kElementRestart,
                   .target = FaultTarget::kMme,
                   .lose_state = true}},
  };
}

FaultPlan MscOutage() {
  return {
      .name = "msc-outage",
      .description = "MSC is down from 100 s to 200 s, across the first "
                     "CSFB call attempt; state survives the restart",
      .actions = {{.at = Seconds(100),
                   .kind = FaultKind::kElementOutage,
                   .target = FaultTarget::kMsc},
                  {.at = Seconds(200),
                   .kind = FaultKind::kElementRestart,
                   .target = FaultTarget::kMsc,
                   .lose_state = false}},
  };
}

FaultPlan SgsnFlap() {
  return {
      .name = "sgsn-flap",
      .description = "short SGSN flap (35-50 s) with state loss: the GPRS "
                     "registration and PDP context evaporate",
      .actions = {{.at = Seconds(35),
                   .kind = FaultKind::kElementOutage,
                   .target = FaultTarget::kSgsn},
                  {.at = Seconds(50),
                   .kind = FaultKind::kElementRestart,
                   .target = FaultTarget::kSgsn,
                   .lose_state = true}},
  };
}

FaultPlan HssBlackout() {
  return {
      .name = "hss-blackout",
      .description = "HSS is dark from 20 s to 220 s and forgets the "
                     "location registry on restart; the carriers' "
                     "subscriber views drift",
      .actions = {{.at = Seconds(20),
                   .kind = FaultKind::kElementOutage,
                   .target = FaultTarget::kHss},
                  {.at = Seconds(220),
                   .kind = FaultKind::kElementRestart,
                   .target = FaultTarget::kHss,
                   .lose_state = true}},
  };
}

FaultPlan RadioBurstLoss() {
  FaultPlan p{
      .name = "radio-burst-loss",
      .description = "30% loss burst on every radio leg from 10 s to 70 s",
      .actions = {},
  };
  const FaultTarget radio[] = {FaultTarget::kUl4g,   FaultTarget::kDl4g,
                               FaultTarget::kUl3gCs, FaultTarget::kDl3gCs,
                               FaultTarget::kUl3gPs, FaultTarget::kDl3gPs};
  for (FaultTarget t : radio) {
    p.actions.push_back({.at = Seconds(10),
                         .kind = FaultKind::kLinkLoss,
                         .target = t,
                         .value = 0.3});
    p.actions.push_back({.at = Seconds(70),
                         .kind = FaultKind::kLinkLoss,
                         .target = t,
                         .value = 0.0});
  }
  return p;
}

FaultPlan BackhaulDegradation() {
  FaultPlan p{
      .name = "backhaul-degradation",
      .description = "2 s of extra one-way delay on every downlink leg "
                     "from 100 s to 300 s",
      .actions = {},
  };
  const FaultTarget downlinks[] = {FaultTarget::kDl4g, FaultTarget::kDl3gCs,
                                   FaultTarget::kDl3gPs};
  for (FaultTarget t : downlinks) {
    p.actions.push_back({.at = Seconds(100),
                         .kind = FaultKind::kExtraDelay,
                         .target = t,
                         .value = 2.0});
    p.actions.push_back({.at = Seconds(300),
                         .kind = FaultKind::kExtraDelay,
                         .target = t,
                         .value = 0.0});
  }
  return p;
}

FaultPlan TimerSkew() {
  return {
      .name = "timer-skew",
      .description = "the UE's NAS guard timers run 2.5x slow from the "
                     "start of the run",
      .actions = {{.at = 0,
                   .kind = FaultKind::kTimerSkew,
                   .target = FaultTarget::kUe,
                   .value = 2.5}},
  };
}

FaultPlan AttachInterference() {
  return {
      .name = "attach-interference",
      .description = "the attach exchange is mangled: the request is "
                     "duplicated and corrupted, the accept reordered",
      .actions = {{.at = 0,
                   .kind = FaultKind::kCorruptNext,
                   .target = FaultTarget::kUl4g,
                   .count = 1},
                  {.at = Seconds(16),
                   .kind = FaultKind::kDuplicateNext,
                   .target = FaultTarget::kUl4g,
                   .count = 1},
                  {.at = Seconds(16),
                   .kind = FaultKind::kReorderNext,
                   .target = FaultTarget::kDl4g}},
  };
}

std::vector<FaultPlan> Findings() {
  return {S1MissingBearerContext(), S2AttachDisruption(),
          S3StuckIn3g(),            S4MmHolBlocking(),
          S5SharedChannelDrop(),    S6LuFailurePropagation()};
}

std::vector<FaultPlan> Storms() {
  return {MassAttachStorm(), TaPingPongStorm(), PagingFloodStorm(),
          AdversarialNasStorm(), SignallingStormMix()};
}

std::vector<FaultPlan> All() {
  std::vector<FaultPlan> out = Findings();
  out.push_back(MmeCrashRestart());
  out.push_back(MscOutage());
  out.push_back(SgsnFlap());
  out.push_back(HssBlackout());
  out.push_back(RadioBurstLoss());
  out.push_back(BackhaulDegradation());
  out.push_back(TimerSkew());
  out.push_back(AttachInterference());
  for (FaultPlan& p : Storms()) out.push_back(std::move(p));
  return out;
}

}  // namespace plans
}  // namespace cnv::fault
