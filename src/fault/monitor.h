// Watches a Testbed during a fault campaign and reports, per user-visible
// property, the outage and recovery times against configurable SLO bounds.
// The three properties are the ones the paper's user study cares about:
//
//   MM_OK            the device is registered with its serving system
//   PacketService_OK the packet-service path works end to end (and, when a
//                    data session is up, delivers non-zero throughput)
//   CallService_OK   the device could get call service right now
//
// Sampling is periodic on the testbed's simulator, so a monitored run is
// exactly as deterministic as the run itself. Property transitions emit
// RECOV trace records; finding probes translate the testbed's defect
// counters into the paper's S1-S6 findings after the run.
#pragma once

#include <string>
#include <vector>

#include "stack/testbed.h"

namespace cnv::fault {

struct SloBounds {
  // Longest tolerated single outage per property.
  SimDuration mm_recovery = Seconds(120);
  SimDuration ps_recovery = Seconds(120);
  SimDuration cs_recovery = Seconds(120);
};

struct PropertyReport {
  std::string name;
  bool established = false;  // the property was OK at least once
  bool ok_at_end = false;
  int outages = 0;
  SimDuration total_outage = 0;
  SimDuration longest_outage = 0;
  SimDuration slo = 0;
  // Recovered from every outage and never exceeded the SLO bound. A
  // property that never came up fails by definition.
  bool within_slo() const {
    return established && ok_at_end && longest_outage <= slo;
  }
};

// A structured finding: a known protocol-interaction defect the run
// reproduced, attributed via the testbed's defect counters.
struct Finding {
  std::string id;      // "S1" .. "S6"
  std::string detail;  // what the counters showed
};

struct MonitorReport {
  std::vector<PropertyReport> properties;  // MM, PS, CS (in that order)
  std::vector<Finding> findings;
  bool all_within_slo() const {
    for (const auto& p : properties) {
      if (!p.within_slo()) return false;
    }
    return true;
  }
};

class RecoveryMonitor {
 public:
  explicit RecoveryMonitor(stack::Testbed& tb, SloBounds slo = {},
                           SimDuration period = Millis(100));
  RecoveryMonitor(const RecoveryMonitor&) = delete;
  RecoveryMonitor& operator=(const RecoveryMonitor&) = delete;

  // Begins periodic sampling (idempotent).
  void Start();

  // Stops sampling, closes open outage windows at the current simulation
  // time, probes the finding counters, and returns the report.
  MonitorReport Finalize();

  // Probes the testbed's defect counters for the paper's findings. Usable
  // standalone (the validation experiments reuse it).
  static std::vector<Finding> ProbeFindings(stack::Testbed& tb);

 private:
  struct Tracker {
    std::string name;
    SimDuration slo = 0;
    bool established = false;
    bool ok = false;
    SimTime outage_started = 0;
    int outages = 0;
    SimDuration total_outage = 0;
    SimDuration longest_outage = 0;
  };

  void Sample();
  void Observe(Tracker& t, bool ok_now);

  bool MmOk() const;
  bool PsOk() const;
  bool CsOk() const;

  stack::Testbed& tb_;
  SloBounds slo_;
  SimDuration period_;
  bool running_ = false;
  Tracker mm_;
  Tracker ps_;
  Tracker cs_;
};

}  // namespace cnv::fault
