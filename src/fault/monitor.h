// Watches a Testbed during a fault campaign and reports, per user-visible
// property, the outage and recovery times against configurable SLO bounds.
// The three properties are the ones the paper's user study cares about:
//
//   MM_OK            the device is registered with its serving system
//   PacketService_OK the packet-service path works end to end (and, when a
//                    data session is up, delivers non-zero throughput)
//   CallService_OK   the device could get call service right now
//
// Sampling is periodic on the testbed's simulator, so a monitored run is
// exactly as deterministic as the run itself. Property transitions emit
// RECOV trace records; finding probes translate the testbed's defect
// counters into the paper's S1-S6 findings after the run.
#pragma once

#include <string>
#include <vector>

#include "stack/testbed.h"

namespace cnv::fault {

struct SloBounds {
  // Longest tolerated single outage per property.
  SimDuration mm_recovery = Seconds(120);
  SimDuration ps_recovery = Seconds(120);
  SimDuration cs_recovery = Seconds(120);
  // Graceful-degradation bounds, checked only when the run carried storm
  // load (see DegradationReport).
  SimDuration storm_attach_p99 = Seconds(35);  // foreground attach latency
  double storm_max_shed_fraction = 0.9;        // turned-away / offered
  SimDuration storm_drain_bound = Seconds(30); // backlog gone this soon
                                               // after the last injection
};

struct PropertyReport {
  std::string name;
  bool established = false;  // the property was OK at least once
  bool ok_at_end = false;
  int outages = 0;
  SimDuration total_outage = 0;
  SimDuration longest_outage = 0;
  SimDuration slo = 0;
  // Recovered from every outage and never exceeded the SLO bound. A
  // property that never came up fails by definition.
  bool within_slo() const {
    return established && ok_at_end && longest_outage <= slo;
  }
};

// A structured finding: a known protocol-interaction defect the run
// reproduced, attributed via the testbed's defect counters.
struct Finding {
  std::string id;      // "S1" .. "S6"
  std::string detail;  // what the counters showed
};

// How gracefully the core degraded under storm load. Aggregated over the
// MME, MSC and SGSN admission counters; `active` only when the testbed's
// StormGenerator injected traffic, so storm-free runs are unaffected.
struct DegradationReport {
  bool active = false;
  std::uint64_t storm_injected = 0;     // messages the generator produced
  std::uint64_t offered = 0;            // signalling that asked for capacity
  std::uint64_t served = 0;             // dispatched + background drained
  std::uint64_t rejected_congestion = 0;
  std::uint64_t shed = 0;
  std::uint64_t integrity_rejected = 0;
  std::uint64_t replay_dropped = 0;
  std::size_t queue_peak = 0;
  double shed_fraction = 0.0;           // (rejected + shed) / offered
  double attach_p99_s = 0.0;            // foreground UE attach latency p99
  std::uint64_t ue_congestion_rejects = 0;
  std::uint64_t ue_congestion_backoffs = 0;
  bool drained = false;                 // every core queue empty at the end
  SimDuration time_to_drain = 0;        // last-drain minus last-injection
  // Bounds copied from SloBounds at Finalize so the verdict is
  // self-contained (and survives the checkpoint codec).
  SimDuration attach_p99_slo = 0;
  double shed_fraction_slo = 0.0;
  SimDuration drain_slo = 0;

  bool within_slo() const {
    if (!active) return true;
    if (attach_p99_s > ToSeconds(attach_p99_slo)) return false;
    if (shed_fraction > shed_fraction_slo) return false;
    return drained && time_to_drain <= drain_slo;
  }
};

struct MonitorReport {
  std::vector<PropertyReport> properties;  // MM, PS, CS (in that order)
  std::vector<Finding> findings;
  DegradationReport degradation;
  bool all_within_slo() const {
    for (const auto& p : properties) {
      if (!p.within_slo()) return false;
    }
    return degradation.within_slo();
  }
};

class RecoveryMonitor {
 public:
  explicit RecoveryMonitor(stack::Testbed& tb, SloBounds slo = {},
                           SimDuration period = Millis(100));
  RecoveryMonitor(const RecoveryMonitor&) = delete;
  RecoveryMonitor& operator=(const RecoveryMonitor&) = delete;

  // Begins periodic sampling (idempotent).
  void Start();

  // Stops sampling, closes open outage windows at the current simulation
  // time, probes the finding counters, and returns the report.
  MonitorReport Finalize();

  // Probes the testbed's defect counters for the paper's findings. Usable
  // standalone (the validation experiments reuse it).
  static std::vector<Finding> ProbeFindings(stack::Testbed& tb);

  // Aggregates the core elements' overload counters and the foreground
  // UE's congestion/backoff view into a degradation verdict. Standalone
  // for tests; Finalize() calls it with this monitor's bounds.
  static DegradationReport ProbeDegradation(stack::Testbed& tb,
                                            const SloBounds& slo);

 private:
  struct Tracker {
    std::string name;
    SimDuration slo = 0;
    bool established = false;
    bool ok = false;
    SimTime outage_started = 0;
    int outages = 0;
    SimDuration total_outage = 0;
    SimDuration longest_outage = 0;
  };

  void Sample();
  void Observe(Tracker& t, bool ok_now);

  bool MmOk() const;
  bool PsOk() const;
  bool CsOk() const;

  stack::Testbed& tb_;
  SloBounds slo_;
  SimDuration period_;
  bool running_ = false;
  Tracker mm_;
  Tracker ps_;
  Tracker cs_;
};

}  // namespace cnv::fault
