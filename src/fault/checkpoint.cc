#include "fault/checkpoint.h"

#include <utility>

#include "ckpt/io.h"

namespace cnv::fault {

namespace {

using ckpt::BinaryReader;
using ckpt::BinaryWriter;

void EncodeMonitorReport(BinaryWriter& w, const MonitorReport& r) {
  w.U64(r.properties.size());
  for (const auto& p : r.properties) {
    w.Str(p.name);
    w.U8(p.established ? 1 : 0);
    w.U8(p.ok_at_end ? 1 : 0);
    w.I64(p.outages);
    w.I64(p.total_outage);
    w.I64(p.longest_outage);
    w.I64(p.slo);
  }
  w.U64(r.findings.size());
  for (const auto& f : r.findings) {
    w.Str(f.id);
    w.Str(f.detail);
  }
  const DegradationReport& d = r.degradation;
  w.U8(d.active ? 1 : 0);
  w.U64(d.storm_injected);
  w.U64(d.offered);
  w.U64(d.served);
  w.U64(d.rejected_congestion);
  w.U64(d.shed);
  w.U64(d.integrity_rejected);
  w.U64(d.replay_dropped);
  w.U64(d.queue_peak);
  w.F64(d.shed_fraction);
  w.F64(d.attach_p99_s);
  w.U64(d.ue_congestion_rejects);
  w.U64(d.ue_congestion_backoffs);
  w.U8(d.drained ? 1 : 0);
  w.I64(d.time_to_drain);
  w.I64(d.attach_p99_slo);
  w.F64(d.shed_fraction_slo);
  w.I64(d.drain_slo);
}

bool DecodeMonitorReport(BinaryReader& r, MonitorReport* out) {
  const std::uint64_t n_props = r.U64();
  if (n_props > 1024) return false;
  out->properties.clear();
  for (std::uint64_t i = 0; i < n_props && r.ok(); ++i) {
    PropertyReport p;
    p.name = r.Str();
    p.established = r.U8() != 0;
    p.ok_at_end = r.U8() != 0;
    p.outages = static_cast<int>(r.I64());
    p.total_outage = r.I64();
    p.longest_outage = r.I64();
    p.slo = r.I64();
    out->properties.push_back(std::move(p));
  }
  const std::uint64_t n_findings = r.U64();
  if (n_findings > 4096) return false;
  out->findings.clear();
  for (std::uint64_t i = 0; i < n_findings && r.ok(); ++i) {
    Finding f;
    f.id = r.Str();
    f.detail = r.Str();
    out->findings.push_back(std::move(f));
  }
  DegradationReport& d = out->degradation;
  d.active = r.U8() != 0;
  d.storm_injected = r.U64();
  d.offered = r.U64();
  d.served = r.U64();
  d.rejected_congestion = r.U64();
  d.shed = r.U64();
  d.integrity_rejected = r.U64();
  d.replay_dropped = r.U64();
  d.queue_peak = static_cast<std::size_t>(r.U64());
  d.shed_fraction = r.F64();
  d.attach_p99_s = r.F64();
  d.ue_congestion_rejects = r.U64();
  d.ue_congestion_backoffs = r.U64();
  d.drained = r.U8() != 0;
  d.time_to_drain = r.I64();
  d.attach_p99_slo = r.I64();
  d.shed_fraction_slo = r.F64();
  d.drain_slo = r.I64();
  return r.ok();
}

void EncodeTelemetry(BinaryWriter& w, const obs::RunReport& t) {
  w.U64(t.meta.size());
  for (const auto& [k, v] : t.meta) {
    w.Str(k);
    w.Str(v);
  }
  w.U64(t.snapshots.size());
  for (const auto& s : t.snapshots) w.Str(s);
  w.Str(t.final_metrics);
  w.U64(t.spans.size());
  for (const auto& s : t.spans) {
    w.U8(static_cast<std::uint8_t>(s.kind));
    w.I64(s.start);
    w.I64(s.end);
    w.U8(static_cast<std::uint8_t>(s.outcome));
    w.I64(s.retries);
    w.Str(s.detail);
  }
}

bool DecodeTelemetry(BinaryReader& r, obs::RunReport* out) {
  const std::uint64_t n_meta = r.U64();
  if (n_meta > 4096) return false;
  out->meta.clear();
  for (std::uint64_t i = 0; i < n_meta && r.ok(); ++i) {
    std::string k = r.Str();
    std::string v = r.Str();
    out->meta.emplace_back(std::move(k), std::move(v));
  }
  const std::uint64_t n_snaps = r.U64();
  if (n_snaps > (1ull << 20)) return false;
  out->snapshots.clear();
  for (std::uint64_t i = 0; i < n_snaps && r.ok(); ++i) {
    out->snapshots.push_back(r.Str());
  }
  out->final_metrics = r.Str();
  const std::uint64_t n_spans = r.U64();
  if (n_spans > (1ull << 20)) return false;
  out->spans.clear();
  for (std::uint64_t i = 0; i < n_spans && r.ok(); ++i) {
    obs::ProcedureSpan s;
    s.kind = static_cast<obs::SpanKind>(r.U8());
    s.start = r.I64();
    s.end = r.I64();
    s.outcome = static_cast<obs::SpanOutcome>(r.U8());
    s.retries = static_cast<int>(r.I64());
    s.detail = r.Str();
    out->spans.push_back(std::move(s));
  }
  return r.ok();
}

}  // namespace

std::string EncodeRunOutcome(const RunOutcome& out) {
  BinaryWriter w;
  w.U64(out.seed);
  w.Str(out.plan);
  w.Str(out.profile);
  w.Str(out.admission);
  EncodeMonitorReport(w, out.report);
  w.U64(out.faults_injected);
  w.Str(out.trace_log);
  w.U8(out.telemetry.has_value() ? 1 : 0);
  if (out.telemetry.has_value()) EncodeTelemetry(w, *out.telemetry);
  return w.Take();
}

bool DecodeRunOutcome(std::string_view payload, RunOutcome* out) {
  BinaryReader r(payload);
  RunOutcome o;
  o.seed = r.U64();
  o.plan = r.Str();
  o.profile = r.Str();
  o.admission = r.Str();
  if (!DecodeMonitorReport(r, &o.report)) return false;
  o.faults_injected = static_cast<std::size_t>(r.U64());
  o.trace_log = r.Str();
  if (r.U8() != 0) {
    obs::RunReport t;
    if (!DecodeTelemetry(r, &t)) return false;
    o.telemetry = std::move(t);
  } else {
    o.telemetry.reset();
  }
  if (!r.AtEnd()) return false;
  *out = std::move(o);
  return true;
}

}  // namespace cnv::fault
