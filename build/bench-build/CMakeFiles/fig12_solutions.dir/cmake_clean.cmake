file(REMOVE_RECURSE
  "../bench/fig12_solutions"
  "../bench/fig12_solutions.pdb"
  "CMakeFiles/fig12_solutions.dir/fig12_solutions.cc.o"
  "CMakeFiles/fig12_solutions.dir/fig12_solutions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
