# Empty compiler generated dependencies file for fig12_solutions.
# This may be replaced when dependencies are built.
