file(REMOVE_RECURSE
  "../bench/table1_findings"
  "../bench/table1_findings.pdb"
  "CMakeFiles/table1_findings.dir/table1_findings.cc.o"
  "CMakeFiles/table1_findings.dir/table1_findings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
