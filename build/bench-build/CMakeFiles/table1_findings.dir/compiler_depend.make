# Empty compiler generated dependencies file for table1_findings.
# This may be replaced when dependencies are built.
