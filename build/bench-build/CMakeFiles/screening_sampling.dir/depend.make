# Empty dependencies file for screening_sampling.
# This may be replaced when dependencies are built.
