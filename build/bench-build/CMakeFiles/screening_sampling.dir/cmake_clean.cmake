file(REMOVE_RECURSE
  "../bench/screening_sampling"
  "../bench/screening_sampling.pdb"
  "CMakeFiles/screening_sampling.dir/screening_sampling.cc.o"
  "CMakeFiles/screening_sampling.dir/screening_sampling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screening_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
