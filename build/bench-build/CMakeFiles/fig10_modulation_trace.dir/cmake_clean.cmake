file(REMOVE_RECURSE
  "../bench/fig10_modulation_trace"
  "../bench/fig10_modulation_trace.pdb"
  "CMakeFiles/fig10_modulation_trace.dir/fig10_modulation_trace.cc.o"
  "CMakeFiles/fig10_modulation_trace.dir/fig10_modulation_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_modulation_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
