# Empty compiler generated dependencies file for fig10_modulation_trace.
# This may be replaced when dependencies are built.
