file(REMOVE_RECURSE
  "../bench/fig9_rate_drop"
  "../bench/fig9_rate_drop.pdb"
  "CMakeFiles/fig9_rate_drop.dir/fig9_rate_drop.cc.o"
  "CMakeFiles/fig9_rate_drop.dir/fig9_rate_drop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_rate_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
