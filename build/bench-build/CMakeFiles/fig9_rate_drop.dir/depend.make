# Empty dependencies file for fig9_rate_drop.
# This may be replaced when dependencies are built.
