# Empty compiler generated dependencies file for fig6_rrc_states.
# This may be replaced when dependencies are built.
