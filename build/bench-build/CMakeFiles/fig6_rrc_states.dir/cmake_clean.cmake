file(REMOVE_RECURSE
  "../bench/fig6_rrc_states"
  "../bench/fig6_rrc_states.pdb"
  "CMakeFiles/fig6_rrc_states.dir/fig6_rrc_states.cc.o"
  "CMakeFiles/fig6_rrc_states.dir/fig6_rrc_states.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_rrc_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
