# Empty compiler generated dependencies file for ablation_rrc_timers.
# This may be replaced when dependencies are built.
