file(REMOVE_RECURSE
  "../bench/ablation_rrc_timers"
  "../bench/ablation_rrc_timers.pdb"
  "CMakeFiles/ablation_rrc_timers.dir/ablation_rrc_timers.cc.o"
  "CMakeFiles/ablation_rrc_timers.dir/ablation_rrc_timers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rrc_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
