file(REMOVE_RECURSE
  "../bench/fig8_update_cdf"
  "../bench/fig8_update_cdf.pdb"
  "CMakeFiles/fig8_update_cdf.dir/fig8_update_cdf.cc.o"
  "CMakeFiles/fig8_update_cdf.dir/fig8_update_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_update_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
