file(REMOVE_RECURSE
  "../bench/fig13_decoupling"
  "../bench/fig13_decoupling.pdb"
  "CMakeFiles/fig13_decoupling.dir/fig13_decoupling.cc.o"
  "CMakeFiles/fig13_decoupling.dir/fig13_decoupling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
