# Empty compiler generated dependencies file for fig13_decoupling.
# This may be replaced when dependencies are built.
