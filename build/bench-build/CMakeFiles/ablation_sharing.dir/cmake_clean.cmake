file(REMOVE_RECURSE
  "../bench/ablation_sharing"
  "../bench/ablation_sharing.pdb"
  "CMakeFiles/ablation_sharing.dir/ablation_sharing.cc.o"
  "CMakeFiles/ablation_sharing.dir/ablation_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
