file(REMOVE_RECURSE
  "../bench/fig7_drive_route"
  "../bench/fig7_drive_route.pdb"
  "CMakeFiles/fig7_drive_route.dir/fig7_drive_route.cc.o"
  "CMakeFiles/fig7_drive_route.dir/fig7_drive_route.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_drive_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
