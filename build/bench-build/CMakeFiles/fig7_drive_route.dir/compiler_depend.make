# Empty compiler generated dependencies file for fig7_drive_route.
# This may be replaced when dependencies are built.
