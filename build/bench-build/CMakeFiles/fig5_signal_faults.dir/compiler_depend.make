# Empty compiler generated dependencies file for fig5_signal_faults.
# This may be replaced when dependencies are built.
