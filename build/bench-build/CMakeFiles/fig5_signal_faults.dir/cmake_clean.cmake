file(REMOVE_RECURSE
  "../bench/fig5_signal_faults"
  "../bench/fig5_signal_faults.pdb"
  "CMakeFiles/fig5_signal_faults.dir/fig5_signal_faults.cc.o"
  "CMakeFiles/fig5_signal_faults.dir/fig5_signal_faults.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_signal_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
