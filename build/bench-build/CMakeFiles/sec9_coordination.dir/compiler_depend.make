# Empty compiler generated dependencies file for sec9_coordination.
# This may be replaced when dependencies are built.
