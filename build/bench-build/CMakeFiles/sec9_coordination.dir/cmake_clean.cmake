file(REMOVE_RECURSE
  "../bench/sec9_coordination"
  "../bench/sec9_coordination.pdb"
  "CMakeFiles/sec9_coordination.dir/sec9_coordination.cc.o"
  "CMakeFiles/sec9_coordination.dir/sec9_coordination.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
