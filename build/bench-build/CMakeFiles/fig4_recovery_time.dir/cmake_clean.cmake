file(REMOVE_RECURSE
  "../bench/fig4_recovery_time"
  "../bench/fig4_recovery_time.pdb"
  "CMakeFiles/fig4_recovery_time.dir/fig4_recovery_time.cc.o"
  "CMakeFiles/fig4_recovery_time.dir/fig4_recovery_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_recovery_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
