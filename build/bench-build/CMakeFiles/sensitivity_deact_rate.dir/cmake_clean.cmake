file(REMOVE_RECURSE
  "../bench/sensitivity_deact_rate"
  "../bench/sensitivity_deact_rate.pdb"
  "CMakeFiles/sensitivity_deact_rate.dir/sensitivity_deact_rate.cc.o"
  "CMakeFiles/sensitivity_deact_rate.dir/sensitivity_deact_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_deact_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
