# Empty dependencies file for sensitivity_deact_rate.
# This may be replaced when dependencies are built.
