# Empty dependencies file for table5_user_study.
# This may be replaced when dependencies are built.
