file(REMOVE_RECURSE
  "../bench/table5_user_study"
  "../bench/table5_user_study.pdb"
  "CMakeFiles/table5_user_study.dir/table5_user_study.cc.o"
  "CMakeFiles/table5_user_study.dir/table5_user_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
