# Empty dependencies file for table3_pdp_causes.
# This may be replaced when dependencies are built.
