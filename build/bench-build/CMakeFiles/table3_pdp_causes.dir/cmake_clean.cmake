file(REMOVE_RECURSE
  "../bench/table3_pdp_causes"
  "../bench/table3_pdp_causes.pdb"
  "CMakeFiles/table3_pdp_causes.dir/table3_pdp_causes.cc.o"
  "CMakeFiles/table3_pdp_causes.dir/table3_pdp_causes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pdp_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
