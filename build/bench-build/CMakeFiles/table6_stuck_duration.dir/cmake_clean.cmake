file(REMOVE_RECURSE
  "../bench/table6_stuck_duration"
  "../bench/table6_stuck_duration.pdb"
  "CMakeFiles/table6_stuck_duration.dir/table6_stuck_duration.cc.o"
  "CMakeFiles/table6_stuck_duration.dir/table6_stuck_duration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_stuck_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
