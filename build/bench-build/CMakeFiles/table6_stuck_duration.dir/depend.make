# Empty dependencies file for table6_stuck_duration.
# This may be replaced when dependencies are built.
