file(REMOVE_RECURSE
  "../bench/ablation_volte"
  "../bench/ablation_volte.pdb"
  "CMakeFiles/ablation_volte.dir/ablation_volte.cc.o"
  "CMakeFiles/ablation_volte.dir/ablation_volte.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_volte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
