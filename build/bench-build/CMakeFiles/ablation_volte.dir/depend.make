# Empty dependencies file for ablation_volte.
# This may be replaced when dependencies are built.
