# Empty compiler generated dependencies file for mck_explorer_test.
# This may be replaced when dependencies are built.
