file(REMOVE_RECURSE
  "CMakeFiles/mck_explorer_test.dir/mck_explorer_test.cc.o"
  "CMakeFiles/mck_explorer_test.dir/mck_explorer_test.cc.o.d"
  "mck_explorer_test"
  "mck_explorer_test.pdb"
  "mck_explorer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mck_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
