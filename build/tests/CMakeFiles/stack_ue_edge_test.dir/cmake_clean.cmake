file(REMOVE_RECURSE
  "CMakeFiles/stack_ue_edge_test.dir/stack_ue_edge_test.cc.o"
  "CMakeFiles/stack_ue_edge_test.dir/stack_ue_edge_test.cc.o.d"
  "stack_ue_edge_test"
  "stack_ue_edge_test.pdb"
  "stack_ue_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_ue_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
