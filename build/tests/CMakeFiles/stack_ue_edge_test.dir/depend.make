# Empty dependencies file for stack_ue_edge_test.
# This may be replaced when dependencies are built.
