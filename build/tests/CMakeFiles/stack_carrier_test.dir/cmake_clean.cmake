file(REMOVE_RECURSE
  "CMakeFiles/stack_carrier_test.dir/stack_carrier_test.cc.o"
  "CMakeFiles/stack_carrier_test.dir/stack_carrier_test.cc.o.d"
  "stack_carrier_test"
  "stack_carrier_test.pdb"
  "stack_carrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_carrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
