# Empty compiler generated dependencies file for stack_carrier_test.
# This may be replaced when dependencies are built.
