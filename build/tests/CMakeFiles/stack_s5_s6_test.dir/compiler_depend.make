# Empty compiler generated dependencies file for stack_s5_s6_test.
# This may be replaced when dependencies are built.
