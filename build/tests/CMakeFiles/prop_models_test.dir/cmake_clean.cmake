file(REMOVE_RECURSE
  "CMakeFiles/prop_models_test.dir/prop_models_test.cc.o"
  "CMakeFiles/prop_models_test.dir/prop_models_test.cc.o.d"
  "prop_models_test"
  "prop_models_test.pdb"
  "prop_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
