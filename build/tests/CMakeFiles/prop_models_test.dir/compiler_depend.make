# Empty compiler generated dependencies file for prop_models_test.
# This may be replaced when dependencies are built.
