# Empty dependencies file for solution_shim_test.
# This may be replaced when dependencies are built.
