file(REMOVE_RECURSE
  "CMakeFiles/solution_shim_test.dir/solution_shim_test.cc.o"
  "CMakeFiles/solution_shim_test.dir/solution_shim_test.cc.o.d"
  "solution_shim_test"
  "solution_shim_test.pdb"
  "solution_shim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_shim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
