file(REMOVE_RECURSE
  "CMakeFiles/stack_attach_test.dir/stack_attach_test.cc.o"
  "CMakeFiles/stack_attach_test.dir/stack_attach_test.cc.o.d"
  "stack_attach_test"
  "stack_attach_test.pdb"
  "stack_attach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_attach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
