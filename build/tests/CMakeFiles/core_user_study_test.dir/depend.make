# Empty dependencies file for core_user_study_test.
# This may be replaced when dependencies are built.
