file(REMOVE_RECURSE
  "CMakeFiles/prop_shim_test.dir/prop_shim_test.cc.o"
  "CMakeFiles/prop_shim_test.dir/prop_shim_test.cc.o.d"
  "prop_shim_test"
  "prop_shim_test.pdb"
  "prop_shim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_shim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
