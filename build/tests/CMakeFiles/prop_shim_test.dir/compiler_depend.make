# Empty compiler generated dependencies file for prop_shim_test.
# This may be replaced when dependencies are built.
