file(REMOVE_RECURSE
  "CMakeFiles/stack_hss_test.dir/stack_hss_test.cc.o"
  "CMakeFiles/stack_hss_test.dir/stack_hss_test.cc.o.d"
  "stack_hss_test"
  "stack_hss_test.pdb"
  "stack_hss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_hss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
