# Empty dependencies file for stack_hss_test.
# This may be replaced when dependencies are built.
