file(REMOVE_RECURSE
  "CMakeFiles/prop_sim_test.dir/prop_sim_test.cc.o"
  "CMakeFiles/prop_sim_test.dir/prop_sim_test.cc.o.d"
  "prop_sim_test"
  "prop_sim_test.pdb"
  "prop_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
