# Empty dependencies file for prop_sim_test.
# This may be replaced when dependencies are built.
