# Empty dependencies file for prop_stack_test.
# This may be replaced when dependencies are built.
