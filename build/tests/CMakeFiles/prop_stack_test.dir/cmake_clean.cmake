file(REMOVE_RECURSE
  "CMakeFiles/prop_stack_test.dir/prop_stack_test.cc.o"
  "CMakeFiles/prop_stack_test.dir/prop_stack_test.cc.o.d"
  "prop_stack_test"
  "prop_stack_test.pdb"
  "prop_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
