# Empty dependencies file for trace_qxdm_fuzz_test.
# This may be replaced when dependencies are built.
