file(REMOVE_RECURSE
  "CMakeFiles/mck_reachability_test.dir/mck_reachability_test.cc.o"
  "CMakeFiles/mck_reachability_test.dir/mck_reachability_test.cc.o.d"
  "mck_reachability_test"
  "mck_reachability_test.pdb"
  "mck_reachability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mck_reachability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
