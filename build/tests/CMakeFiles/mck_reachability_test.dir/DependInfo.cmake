
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mck_reachability_test.cc" "tests/CMakeFiles/mck_reachability_test.dir/mck_reachability_test.cc.o" "gcc" "tests/CMakeFiles/mck_reachability_test.dir/mck_reachability_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/cnv_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/cnv_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/mck/CMakeFiles/cnv_mck.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
