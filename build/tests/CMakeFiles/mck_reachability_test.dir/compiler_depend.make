# Empty compiler generated dependencies file for mck_reachability_test.
# This may be replaced when dependencies are built.
