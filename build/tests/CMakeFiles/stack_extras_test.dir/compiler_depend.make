# Empty compiler generated dependencies file for stack_extras_test.
# This may be replaced when dependencies are built.
