file(REMOVE_RECURSE
  "CMakeFiles/stack_extras_test.dir/stack_extras_test.cc.o"
  "CMakeFiles/stack_extras_test.dir/stack_extras_test.cc.o.d"
  "stack_extras_test"
  "stack_extras_test.pdb"
  "stack_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
