# Empty dependencies file for model_s2_test.
# This may be replaced when dependencies are built.
