file(REMOVE_RECURSE
  "CMakeFiles/model_s2_test.dir/model_s2_test.cc.o"
  "CMakeFiles/model_s2_test.dir/model_s2_test.cc.o.d"
  "model_s2_test"
  "model_s2_test.pdb"
  "model_s2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_s2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
