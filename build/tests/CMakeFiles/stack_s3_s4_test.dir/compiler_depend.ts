# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stack_s3_s4_test.
