# Empty compiler generated dependencies file for stack_s3_s4_test.
# This may be replaced when dependencies are built.
