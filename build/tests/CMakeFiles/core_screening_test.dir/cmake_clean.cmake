file(REMOVE_RECURSE
  "CMakeFiles/core_screening_test.dir/core_screening_test.cc.o"
  "CMakeFiles/core_screening_test.dir/core_screening_test.cc.o.d"
  "core_screening_test"
  "core_screening_test.pdb"
  "core_screening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_screening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
