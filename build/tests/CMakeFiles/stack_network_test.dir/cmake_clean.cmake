file(REMOVE_RECURSE
  "CMakeFiles/stack_network_test.dir/stack_network_test.cc.o"
  "CMakeFiles/stack_network_test.dir/stack_network_test.cc.o.d"
  "stack_network_test"
  "stack_network_test.pdb"
  "stack_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
