file(REMOVE_RECURSE
  "CMakeFiles/stack_scenarios_test.dir/stack_scenarios_test.cc.o"
  "CMakeFiles/stack_scenarios_test.dir/stack_scenarios_test.cc.o.d"
  "stack_scenarios_test"
  "stack_scenarios_test.pdb"
  "stack_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
