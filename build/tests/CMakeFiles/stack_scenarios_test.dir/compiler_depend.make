# Empty compiler generated dependencies file for stack_scenarios_test.
# This may be replaced when dependencies are built.
