file(REMOVE_RECURSE
  "CMakeFiles/stack_s1_s2_test.dir/stack_s1_s2_test.cc.o"
  "CMakeFiles/stack_s1_s2_test.dir/stack_s1_s2_test.cc.o.d"
  "stack_s1_s2_test"
  "stack_s1_s2_test.pdb"
  "stack_s1_s2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_s1_s2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
