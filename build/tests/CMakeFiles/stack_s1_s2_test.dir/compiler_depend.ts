# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stack_s1_s2_test.
