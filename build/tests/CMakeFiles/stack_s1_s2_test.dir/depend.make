# Empty dependencies file for stack_s1_s2_test.
# This may be replaced when dependencies are built.
