file(REMOVE_RECURSE
  "CMakeFiles/mck_dot_test.dir/mck_dot_test.cc.o"
  "CMakeFiles/mck_dot_test.dir/mck_dot_test.cc.o.d"
  "mck_dot_test"
  "mck_dot_test.pdb"
  "mck_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mck_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
