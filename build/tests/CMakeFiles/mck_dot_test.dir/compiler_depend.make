# Empty compiler generated dependencies file for mck_dot_test.
# This may be replaced when dependencies are built.
