file(REMOVE_RECURSE
  "CMakeFiles/prop_stats_test.dir/prop_stats_test.cc.o"
  "CMakeFiles/prop_stats_test.dir/prop_stats_test.cc.o.d"
  "prop_stats_test"
  "prop_stats_test.pdb"
  "prop_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
