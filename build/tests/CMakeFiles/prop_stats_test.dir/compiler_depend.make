# Empty compiler generated dependencies file for prop_stats_test.
# This may be replaced when dependencies are built.
