file(REMOVE_RECURSE
  "CMakeFiles/mck_bitstate_test.dir/mck_bitstate_test.cc.o"
  "CMakeFiles/mck_bitstate_test.dir/mck_bitstate_test.cc.o.d"
  "mck_bitstate_test"
  "mck_bitstate_test.pdb"
  "mck_bitstate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mck_bitstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
