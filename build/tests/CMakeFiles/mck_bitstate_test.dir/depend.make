# Empty dependencies file for mck_bitstate_test.
# This may be replaced when dependencies are built.
