# Empty dependencies file for stack_speedtest_test.
# This may be replaced when dependencies are built.
