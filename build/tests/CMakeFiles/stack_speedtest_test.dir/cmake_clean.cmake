file(REMOVE_RECURSE
  "CMakeFiles/stack_speedtest_test.dir/stack_speedtest_test.cc.o"
  "CMakeFiles/stack_speedtest_test.dir/stack_speedtest_test.cc.o.d"
  "stack_speedtest_test"
  "stack_speedtest_test.pdb"
  "stack_speedtest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_speedtest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
