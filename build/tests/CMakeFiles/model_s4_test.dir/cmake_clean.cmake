file(REMOVE_RECURSE
  "CMakeFiles/model_s4_test.dir/model_s4_test.cc.o"
  "CMakeFiles/model_s4_test.dir/model_s4_test.cc.o.d"
  "model_s4_test"
  "model_s4_test.pdb"
  "model_s4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_s4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
