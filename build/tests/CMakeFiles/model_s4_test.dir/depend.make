# Empty dependencies file for model_s4_test.
# This may be replaced when dependencies are built.
