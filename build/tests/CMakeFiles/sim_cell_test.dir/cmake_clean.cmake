file(REMOVE_RECURSE
  "CMakeFiles/sim_cell_test.dir/sim_cell_test.cc.o"
  "CMakeFiles/sim_cell_test.dir/sim_cell_test.cc.o.d"
  "sim_cell_test"
  "sim_cell_test.pdb"
  "sim_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
