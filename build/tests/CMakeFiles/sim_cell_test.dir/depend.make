# Empty dependencies file for sim_cell_test.
# This may be replaced when dependencies are built.
