file(REMOVE_RECURSE
  "CMakeFiles/mck_random_walk_test.dir/mck_random_walk_test.cc.o"
  "CMakeFiles/mck_random_walk_test.dir/mck_random_walk_test.cc.o.d"
  "mck_random_walk_test"
  "mck_random_walk_test.pdb"
  "mck_random_walk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mck_random_walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
