# Empty compiler generated dependencies file for model_s1_test.
# This may be replaced when dependencies are built.
