file(REMOVE_RECURSE
  "CMakeFiles/cnv_core.dir/findings.cc.o"
  "CMakeFiles/cnv_core.dir/findings.cc.o.d"
  "CMakeFiles/cnv_core.dir/report.cc.o"
  "CMakeFiles/cnv_core.dir/report.cc.o.d"
  "CMakeFiles/cnv_core.dir/screening.cc.o"
  "CMakeFiles/cnv_core.dir/screening.cc.o.d"
  "CMakeFiles/cnv_core.dir/user_study.cc.o"
  "CMakeFiles/cnv_core.dir/user_study.cc.o.d"
  "CMakeFiles/cnv_core.dir/validation.cc.o"
  "CMakeFiles/cnv_core.dir/validation.cc.o.d"
  "libcnv_core.a"
  "libcnv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
