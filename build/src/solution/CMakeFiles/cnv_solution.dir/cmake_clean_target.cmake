file(REMOVE_RECURSE
  "libcnv_solution.a"
)
