# Empty dependencies file for cnv_solution.
# This may be replaced when dependencies are built.
