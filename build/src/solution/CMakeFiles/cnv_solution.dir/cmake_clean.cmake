file(REMOVE_RECURSE
  "CMakeFiles/cnv_solution.dir/shim.cc.o"
  "CMakeFiles/cnv_solution.dir/shim.cc.o.d"
  "libcnv_solution.a"
  "libcnv_solution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_solution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
