file(REMOVE_RECURSE
  "libcnv_sim.a"
)
