file(REMOVE_RECURSE
  "CMakeFiles/cnv_sim.dir/cell.cc.o"
  "CMakeFiles/cnv_sim.dir/cell.cc.o.d"
  "CMakeFiles/cnv_sim.dir/channel.cc.o"
  "CMakeFiles/cnv_sim.dir/channel.cc.o.d"
  "CMakeFiles/cnv_sim.dir/link.cc.o"
  "CMakeFiles/cnv_sim.dir/link.cc.o.d"
  "CMakeFiles/cnv_sim.dir/radio.cc.o"
  "CMakeFiles/cnv_sim.dir/radio.cc.o.d"
  "CMakeFiles/cnv_sim.dir/simulator.cc.o"
  "CMakeFiles/cnv_sim.dir/simulator.cc.o.d"
  "libcnv_sim.a"
  "libcnv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
