# Empty compiler generated dependencies file for cnv_sim.
# This may be replaced when dependencies are built.
