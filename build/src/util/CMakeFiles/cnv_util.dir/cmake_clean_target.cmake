file(REMOVE_RECURSE
  "libcnv_util.a"
)
