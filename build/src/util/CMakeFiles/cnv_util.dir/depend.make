# Empty dependencies file for cnv_util.
# This may be replaced when dependencies are built.
