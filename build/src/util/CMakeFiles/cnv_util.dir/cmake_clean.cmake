file(REMOVE_RECURSE
  "CMakeFiles/cnv_util.dir/log.cc.o"
  "CMakeFiles/cnv_util.dir/log.cc.o.d"
  "CMakeFiles/cnv_util.dir/rng.cc.o"
  "CMakeFiles/cnv_util.dir/rng.cc.o.d"
  "CMakeFiles/cnv_util.dir/stats.cc.o"
  "CMakeFiles/cnv_util.dir/stats.cc.o.d"
  "CMakeFiles/cnv_util.dir/strings.cc.o"
  "CMakeFiles/cnv_util.dir/strings.cc.o.d"
  "libcnv_util.a"
  "libcnv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
