# Empty dependencies file for cnv_nas.
# This may be replaced when dependencies are built.
