file(REMOVE_RECURSE
  "CMakeFiles/cnv_nas.dir/causes.cc.o"
  "CMakeFiles/cnv_nas.dir/causes.cc.o.d"
  "CMakeFiles/cnv_nas.dir/context.cc.o"
  "CMakeFiles/cnv_nas.dir/context.cc.o.d"
  "CMakeFiles/cnv_nas.dir/ids.cc.o"
  "CMakeFiles/cnv_nas.dir/ids.cc.o.d"
  "CMakeFiles/cnv_nas.dir/messages.cc.o"
  "CMakeFiles/cnv_nas.dir/messages.cc.o.d"
  "libcnv_nas.a"
  "libcnv_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
