file(REMOVE_RECURSE
  "libcnv_nas.a"
)
