
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/causes.cc" "src/nas/CMakeFiles/cnv_nas.dir/causes.cc.o" "gcc" "src/nas/CMakeFiles/cnv_nas.dir/causes.cc.o.d"
  "/root/repo/src/nas/context.cc" "src/nas/CMakeFiles/cnv_nas.dir/context.cc.o" "gcc" "src/nas/CMakeFiles/cnv_nas.dir/context.cc.o.d"
  "/root/repo/src/nas/ids.cc" "src/nas/CMakeFiles/cnv_nas.dir/ids.cc.o" "gcc" "src/nas/CMakeFiles/cnv_nas.dir/ids.cc.o.d"
  "/root/repo/src/nas/messages.cc" "src/nas/CMakeFiles/cnv_nas.dir/messages.cc.o" "gcc" "src/nas/CMakeFiles/cnv_nas.dir/messages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mck/CMakeFiles/cnv_mck.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
