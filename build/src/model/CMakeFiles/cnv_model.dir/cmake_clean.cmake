file(REMOVE_RECURSE
  "CMakeFiles/cnv_model.dir/s1_model.cc.o"
  "CMakeFiles/cnv_model.dir/s1_model.cc.o.d"
  "CMakeFiles/cnv_model.dir/s2_model.cc.o"
  "CMakeFiles/cnv_model.dir/s2_model.cc.o.d"
  "CMakeFiles/cnv_model.dir/s3_model.cc.o"
  "CMakeFiles/cnv_model.dir/s3_model.cc.o.d"
  "CMakeFiles/cnv_model.dir/s4_model.cc.o"
  "CMakeFiles/cnv_model.dir/s4_model.cc.o.d"
  "CMakeFiles/cnv_model.dir/vocab.cc.o"
  "CMakeFiles/cnv_model.dir/vocab.cc.o.d"
  "libcnv_model.a"
  "libcnv_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
