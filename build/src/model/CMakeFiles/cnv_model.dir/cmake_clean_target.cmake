file(REMOVE_RECURSE
  "libcnv_model.a"
)
