# Empty compiler generated dependencies file for cnv_model.
# This may be replaced when dependencies are built.
