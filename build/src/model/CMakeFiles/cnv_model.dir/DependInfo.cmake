
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/s1_model.cc" "src/model/CMakeFiles/cnv_model.dir/s1_model.cc.o" "gcc" "src/model/CMakeFiles/cnv_model.dir/s1_model.cc.o.d"
  "/root/repo/src/model/s2_model.cc" "src/model/CMakeFiles/cnv_model.dir/s2_model.cc.o" "gcc" "src/model/CMakeFiles/cnv_model.dir/s2_model.cc.o.d"
  "/root/repo/src/model/s3_model.cc" "src/model/CMakeFiles/cnv_model.dir/s3_model.cc.o" "gcc" "src/model/CMakeFiles/cnv_model.dir/s3_model.cc.o.d"
  "/root/repo/src/model/s4_model.cc" "src/model/CMakeFiles/cnv_model.dir/s4_model.cc.o" "gcc" "src/model/CMakeFiles/cnv_model.dir/s4_model.cc.o.d"
  "/root/repo/src/model/vocab.cc" "src/model/CMakeFiles/cnv_model.dir/vocab.cc.o" "gcc" "src/model/CMakeFiles/cnv_model.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mck/CMakeFiles/cnv_mck.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/cnv_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
