file(REMOVE_RECURSE
  "libcnv_trace.a"
)
