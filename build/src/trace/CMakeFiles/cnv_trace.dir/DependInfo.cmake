
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analyze.cc" "src/trace/CMakeFiles/cnv_trace.dir/analyze.cc.o" "gcc" "src/trace/CMakeFiles/cnv_trace.dir/analyze.cc.o.d"
  "/root/repo/src/trace/collector.cc" "src/trace/CMakeFiles/cnv_trace.dir/collector.cc.o" "gcc" "src/trace/CMakeFiles/cnv_trace.dir/collector.cc.o.d"
  "/root/repo/src/trace/matcher.cc" "src/trace/CMakeFiles/cnv_trace.dir/matcher.cc.o" "gcc" "src/trace/CMakeFiles/cnv_trace.dir/matcher.cc.o.d"
  "/root/repo/src/trace/qxdm.cc" "src/trace/CMakeFiles/cnv_trace.dir/qxdm.cc.o" "gcc" "src/trace/CMakeFiles/cnv_trace.dir/qxdm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cnv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nas/CMakeFiles/cnv_nas.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cnv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mck/CMakeFiles/cnv_mck.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
