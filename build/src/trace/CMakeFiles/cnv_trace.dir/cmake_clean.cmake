file(REMOVE_RECURSE
  "CMakeFiles/cnv_trace.dir/analyze.cc.o"
  "CMakeFiles/cnv_trace.dir/analyze.cc.o.d"
  "CMakeFiles/cnv_trace.dir/collector.cc.o"
  "CMakeFiles/cnv_trace.dir/collector.cc.o.d"
  "CMakeFiles/cnv_trace.dir/matcher.cc.o"
  "CMakeFiles/cnv_trace.dir/matcher.cc.o.d"
  "CMakeFiles/cnv_trace.dir/qxdm.cc.o"
  "CMakeFiles/cnv_trace.dir/qxdm.cc.o.d"
  "libcnv_trace.a"
  "libcnv_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
