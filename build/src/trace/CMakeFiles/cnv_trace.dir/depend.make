# Empty dependencies file for cnv_trace.
# This may be replaced when dependencies are built.
