file(REMOVE_RECURSE
  "libcnv_stack.a"
)
