# Empty dependencies file for cnv_stack.
# This may be replaced when dependencies are built.
