file(REMOVE_RECURSE
  "CMakeFiles/cnv_stack.dir/carrier.cc.o"
  "CMakeFiles/cnv_stack.dir/carrier.cc.o.d"
  "CMakeFiles/cnv_stack.dir/hss.cc.o"
  "CMakeFiles/cnv_stack.dir/hss.cc.o.d"
  "CMakeFiles/cnv_stack.dir/network.cc.o"
  "CMakeFiles/cnv_stack.dir/network.cc.o.d"
  "CMakeFiles/cnv_stack.dir/scenarios.cc.o"
  "CMakeFiles/cnv_stack.dir/scenarios.cc.o.d"
  "CMakeFiles/cnv_stack.dir/speedtest.cc.o"
  "CMakeFiles/cnv_stack.dir/speedtest.cc.o.d"
  "CMakeFiles/cnv_stack.dir/testbed.cc.o"
  "CMakeFiles/cnv_stack.dir/testbed.cc.o.d"
  "CMakeFiles/cnv_stack.dir/ue.cc.o"
  "CMakeFiles/cnv_stack.dir/ue.cc.o.d"
  "libcnv_stack.a"
  "libcnv_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
