# Empty compiler generated dependencies file for cnv_mck.
# This may be replaced when dependencies are built.
