file(REMOVE_RECURSE
  "libcnv_mck.a"
)
