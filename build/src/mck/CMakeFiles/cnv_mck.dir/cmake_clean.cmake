file(REMOVE_RECURSE
  "CMakeFiles/cnv_mck.dir/toy_models.cc.o"
  "CMakeFiles/cnv_mck.dir/toy_models.cc.o.d"
  "libcnv_mck.a"
  "libcnv_mck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnv_mck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
