file(REMOVE_RECURSE
  "../examples/diagnose"
  "../examples/diagnose.pdb"
  "CMakeFiles/diagnose.dir/diagnose.cpp.o"
  "CMakeFiles/diagnose.dir/diagnose.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
