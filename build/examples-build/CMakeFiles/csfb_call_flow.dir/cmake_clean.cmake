file(REMOVE_RECURSE
  "../examples/csfb_call_flow"
  "../examples/csfb_call_flow.pdb"
  "CMakeFiles/csfb_call_flow.dir/csfb_call_flow.cpp.o"
  "CMakeFiles/csfb_call_flow.dir/csfb_call_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csfb_call_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
