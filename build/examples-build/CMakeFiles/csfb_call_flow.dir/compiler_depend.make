# Empty compiler generated dependencies file for csfb_call_flow.
# This may be replaced when dependencies are built.
