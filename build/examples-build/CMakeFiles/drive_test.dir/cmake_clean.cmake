file(REMOVE_RECURSE
  "../examples/drive_test"
  "../examples/drive_test.pdb"
  "CMakeFiles/drive_test.dir/drive_test.cpp.o"
  "CMakeFiles/drive_test.dir/drive_test.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
