// Quickstart: the two halves of the CNetVerifier API in ~100 lines.
//
//  1. Screening — write a protocol-interaction model (here: a tiny custom
//     two-message handshake over a lossy radio), state the property a user
//     cares about, and let the explorer produce a counterexample.
//  2. Validation — run a scenario on the simulated carrier testbed and read
//     the modem-style trace the device collected.
//
// Build and run:  ./quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "mck/explorer.h"
#include "mck/hash.h"
#include "stack/testbed.h"
#include "trace/qxdm.h"

using namespace cnv;

// --- 1. A custom screening model -----------------------------------------
// A device sends REQ and expects ACK; the radio may drop either; the device
// gives up after two tries. Property: "the device never ends up giving up"
// — which a lossy radio obviously violates, and the explorer shows how.
struct HandshakeModel {
  struct State {
    bool req_in_flight = false;
    bool ack_in_flight = false;
    bool served = false;
    bool gave_up = false;
    int sends = 0;
    bool operator==(const State&) const = default;
  };
  enum class Kind { kSend, kDropReq, kDeliverReq, kDropAck, kDeliverAck, kGiveUp };
  struct Action {
    Kind kind = Kind::kSend;
  };

  State initial() const { return {}; }

  std::vector<Action> enabled(const State& s) const {
    std::vector<Action> out;
    if (s.served || s.gave_up) return out;
    if (!s.req_in_flight && !s.ack_in_flight && s.sends < 2) {
      out.push_back({Kind::kSend});
    }
    if (!s.req_in_flight && !s.ack_in_flight && s.sends >= 2) {
      out.push_back({Kind::kGiveUp});
    }
    if (s.req_in_flight) {
      out.push_back({Kind::kDropReq});
      out.push_back({Kind::kDeliverReq});
    }
    if (s.ack_in_flight) {
      out.push_back({Kind::kDropAck});
      out.push_back({Kind::kDeliverAck});
    }
    return out;
  }

  State apply(const State& s, const Action& a) const {
    State n = s;
    switch (a.kind) {
      case Kind::kSend:      n.req_in_flight = true; ++n.sends; break;
      case Kind::kDropReq:   n.req_in_flight = false; break;
      case Kind::kDeliverReq: n.req_in_flight = false; n.ack_in_flight = true; break;
      case Kind::kDropAck:   n.ack_in_flight = false; break;
      case Kind::kDeliverAck: n.ack_in_flight = false; n.served = true; break;
      case Kind::kGiveUp:    n.gave_up = true; break;
    }
    return n;
  }

  std::string describe(const Action& a) const {
    switch (a.kind) {
      case Kind::kSend:       return "device sends REQ";
      case Kind::kDropReq:    return "radio drops REQ";
      case Kind::kDeliverReq: return "network gets REQ, sends ACK";
      case Kind::kDropAck:    return "radio drops ACK";
      case Kind::kDeliverAck: return "device gets ACK (served)";
      case Kind::kGiveUp:     return "device gives up";
    }
    return "?";
  }
};

std::size_t HashValue(const HandshakeModel::State& s) {
  return mck::Hasher()
      .Mix(s.req_in_flight).Mix(s.ack_in_flight)
      .Mix(s.served).Mix(s.gave_up).Mix(s.sends)
      .Digest();
}

int main() {
  std::printf("--- 1. screening a custom model ---\n");
  HandshakeModel model;
  mck::PropertySet<HandshakeModel::State> props = {
      {"Service_OK",
       [](const HandshakeModel::State& s) { return !s.gave_up; },
       "the device is always eventually served"}};
  const auto result = mck::Explore(model, props);
  std::printf("explored %llu states, %llu transitions\n",
              (unsigned long long)result.stats.states_visited,
              (unsigned long long)result.stats.transitions);
  if (const auto* v = result.FindViolation("Service_OK")) {
    std::printf("%s\n", mck::FormatTrace(model, *v).c_str());
  }

  std::printf("--- 2. validating on the simulated testbed ---\n");
  stack::Testbed tb({});  // defaults: carrier OP-I, no solutions
  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  std::printf("device attached: %s, EPS bearer: %s\n\n",
              tb.ue().emm_state() == stack::UeDevice::EmmState::kRegistered
                  ? "yes" : "no",
              tb.ue().eps_bearer_active() ? "active" : "inactive");
  std::printf("collected modem trace:\n%s",
              trace::FormatLog(tb.traces().records()).c_str());
  return 0;
}
