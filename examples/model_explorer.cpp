// Model-exploration workbench: the checker-side tooling on one model.
// Exhausts the S3 screening model, prints the MM_OK counterexample, runs
// the recoverability analysis (is the stuck state permanent?), and writes a
// Graphviz rendering of the reachable state graph with stuck states
// highlighted (render with: dot -Tsvg s3_model.dot -o s3_model.svg).
//
// Build and run:  ./model_explorer [output.dot] [--jobs N]
//                                  [--checkpoint-dir DIR]
//                                  [--checkpoint-every N] [--resume]
//   --jobs N  explore on N workers (default 0 = hardware concurrency,
//             1 = serial). Stats and counterexamples are identical at any N.
//   --checkpoint-dir DIR
//             write checksummed exploration snapshots (intern table, arena,
//             frontier, stats) under DIR at wave boundaries; with --resume,
//             exploration restarts from the newest good snapshot and the
//             result — violations, traces, stats — is byte-identical to an
//             uninterrupted run, at any --jobs.
//   --checkpoint-every N
//             snapshot only after >= N newly discovered states since the
//             last snapshot (default 0 = every wave boundary)
#include <cstdio>
#include <fstream>
#include <memory>

#include "ckpt/explore_ckpt.h"
#include "mck/dot.h"
#include "mck/parallel_explorer.h"
#include "mck/reachability.h"
#include "model/s3_model.h"
#include "util/args.h"

using namespace cnv;

int main(int argc, char** argv) {
  args::ArgParser parser(
      argc, argv,
      "usage: model_explorer [output.dot] [--jobs N] [--checkpoint-dir DIR]\n"
      "                      [--checkpoint-every N] [--resume]");
  int jobs = 0;
  parser.IntValue("--jobs", &jobs, 0);
  std::string checkpoint_dir;
  parser.StrValue("--checkpoint-dir", &checkpoint_dir);
  std::uint64_t checkpoint_every = 0;
  parser.U64Value("--checkpoint-every", &checkpoint_every);
  const bool resume = parser.Flag("--resume");
  const auto positional = parser.Finish(1);
  const std::string out_path =
      positional.empty() ? "s3_model.dot" : positional[0];
  if (resume && checkpoint_dir.empty()) {
    parser.Fail("--resume requires --checkpoint-dir");
  }

  model::S3Model m;  // cell-reselection policy: the S3 configuration

  // 1. Exhaustive screening on the worker pool, optionally checkpointed.
  mck::ParallelExploreOptions opt_explore;
  opt_explore.jobs = jobs;
  std::unique_ptr<ckpt::ExploreCheckpointer<model::S3Model>> checkpointer;
  mck::ExploreSnapshot<model::S3Model> snap;
  const mck::SnapshotHooks<model::S3Model>* hooks = nullptr;
  if (!checkpoint_dir.empty()) {
    // The digest covers the model configuration, not --jobs: a snapshot
    // written serially resumes on any worker count.
    ckpt::DigestBuilder digest;
    digest.Add(std::string_view("model_explorer/s3/cell-reselection"));
    checkpointer = std::make_unique<ckpt::ExploreCheckpointer<model::S3Model>>(
        checkpoint_dir, "s3", digest.Finish(), checkpoint_every);
    bool resumed = false;
    if (resume) {
      const auto rs = checkpointer->TryLoad(&snap);
      resumed = rs.loaded;
      std::fprintf(stderr, "resume: primary=%s fallback=%s -> %s\n",
                   ckpt::ToString(rs.primary).c_str(),
                   ckpt::ToString(rs.fallback).c_str(),
                   rs.loaded
                       ? (rs.fell_back ? "resumed from last good snapshot"
                                       : "resumed")
                       : "starting fresh");
    }
    hooks = checkpointer->hooks(resumed ? &snap : nullptr);
  }
  const auto result =
      mck::ParallelExplore(m, m.Properties(), opt_explore, nullptr, hooks);
  if (checkpointer != nullptr) {
    std::fprintf(stderr, "checkpoints written: %llu\n",
                 static_cast<unsigned long long>(
                     checkpointer->snapshots_written()));
  }
  std::printf("explored %llu states, %llu transitions (%d job(s), %llu waves)\n",
              (unsigned long long)result.stats.states_visited,
              (unsigned long long)result.stats.transitions, result.par.jobs,
              (unsigned long long)result.par.waves);
  std::printf(
      "wall: %.3fs  throughput: %.0f states/s  frontier peak: %llu  "
      "hash occupancy: %.2f  utilization: %.2f\n",
      result.stats.elapsed_wall_seconds, result.stats.StatesPerSecond(),
      (unsigned long long)result.stats.frontier_peak,
      result.stats.hash_occupancy, result.par.utilization);
  if (const auto* v = result.FindViolation(model::kMmOk)) {
    std::printf("\n%s\n", mck::FormatTrace(m, *v).c_str());
  } else {
    std::printf("MM_OK holds\n");
  }

  // 2. Recoverability: the stuck state is session-bounded, not permanent.
  const auto rec = mck::CheckRecoverable<model::S3Model>(
      m, [&m](const model::S3Model::State& s) { return m.StuckIn3g(s); },
      [](const model::S3Model::State& s) {
        return s.serving == model::S3Model::Sys::k4G;
      });
  std::printf("stuck state recoverable on some path: %s\n",
              rec.holds ? "yes (ending the data session frees the device)"
                        : "NO - permanent dead end");

  // 3. Graphviz export with the stuck states highlighted.
  mck::DotOptions<model::S3Model::State> opt;
  opt.label = [](const model::S3Model::State& s) {
    std::string l = s.serving == model::S3Model::Sys::k4G ? "4G" : "3G";
    l += " " + model::ToString(s.rrc3g);
    l += s.call == model::S3Model::Call::kActive   ? " call"
         : s.call == model::S3Model::Call::kEnded ? " ended"
                                                  : "";
    if (s.data != model::DataRate::kNone) {
      l += " +" + model::ToString(s.data);
    }
    return l;
  };
  opt.highlight = [&m](const model::S3Model::State& s) {
    return m.StuckIn3g(s);
  };
  const std::string dot = mck::ExportDot(m, opt);
  std::ofstream f(out_path);
  f << dot;
  std::printf("wrote %zu-byte state graph to %s (%s)\n", dot.size(),
              out_path.c_str(), "stuck states filled red");
  return 0;
}
