// Model-exploration workbench: the checker-side tooling on one model.
// Exhausts the S3 screening model, prints the MM_OK counterexample, runs
// the recoverability analysis (is the stuck state permanent?), and writes a
// Graphviz rendering of the reachable state graph with stuck states
// highlighted (render with: dot -Tsvg s3_model.dot -o s3_model.svg).
//
// Build and run:  ./model_explorer [output.dot] [--jobs N]
//   --jobs N  explore on N workers (default 0 = hardware concurrency,
//             1 = serial). Stats and counterexamples are identical at any N.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "mck/dot.h"
#include "mck/parallel_explorer.h"
#include "mck/reachability.h"
#include "model/s3_model.h"

using namespace cnv;

int main(int argc, char** argv) {
  std::string out_path = "s3_model.dot";
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--jobs needs a worker count\n");
        return 2;
      }
      jobs = std::atoi(argv[++i]);
    } else {
      out_path = argv[i];
    }
  }
  model::S3Model m;  // cell-reselection policy: the S3 configuration

  // 1. Exhaustive screening on the worker pool.
  mck::ParallelExploreOptions opt_explore;
  opt_explore.jobs = jobs;
  const auto result = mck::ParallelExplore(m, m.Properties(), opt_explore);
  std::printf("explored %llu states, %llu transitions (%d job(s), %llu waves)\n",
              (unsigned long long)result.stats.states_visited,
              (unsigned long long)result.stats.transitions, result.par.jobs,
              (unsigned long long)result.par.waves);
  std::printf(
      "wall: %.3fs  throughput: %.0f states/s  frontier peak: %llu  "
      "hash occupancy: %.2f  utilization: %.2f\n",
      result.stats.elapsed_wall_seconds, result.stats.StatesPerSecond(),
      (unsigned long long)result.stats.frontier_peak,
      result.stats.hash_occupancy, result.par.utilization);
  if (const auto* v = result.FindViolation(model::kMmOk)) {
    std::printf("\n%s\n", mck::FormatTrace(m, *v).c_str());
  } else {
    std::printf("MM_OK holds\n");
  }

  // 2. Recoverability: the stuck state is session-bounded, not permanent.
  const auto rec = mck::CheckRecoverable<model::S3Model>(
      m, [&m](const model::S3Model::State& s) { return m.StuckIn3g(s); },
      [](const model::S3Model::State& s) {
        return s.serving == model::S3Model::Sys::k4G;
      });
  std::printf("stuck state recoverable on some path: %s\n",
              rec.holds ? "yes (ending the data session frees the device)"
                        : "NO - permanent dead end");

  // 3. Graphviz export with the stuck states highlighted.
  mck::DotOptions<model::S3Model::State> opt;
  opt.label = [](const model::S3Model::State& s) {
    std::string l = s.serving == model::S3Model::Sys::k4G ? "4G" : "3G";
    l += " " + model::ToString(s.rrc3g);
    l += s.call == model::S3Model::Call::kActive   ? " call"
         : s.call == model::S3Model::Call::kEnded ? " ended"
                                                  : "";
    if (s.data != model::DataRate::kNone) {
      l += " +" + model::ToString(s.data);
    }
    return l;
  };
  opt.highlight = [&m](const model::S3Model::State& s) {
    return m.StuckIn3g(s);
  };
  const std::string dot = mck::ExportDot(m, opt);
  std::ofstream f(out_path);
  f << dot;
  std::printf("wrote %zu-byte state graph to %s (%s)\n", dot.size(),
              out_path.c_str(), "stuck states filled red");
  return 0;
}
