// Model-exploration workbench: the checker-side tooling on one model.
// Default --model s3: exhausts the S3 screening model, prints the MM_OK
// counterexample, runs the recoverability analysis (is the stuck state
// permanent?), and writes a Graphviz rendering of the reachable state graph
// with stuck states highlighted (render with:
// dot -Tsvg s3_model.dot -o s3_model.svg). --model combined: exhausts the
// combined CSFB+LU+PDP model over N symmetric UEs and reports every
// property verdict with its counterexample.
//
// Build and run:  ./model_explorer [output.dot] [--model s3|combined]
//                                  [--ues N] [--jobs N]
//                                  [--por] [--symmetry] [--spill-dir DIR]
//                                  [--checkpoint-dir DIR]
//                                  [--checkpoint-every N] [--resume]
//   --jobs N  explore on N workers (default 0 = hardware concurrency,
//             1 = serial). Stats and counterexamples are identical at any N.
//   --por / --symmetry
//             enable partial-order and/or symmetry reduction. Sound for the
//             checked properties: the same violations are found, from a
//             smaller state count (reported as the reduction factor).
//   --spill-dir DIR
//             spill frontier candidate runs to checksummed files under DIR
//             between the expand and insert phases instead of holding them
//             in RAM; a damaged/missing run is recomputed deterministically.
//   --checkpoint-dir DIR
//             write checksummed exploration snapshots (intern table, arena,
//             frontier, stats) under DIR at wave boundaries; with --resume,
//             exploration restarts from the newest good snapshot and the
//             result — violations, traces, stats — is byte-identical to an
//             uninterrupted run, at any --jobs.
//   --checkpoint-every N
//             snapshot only after >= N newly discovered states since the
//             last snapshot (default 0 = every wave boundary)
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "ckpt/explore_ckpt.h"
#include "mck/dot.h"
#include "mck/parallel_explorer.h"
#include "mck/reachability.h"
#include "model/combined_model.h"
#include "model/s3_model.h"
#include "util/args.h"

using namespace cnv;

namespace {

// Explores `m` on the pool, optionally checkpointed under `checkpoint_dir`.
// The config digest covers the model tag and the reduction flags — a
// snapshot of a reduced run must not resume an unreduced one (the visited
// sets differ) — but not --jobs: a snapshot written serially resumes on any
// worker count.
template <typename M>
mck::ParallelExploreResult<M> RunExplore(
    const M& m, const mck::PropertySet<typename M::State>& props,
    const mck::ParallelExploreOptions& opt_explore, const std::string& tag,
    const std::string& checkpoint_dir, std::uint64_t checkpoint_every,
    bool resume) {
  std::unique_ptr<ckpt::ExploreCheckpointer<M>> checkpointer;
  mck::ExploreSnapshot<M> snap;
  const mck::SnapshotHooks<M>* hooks = nullptr;
  if (!checkpoint_dir.empty()) {
    ckpt::DigestBuilder digest;
    digest.Add(std::string_view("model_explorer/"))
        .Add(std::string_view(tag))
        .Add(opt_explore.base.reduction.por)
        .Add(opt_explore.base.reduction.symmetry);
    checkpointer = std::make_unique<ckpt::ExploreCheckpointer<M>>(
        checkpoint_dir, tag, digest.Finish(), checkpoint_every);
    bool resumed = false;
    if (resume) {
      const auto rs = checkpointer->TryLoad(&snap);
      resumed = rs.loaded;
      std::fprintf(stderr, "resume: primary=%s fallback=%s -> %s\n",
                   ckpt::ToString(rs.primary).c_str(),
                   ckpt::ToString(rs.fallback).c_str(),
                   rs.loaded
                       ? (rs.fell_back ? "resumed from last good snapshot"
                                       : "resumed")
                       : "starting fresh");
    }
    hooks = checkpointer->hooks(resumed ? &snap : nullptr);
  }
  const auto result = mck::ParallelExplore(m, props, opt_explore, nullptr,
                                           hooks);
  if (checkpointer != nullptr) {
    std::fprintf(stderr, "checkpoints written: %llu\n",
                 static_cast<unsigned long long>(
                     checkpointer->snapshots_written()));
  }
  return result;
}

template <typename M>
void PrintStats(const mck::ParallelExploreResult<M>& result) {
  std::printf(
      "explored %llu states, %llu transitions (%d job(s), %llu waves)\n",
      (unsigned long long)result.stats.states_visited,
      (unsigned long long)result.stats.transitions, result.par.jobs,
      (unsigned long long)result.par.waves);
  std::printf(
      "wall: %.3fs  throughput: %.0f states/s  frontier peak: %llu  "
      "hash occupancy: %.2f  utilization: %.2f\n",
      result.stats.elapsed_wall_seconds, result.stats.StatesPerSecond(),
      (unsigned long long)result.stats.frontier_peak,
      result.stats.hash_occupancy, result.par.utilization);
  if (result.stats.represented_states > result.stats.states_visited) {
    std::printf(
        "reduction: %llu representatives stand for %llu concrete states "
        "(factor %.1fx); %llu ample expansions\n",
        (unsigned long long)result.stats.states_visited,
        (unsigned long long)result.stats.represented_states,
        static_cast<double>(result.stats.represented_states) /
            static_cast<double>(result.stats.states_visited),
        (unsigned long long)result.stats.ample_states);
  } else if (result.stats.ample_states > 0) {
    std::printf("reduction: %llu ample (partial-order) expansions\n",
                (unsigned long long)result.stats.ample_states);
  }
  if (result.par.spill_runs > 0) {
    std::printf("spill: %llu frontier runs written, %llu recovered\n",
                (unsigned long long)result.par.spill_runs,
                (unsigned long long)result.par.spill_recovered);
  }
}

}  // namespace

int main(int argc, char** argv) {
  args::ArgParser parser(
      argc, argv,
      "usage: model_explorer [output.dot] [--model s3|combined] [--ues N]\n"
      "                      [--jobs N] [--por] [--symmetry]\n"
      "                      [--spill-dir DIR] [--checkpoint-dir DIR]\n"
      "                      [--checkpoint-every N] [--resume]");
  std::string model_name = "s3";
  parser.StrValue("--model", &model_name);
  int ues = 2;
  parser.IntValue("--ues", &ues, 2);
  int jobs = 0;
  parser.IntValue("--jobs", &jobs, 0);
  const bool por = parser.Flag("--por");
  const bool symmetry = parser.Flag("--symmetry");
  std::string spill_dir;
  parser.StrValue("--spill-dir", &spill_dir);
  std::string checkpoint_dir;
  parser.StrValue("--checkpoint-dir", &checkpoint_dir);
  std::uint64_t checkpoint_every = 0;
  parser.U64Value("--checkpoint-every", &checkpoint_every);
  const bool resume = parser.Flag("--resume");
  const auto positional = parser.Finish(1);
  const std::string out_path =
      positional.empty() ? "s3_model.dot" : positional[0];
  if (resume && checkpoint_dir.empty()) {
    parser.Fail("--resume requires --checkpoint-dir");
  }
  if (model_name != "s3" && model_name != "combined") {
    parser.Fail("--model must be s3 or combined");
  }

  mck::ParallelExploreOptions opt_explore;
  opt_explore.jobs = jobs;
  opt_explore.base.reduction.por = por;
  opt_explore.base.reduction.symmetry = symmetry;
  opt_explore.spill_dir = spill_dir;

  if (model_name == "combined") {
    // Combined CSFB + LU + PDP interaction model over N symmetric UEs
    // sharing one MSC: all three cross-protocol failures live in one
    // reachable graph. This is where the reductions earn their keep — UEs
    // are interchangeable, so --symmetry folds UE permutations into one
    // representative, and --por commutes their independent steps.
    model::CombinedModel::Config cfg;
    cfg.ues = ues;
    const model::CombinedModel m(cfg);
    const auto props = m.Properties();
    const auto result = RunExplore(m, props, opt_explore,
                                   "combined_u" + std::to_string(ues),
                                   checkpoint_dir, checkpoint_every, resume);
    PrintStats(result);
    for (const auto& p : props) {
      if (const auto* v = result.FindViolation(p.name)) {
        std::printf("\n%s VIOLATED\n%s\n", p.name.c_str(),
                    mck::FormatTrace(m, *v).c_str());
      } else {
        std::printf("%s holds\n", p.name.c_str());
      }
    }
    return 0;
  }

  model::S3Model m;  // cell-reselection policy: the S3 configuration

  // 1. Exhaustive screening on the worker pool, optionally checkpointed.
  const auto result = RunExplore(m, m.Properties(), opt_explore, "s3",
                                 checkpoint_dir, checkpoint_every, resume);
  PrintStats(result);
  if (const auto* v = result.FindViolation(model::kMmOk)) {
    std::printf("\n%s\n", mck::FormatTrace(m, *v).c_str());
  } else {
    std::printf("MM_OK holds\n");
  }

  // 2. Recoverability: the stuck state is session-bounded, not permanent.
  const auto rec = mck::CheckRecoverable<model::S3Model>(
      m, [&m](const model::S3Model::State& s) { return m.StuckIn3g(s); },
      [](const model::S3Model::State& s) {
        return s.serving == model::S3Model::Sys::k4G;
      });
  std::printf("stuck state recoverable on some path: %s\n",
              rec.holds ? "yes (ending the data session frees the device)"
                        : "NO - permanent dead end");

  // 3. Graphviz export with the stuck states highlighted.
  mck::DotOptions<model::S3Model::State> opt;
  opt.label = [](const model::S3Model::State& s) {
    std::string l = s.serving == model::S3Model::Sys::k4G ? "4G" : "3G";
    l += " " + model::ToString(s.rrc3g);
    l += s.call == model::S3Model::Call::kActive   ? " call"
         : s.call == model::S3Model::Call::kEnded ? " ended"
                                                  : "";
    if (s.data != model::DataRate::kNone) {
      l += " +" + model::ToString(s.data);
    }
    return l;
  };
  opt.highlight = [&m](const model::S3Model::State& s) {
    return m.StuckIn3g(s);
  };
  const std::string dot = mck::ExportDot(m, opt);
  std::ofstream f(out_path);
  f << dot;
  std::printf("wrote %zu-byte state graph to %s (%s)\n", dot.size(),
              out_path.c_str(), "stuck states filled red");
  return 0;
}
