// CSFB call walkthrough: a 4G user with an ongoing data session makes a
// voice call (which falls back to 3G), hangs up, and — on a carrier using
// inter-system cell reselection — gets stuck in 3G while the data session
// lasts (finding S3). The same scenario is then replayed with the §8
// CSFB-tag remedy enabled. The full modem trace is printed for both runs.
//
// Build and run:  ./csfb_call_flow
#include <cstdio>
#include <functional>

#include "stack/testbed.h"
#include "trace/qxdm.h"

using namespace cnv;

namespace {

void RunUntil(stack::Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) tb.Run(Millis(100));
}

void Scenario(bool with_fix) {
  std::printf("==============================================\n");
  std::printf("CSFB call on OP-II (cell reselection), %s\n",
              with_fix ? "WITH the CSFB-tag remedy" : "standard behaviour");
  std::printf("==============================================\n");

  stack::TestbedConfig cfg;
  cfg.profile = stack::OpII();
  cfg.profile.lu_failure_prob = 0;  // keep S6 out of this walkthrough
  cfg.solutions.csfb_tag = with_fix;
  stack::Testbed tb(cfg);

  tb.ue().PowerOn(nas::System::k4G);
  tb.Run(Seconds(3));
  tb.ue().StartDataSession(0.2);  // 200 kbps UDP, holds 3G DCH
  tb.Run(Seconds(1));

  tb.ue().Dial();  // CSFB: Extended Service Request -> fallback to 3G
  RunUntil(tb,
           [&] {
             return tb.ue().call_state() ==
                    stack::UeDevice::CallState::kActive;
           },
           Minutes(2));
  std::printf("call active on %s, 3G-RRC at %s\n",
              nas::ToString(tb.ue().serving()).c_str(),
              model::ToString(tb.ue().rrc3g()).c_str());

  tb.Run(Seconds(20));
  tb.ue().HangUp();
  tb.Run(Seconds(45));

  if (tb.ue().serving() == nas::System::k3G) {
    std::printf("45s after hangup: STILL IN 3G (stuck, S3). Stopping the "
                "data session...\n");
    tb.ue().StopDataSession();
    RunUntil(tb, [&] { return tb.ue().serving() == nas::System::k4G; },
             Minutes(2));
  }
  std::printf("back on %s; time in 3G after call end: %.1fs\n\n",
              nas::ToString(tb.ue().serving()).c_str(),
              tb.ue().stuck_in_3g_seconds().Count() > 0
                  ? tb.ue().stuck_in_3g_seconds().Values().back()
                  : -1.0);

  std::printf("trace:\n%s\n",
              trace::FormatLog(tb.traces().records()).c_str());
}

}  // namespace

int main() {
  Scenario(/*with_fix=*/false);
  Scenario(/*with_fix=*/true);
  return 0;
}
