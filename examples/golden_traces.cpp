// Regenerates the golden QXDM-formatted traces for the S1-S6 scenario
// catalog under a directory (one <stem>.log per scenario). The committed
// goldens live in tests/golden/ and are byte-compared by trace_golden_test;
// after an intentional behaviour change, regenerate them with
//
//   ./build/examples/golden_traces --out tests/golden
//
// and review the diff like any other code change.
#include <cstdio>
#include <filesystem>

#include "conf/golden.h"
#include "util/args.h"

using namespace cnv;

int main(int argc, char** argv) {
  args::ArgParser parser(argc, argv,
                         "usage: golden_traces --out DIR [--list]");
  std::string out_dir;
  const bool list_only = parser.Flag("--list");
  parser.StrValue("--out", &out_dir);
  parser.Finish(0);
  if (list_only) {
    for (const auto& g : conf::GoldenScenarios()) {
      std::printf("%s: %s\n", g.name.c_str(), g.description.c_str());
    }
    return 0;
  }
  if (out_dir.empty()) parser.Fail("--out DIR is required");

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  for (const auto& g : conf::GoldenScenarios()) {
    const std::string path = out_dir + "/" + g.name + ".log";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    const std::string log = g.generate();
    std::fwrite(log.data(), 1, log.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), log.size());
  }
  return 0;
}
