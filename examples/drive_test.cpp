// Drive test on Route-2 (28.3 miles, freeway + local): the phone camps on
// 3G, crosses location/routing areas as it moves, and the user places calls
// along the way. Demonstrates the measurement workflow of §6.1.2: collect
// the trace, then derive call setup times and update durations from it.
//
// Build and run:  ./drive_test
#include <cstdio>
#include <functional>

#include "sim/radio.h"
#include "stack/testbed.h"
#include "trace/analyze.h"

using namespace cnv;

namespace {

void RunUntil(stack::Testbed& tb, const std::function<bool()>& pred,
              SimDuration limit) {
  const SimTime deadline = tb.sim().now() + limit;
  while (!pred() && tb.sim().now() < deadline) tb.Run(Millis(100));
}

}  // namespace

int main() {
  std::printf("Drive test: Route-2 (28.3 mi), carrier OP-II\n\n");

  stack::TestbedConfig cfg;
  cfg.profile = stack::OpII();
  cfg.seed = 7;
  stack::Testbed tb(cfg);
  Rng rng(99);
  const sim::RssiProfile route = sim::Route2Profile();

  tb.ue().PowerOn(nas::System::k3G);
  tb.Run(Seconds(20));

  constexpr double kMph = 45.0;  // freeway + local mix
  const SimTime start = tb.sim().now();
  auto mile_now = [&] {
    return ToSeconds(tb.sim().now() - start) / 3600.0 * kMph;
  };

  double next_crossing_mile = 3.0;
  double next_call_mile = rng.Uniform(1.0, 4.0);
  while (mile_now() < route.EndMile()) {
    tb.ue().SetRssi(route.At(mile_now()));
    if (mile_now() >= next_crossing_mile) {
      next_crossing_mile += rng.Uniform(2.5, 5.0);
      std::printf("mile %5.1f: crossing area boundary (RSSI %.0f dBm)\n",
                  mile_now(), route.At(mile_now()));
      tb.ue().CrossAreaBoundary();
    }
    if (mile_now() >= next_call_mile &&
        tb.ue().call_state() == stack::UeDevice::CallState::kNone) {
      next_call_mile += rng.Uniform(3.0, 6.0);
      const double dial_mile = mile_now();
      const std::size_t before = tb.ue().call_setup_seconds().Count();
      tb.ue().Dial();
      RunUntil(tb,
               [&] { return tb.ue().call_setup_seconds().Count() > before; },
               Minutes(2));
      if (tb.ue().call_setup_seconds().Count() > before) {
        std::printf("mile %5.1f: call connected after %.1fs%s\n", dial_mile,
                    tb.ue().call_setup_seconds().Values().back(),
                    tb.ue().call_setup_seconds().Values().back() > 14.0
                        ? "  <-- inflated by a location update (S4)"
                        : "");
        tb.Run(Seconds(30));
        tb.ue().HangUp();
      }
    }
    tb.Run(Seconds(10));
  }

  std::printf("\n--- measurements derived from the collected trace ---\n");
  const auto& rec = tb.traces().records();
  const auto lau = trace::IntervalSecondsBetween(
      rec, "Location Updating Request sent", "Location Updating Accept");
  const auto rau = trace::IntervalSecondsBetween(
      rec, "Routing Area Update Request sent", "Routing Area Update Accept");
  std::printf("location updates: %s\n", SummaryLine(lau, "s").c_str());
  std::printf("routing updates:  %s\n", SummaryLine(rau, "s").c_str());
  std::printf("call setups:      %s\n",
              SummaryLine(tb.ue().call_setup_seconds(), "s").c_str());
  std::printf("deferred CM service requests (HOL blocking): %llu\n",
              (unsigned long long)tb.ue().deferred_call_requests());
  return 0;
}
