// Chaos campaign driver: sweeps seeds x fault plans x carrier profiles,
// injecting scripted faults into the validation testbed and reporting, per
// run, whether every user-visible property (MM_OK, PacketService_OK,
// CallService_OK) recovered within its SLO bound — and which of the paper's
// S1-S6 findings the run reproduced.
//
// Every run is deterministic in (seed, plan, profile): re-running the same
// triple replays the identical QXDM trace byte for byte.
//
// Usage:  ./chaos_campaign [seeds] [plans] [--robust] [--jobs N]
//                          [--metrics-json DIR]
//   seeds     number of seeds to sweep (default 20)
//   plans     "findings" = the S1-S6 set, "all" = every canned plan,
//             or a comma-separated list of plan names (default "all")
//   --robust  enable the robustness machinery (NAS retries, attach
//             backoff, bounded CM re-requests, core queue-and-replay)
//   --jobs N  run the sweep on N workers (default 0 = hardware concurrency,
//             1 = the old serial behavior). Results, traces and metrics
//             files are byte-identical at any N.
//   --metrics-json DIR
//             collect telemetry and write, under DIR, one
//             run_seed<seed>_<plan>_<profile>.metrics.json report per run
//             (periodic sim-clock metric snapshots + final metrics + spans)
//             plus spans.trace.json, a Chrome trace-event file of every
//             procedure span (open in chrome://tracing or Perfetto). All
//             exported values are simulated-time based, so files are
//             byte-identical across replays.
//
// CI runs the smoke version: ./chaos_campaign 3 s2-attach-disruption,mme-crash-restart
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "obs/export.h"
#include "par/pool.h"

using namespace cnv;

namespace {

std::vector<fault::FaultPlan> SelectPlans(const std::string& spec) {
  if (spec == "findings") return fault::plans::Findings();
  if (spec == "all") return fault::plans::All();
  std::vector<fault::FaultPlan> picked;
  std::string rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string name = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    bool found = false;
    for (auto& plan : fault::plans::All()) {
      if (plan.name == name) {
        picked.push_back(std::move(plan));
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown plan '%s'; known plans:\n", name.c_str());
      for (const auto& plan : fault::plans::All()) {
        std::fprintf(stderr, "  %s\n", plan.name.c_str());
      }
      std::exit(2);
    }
  }
  return picked;
}

}  // namespace

int main(int argc, char** argv) {
  int n_seeds = 20;
  std::string plan_spec = "all";
  bool robust = false;
  int jobs = 0;
  std::string metrics_dir;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--robust") == 0) {
      robust = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--jobs needs a worker count\n");
        return 2;
      }
      jobs = std::atoi(argv[++i]);
      if (jobs < 0) {
        std::fprintf(stderr, "--jobs must be >= 0 (0 = hardware)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--metrics-json needs an output directory\n");
        return 2;
      }
      metrics_dir = argv[++i];
    } else if (positional == 0) {
      n_seeds = std::atoi(argv[i]);
      ++positional;
    } else {
      plan_spec = argv[i];
      ++positional;
    }
  }
  if (n_seeds < 1) {
    std::fprintf(stderr, "seed count must be >= 1\n");
    return 2;
  }

  fault::CampaignConfig cfg;
  cfg.seeds.clear();
  for (int s = 1; s <= n_seeds; ++s) cfg.seeds.push_back(s);
  cfg.plans = SelectPlans(plan_spec);
  cfg.profiles = {stack::OpI(), stack::OpII()};
  if (robust) {
    cfg.robustness = {.nas_retry = true,
                      .attach_backoff = true,
                      .cm_reattempt = true,
                      .core_queue_replay = true};
  }
  cfg.collect_telemetry = !metrics_dir.empty();
  cfg.parallelism = jobs;

  std::printf(
      "chaos campaign: %zu seed(s) x %zu plan(s) x %zu profile(s)%s [%d "
      "job(s)]\n",
      cfg.seeds.size(), cfg.plans.size(), cfg.profiles.size(),
      robust ? " [robust stack]" : " [baseline stack]",
      par::ResolveJobs(jobs));
  for (const auto& plan : cfg.plans) {
    std::printf("  %-26s %s\n", plan.name.c_str(), plan.description.c_str());
  }
  std::printf("\n");

  const fault::CampaignResult result = fault::CampaignRunner(cfg).Run();
  std::printf("%s\n", result.Summary().c_str());

  std::set<std::string> reproduced;
  for (const auto& run : result.runs) {
    for (const auto& f : run.report.findings) reproduced.insert(f.id);
  }
  if (!reproduced.empty()) {
    std::printf("findings reproduced across the sweep:");
    for (const auto& id : reproduced) std::printf(" %s", id.c_str());
    std::printf("\n");
  }
  std::printf("%zu/%zu run(s) recovered within SLO\n", result.runs_within_slo,
              result.runs.size());

  if (!metrics_dir.empty()) {
    std::size_t written = 0;
    for (const auto& run : result.runs) {
      if (!run.telemetry) continue;
      const std::string path =
          metrics_dir + "/run_seed" + std::to_string(run.seed) + "_" +
          obs::SanitizeFilename(run.plan) + "_" +
          obs::SanitizeFilename(run.profile) + ".metrics.json";
      if (!obs::WriteFile(path, run.telemetry->ToJson())) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
      }
      ++written;
    }
    const std::string spans_path = metrics_dir + "/spans.trace.json";
    if (!obs::WriteFile(spans_path, result.ChromeTraceJson())) {
      std::fprintf(stderr, "failed to write %s\n", spans_path.c_str());
      return 1;
    }
    std::printf("wrote %zu per-run metrics report(s) and %s\n", written,
                spans_path.c_str());
  }

  // Exit non-zero only on harness failure; SLO violations and findings are
  // the campaign's *output*, not an error.
  return 0;
}
