// Chaos campaign driver: sweeps seeds x fault plans x carrier profiles,
// injecting scripted faults into the validation testbed and reporting, per
// run, whether every user-visible property (MM_OK, PacketService_OK,
// CallService_OK) recovered within its SLO bound — and which of the paper's
// S1-S6 findings the run reproduced.
//
// Every run is deterministic in (seed, plan, profile): re-running the same
// triple replays the identical QXDM trace byte for byte.
//
// Usage:  ./chaos_campaign [seeds] [plans] [--robust] [--jobs N]
//                          [--metrics-json DIR] [--checkpoint-dir DIR]
//                          [--resume] [--cell-timeout-ms T] [--max-retries R]
//   seeds     number of seeds to sweep (default 20)
//   plans     "findings" = the S1-S6 set, "all" = every canned plan,
//             or a comma-separated list of plan names (default "all")
//   --robust  enable the robustness machinery (NAS retries, attach
//             backoff, bounded CM re-requests, core queue-and-replay)
//   --jobs N  run the sweep on N workers (default 0 = hardware concurrency,
//             1 = the old serial behavior). Results, traces and metrics
//             files are byte-identical at any N.
//   --metrics-json DIR
//             collect telemetry and write, under DIR, one
//             run_seed<seed>_<plan>_<profile>.metrics.json report per run
//             (periodic sim-clock metric snapshots + final metrics + spans)
//             plus spans.trace.json, a Chrome trace-event file of every
//             procedure span (open in chrome://tracing or Perfetto). All
//             exported values are simulated-time based, so files are
//             byte-identical across replays.
//   --checkpoint-dir DIR
//             persist a manifest + one blob per completed (seed, plan,
//             profile) cell under DIR (atomic checksummed writes); with
//             --resume, completed cells replay from their blobs and only
//             missing cells run — report and metrics files are
//             byte-identical to an uninterrupted run, at any --jobs.
//             SIGINT/SIGTERM drain gracefully (in-flight cells finish and
//             checkpoint; exit status 75).
//   --cell-timeout-ms T / --max-retries R
//             per-cell watchdog: a cell whose attempt overran T wall-clock
//             milliseconds is retried up to R times with exponential
//             backoff (defaults: no watchdog, no retries)
//   --backend thread|process
//             execution backend (default thread). "process" fans cells out
//             to supervised worker processes over a checksummed pipe
//             protocol: a crashing or hanging cell kills only its worker,
//             which is respawned; the merged report stays byte-identical.
//   --workers N
//             worker count for the chosen backend (alias for --jobs;
//             whichever is given last wins)
//   --heartbeat-ms T
//             process backend: a worker silent for T ms is declared dead,
//             killed and respawned (default 2000)
//   --quarantine-after K
//             process backend: a cell that kills K workers is quarantined
//             into the report instead of retrying forever (default 3)
//   --admission SPEC
//             sweep core admission policies: comma list of off (legacy
//             zero-queueing core), unbounded (bounded service rate, no
//             admission control — the storm baseline), reject
//             (reject-with-congestion + T3346 backoff), shed
//             (priority shed preserving emergency/paging). Default "off".
//   --storm-scale X
//             scale the message count of every storm action in the
//             selected plans by X (e.g. 0.1 for a smoke run)
//
// Storm sweeps: ./chaos_campaign 3 storms --admission unbounded,reject,shed
// CI runs the smoke version: ./chaos_campaign 3 s2-attach-disruption,mme-crash-restart
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "fault/campaign.h"
#include "obs/export.h"
#include "par/pool.h"
#include "util/args.h"

using namespace cnv;

namespace {

constexpr char kUsage[] =
    "usage: chaos_campaign [seeds] [plans] [--robust] [--jobs N]\n"
    "                      [--metrics-json DIR] [--checkpoint-dir DIR]\n"
    "                      [--resume] [--cell-timeout-ms T] [--max-retries R]\n"
    "                      [--backend thread|process] [--workers N]\n"
    "                      [--heartbeat-ms T] [--quarantine-after K]\n"
    "                      [--admission off,unbounded,reject,shed]\n"
    "                      [--storm-scale X]";

std::vector<fault::FaultPlan> SelectPlans(const std::string& spec) {
  if (spec == "findings") return fault::plans::Findings();
  if (spec == "all") return fault::plans::All();
  if (spec == "storms") return fault::plans::Storms();
  std::vector<fault::FaultPlan> picked;
  std::string rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string name = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    bool found = false;
    for (auto& plan : fault::plans::All()) {
      if (plan.name == name) {
        picked.push_back(std::move(plan));
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown plan '%s'; known plans:\n", name.c_str());
      for (const auto& plan : fault::plans::All()) {
        std::fprintf(stderr, "  %s\n", plan.name.c_str());
      }
      std::exit(2);
    }
  }
  return picked;
}

bool IsStormKind(fault::FaultKind k) {
  return k == fault::FaultKind::kStormMassAttach ||
         k == fault::FaultKind::kStormTaPingPong ||
         k == fault::FaultKind::kStormPagingFlood ||
         k == fault::FaultKind::kStormAdversarialNas;
}

std::vector<stack::OverloadConfig> SelectAdmission(const std::string& spec) {
  std::vector<stack::OverloadConfig> out;
  std::string rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string name = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    stack::OverloadConfig cfg;
    if (name == "off") {
      out.push_back(cfg);  // legacy disabled core
      continue;
    }
    stack::AdmissionPolicy policy;
    if (!stack::ParseAdmissionPolicy(name, &policy)) {
      std::fprintf(stderr,
                   "unknown admission policy '%s' (want off, unbounded, "
                   "reject or shed)\n",
                   name.c_str());
      std::exit(2);
    }
    cfg.enabled = true;
    cfg.policy = policy;
    out.push_back(cfg);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  args::ArgParser parser(argc, argv, kUsage);
  const bool robust = parser.Flag("--robust");
  int jobs = 0;
  parser.IntValue("--jobs", &jobs, 0);
  std::string metrics_dir;
  parser.StrValue("--metrics-json", &metrics_dir);
  std::string checkpoint_dir;
  parser.StrValue("--checkpoint-dir", &checkpoint_dir);
  const bool resume = parser.Flag("--resume");
  std::int64_t cell_timeout_ms = 0;
  parser.I64Value("--cell-timeout-ms", &cell_timeout_ms, 0);
  int max_retries = 0;
  parser.IntValue("--max-retries", &max_retries, 0);
  std::string backend_spec = "thread";
  parser.StrValue("--backend", &backend_spec);
  int workers = -1;
  parser.IntValue("--workers", &workers, -1);
  std::int64_t heartbeat_ms = 2000;
  parser.I64Value("--heartbeat-ms", &heartbeat_ms, 2000);
  int quarantine_after = 3;
  parser.IntValue("--quarantine-after", &quarantine_after, 3);
  std::string admission_spec;
  parser.StrValue("--admission", &admission_spec);
  double storm_scale = 1.0;
  parser.DoubleValue("--storm-scale", &storm_scale);
  const auto positional = parser.Finish(2);

  int n_seeds = 20;
  std::string plan_spec = "all";
  if (!positional.empty()) {
    std::int64_t v = 0;
    if (!args::ParseI64(positional[0], &v) || v < 1) {
      parser.Fail("seed count must be an integer >= 1, got '" +
                  positional[0] + "'");
    }
    n_seeds = static_cast<int>(v);
  }
  if (positional.size() > 1) plan_spec = positional[1];
  if (resume && checkpoint_dir.empty()) {
    parser.Fail("--resume requires --checkpoint-dir");
  }

  fault::CampaignConfig cfg;
  cfg.seeds.clear();
  for (int s = 1; s <= n_seeds; ++s) cfg.seeds.push_back(s);
  cfg.plans = SelectPlans(plan_spec);
  if (storm_scale != 1.0) {
    if (storm_scale <= 0.0) parser.Fail("--storm-scale must be > 0");
    for (auto& plan : cfg.plans) {
      for (auto& action : plan.actions) {
        if (!IsStormKind(action.kind)) continue;
        action.count = std::max(
            1, static_cast<int>(static_cast<double>(action.count) *
                                storm_scale));
      }
    }
  }
  if (!admission_spec.empty()) cfg.admission = SelectAdmission(admission_spec);
  cfg.profiles = {stack::OpI(), stack::OpII()};
  if (robust) {
    cfg.robustness = {.nas_retry = true,
                      .attach_backoff = true,
                      .cm_reattempt = true,
                      .core_queue_replay = true};
  }
  cfg.collect_telemetry = !metrics_dir.empty();
  if (workers >= 0) jobs = workers;
  cfg.parallelism = jobs;
  if (!dist::ParseBackend(backend_spec, &cfg.backend)) {
    parser.Fail("--backend must be 'thread' or 'process', got '" +
                backend_spec + "'");
  }
  cfg.heartbeat_ms = heartbeat_ms;
  cfg.quarantine_after = quarantine_after;
  cfg.checkpoint_dir = checkpoint_dir;
  cfg.resume = resume;
  cfg.retry.cell_timeout_ms = cell_timeout_ms;
  cfg.retry.max_retries = max_retries;

  // Graceful drain: SIGINT/SIGTERM stop new cells; in-flight cells finish
  // and checkpoint before we exit with the distinct interrupted status.
  ckpt::CancelToken cancel;
  ckpt::InstallSignalDrain(&cancel);
  cfg.cancel = &cancel;

  std::printf(
      "chaos campaign: %zu seed(s) x %zu plan(s) x %zu profile(s)%s%s [%d "
      "job(s)]\n",
      cfg.seeds.size(), cfg.plans.size(), cfg.profiles.size(),
      cfg.admission.empty()
          ? ""
          : (" x " + std::to_string(cfg.admission.size()) + " admission")
                .c_str(),
      robust ? " [robust stack]" : " [baseline stack]",
      par::ResolveJobs(jobs));
  for (const auto& plan : cfg.plans) {
    std::printf("  %-26s %s\n", plan.name.c_str(), plan.description.c_str());
  }
  std::printf("\n");

  const fault::CampaignResult result = fault::CampaignRunner(cfg).Run();
  ckpt::InstallSignalDrain(nullptr);

  // Execution accounting goes to stderr: it varies with interruption
  // history, and stdout / the metrics files must stay byte-identical
  // between a resumed and an uninterrupted campaign.
  if (!checkpoint_dir.empty() || result.exec.retries > 0 ||
      result.exec.watchdog_hits > 0) {
    std::fprintf(stderr, "execution: %s\n", result.exec.ToString().c_str());
  }
  if (result.worker_deaths > 0 || result.worker_respawns > 0 ||
      result.heartbeat_timeouts > 0) {
    std::fprintf(stderr,
                 "supervision: %llu worker death(s), %llu respawn(s), %llu "
                 "heartbeat timeout(s)\n",
                 static_cast<unsigned long long>(result.worker_deaths),
                 static_cast<unsigned long long>(result.worker_respawns),
                 static_cast<unsigned long long>(result.heartbeat_timeouts));
  }
  if (!result.complete && result.quarantined.empty()) {
    std::fprintf(stderr,
                 "campaign interrupted: %llu/%llu cell(s) done; resume with "
                 "--checkpoint-dir %s --resume\n",
                 static_cast<unsigned long long>(result.exec.cells_resumed +
                                                 result.exec.cells_run),
                 static_cast<unsigned long long>(result.exec.cells_total),
                 checkpoint_dir.c_str());
    return ckpt::kInterruptedExitCode;
  }

  std::printf("%s\n", result.Summary().c_str());

  std::set<std::string> reproduced;
  for (const auto& run : result.runs) {
    for (const auto& f : run.report.findings) reproduced.insert(f.id);
  }
  if (!reproduced.empty()) {
    std::printf("findings reproduced across the sweep:");
    for (const auto& id : reproduced) std::printf(" %s", id.c_str());
    std::printf("\n");
  }
  std::printf("%zu/%zu run(s) recovered within SLO\n", result.runs_within_slo,
              result.runs.size());

  if (!metrics_dir.empty()) {
    std::size_t written = 0;
    for (const auto& run : result.runs) {
      if (!run.telemetry) continue;
      const std::string path =
          metrics_dir + "/run_seed" + std::to_string(run.seed) + "_" +
          obs::SanitizeFilename(run.plan) + "_" +
          obs::SanitizeFilename(run.profile) +
          (run.admission.empty()
               ? ""
               : "_" + obs::SanitizeFilename(run.admission)) +
          ".metrics.json";
      if (!obs::WriteFile(path, run.telemetry->ToJson())) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
      }
      ++written;
    }
    const std::string spans_path = metrics_dir + "/spans.trace.json";
    if (!obs::WriteFile(spans_path, result.ChromeTraceJson())) {
      std::fprintf(stderr, "failed to write %s\n", spans_path.c_str());
      return 1;
    }
    std::printf("wrote %zu per-run metrics report(s) and %s\n", written,
                spans_path.c_str());
  }

  // Exit non-zero only on harness failure; SLO violations and findings are
  // the campaign's *output*, not an error. A quarantined cell *is* a
  // harness failure: its workers kept dying and the cell never produced a
  // result.
  return result.quarantined.empty() ? 0 : 1;
}
