// Differential conformance driver: sweeps seeds × carrier profiles, running
// the S1-S4 screening models (exhaustive exploration plus a seeded random
// walk per cell) side by side with simulator replays of the compiled
// counterexample scripts, and classifies every cell into a verdict. The
// headline number is unexplained divergences — expected to be zero.
//
// Usage:  ./conformance [--seeds N] [--seed-base S] [--walks W] [--jobs N]
//                       [--json FILE] [--checkpoint-dir DIR] [--resume]
//                       [--backend thread|process] [--workers N]
//                       [--heartbeat-ms T] [--quarantine-after K]
//   --seeds N    testbed/walk seeds per (scenario, carrier) group
//                (default 64)
//   --seed-base S
//                first seed of the range (default 1)
//   --walks W    random walks per cell on the model side (default 32)
//   --jobs N     run cells on N workers (default 1 = serial). The report
//                is byte-identical at any N.
//   --json FILE  also write the machine-readable report to FILE
//   --checkpoint-dir DIR
//                persist each completed cell under DIR; with --resume,
//                completed cells replay from their blobs and the report is
//                byte-identical to an uninterrupted run. SIGINT/SIGTERM
//                drain gracefully between cells (exit status 75).
//   --backend thread|process
//                run cells in worker threads (default) or supervised worker
//                processes (failure isolation: a crashing cell is retried in
//                a fresh worker and quarantined after --quarantine-after
//                strikes). The report is byte-identical either way.
//   --workers N  alias for --jobs (whichever is given last wins)
//   --heartbeat-ms T / --quarantine-after K
//                process-backend liveness deadline and poisoned-cell strike
//                budget (defaults 2000 ms, 3 strikes)
//   --reduce     explore the model side with partial-order + symmetry
//                reduction enabled; the report is byte-identical to an
//                unreduced sweep (the S1-S4 slices have trivial reduction
//                specs).
//
// Exit status: 0 = complete sweep, zero unexplained divergences;
//              1 = complete sweep with unexplained divergences;
//              75 = interrupted (resume with --checkpoint-dir/--resume).
#include <cstdio>

#include "ckpt/manifest.h"
#include "conf/diff.h"
#include "util/args.h"

using namespace cnv;

int main(int argc, char** argv) {
  args::ArgParser parser(
      argc, argv,
      "usage: conformance [--seeds N] [--seed-base S] [--walks W] [--jobs N]\n"
      "                   [--json FILE] [--checkpoint-dir DIR] [--resume]\n"
      "                   [--backend thread|process] [--workers N]\n"
      "                   [--heartbeat-ms T] [--quarantine-after K]\n"
      "                   [--reduce]");
  conf::DiffOptions opt;
  std::string json_path;
  if (parser.Flag("--reduce")) {
    opt.reduction.por = true;
    opt.reduction.symmetry = true;
  }
  parser.U64Value("--seeds", &opt.seeds);
  parser.U64Value("--seed-base", &opt.seed_base);
  parser.U64Value("--walks", &opt.walks);
  parser.IntValue("--jobs", &opt.jobs, 1);
  parser.StrValue("--json", &json_path);
  parser.StrValue("--checkpoint-dir", &opt.checkpoint_dir);
  opt.resume = parser.Flag("--resume");
  std::string backend_spec = "thread";
  parser.StrValue("--backend", &backend_spec);
  int workers = -1;
  parser.IntValue("--workers", &workers, -1);
  parser.I64Value("--heartbeat-ms", &opt.heartbeat_ms, 2000);
  parser.IntValue("--quarantine-after", &opt.quarantine_after, 3);
  parser.Finish(0);
  if (opt.resume && opt.checkpoint_dir.empty()) {
    parser.Fail("--resume requires --checkpoint-dir");
  }
  if (opt.seeds == 0) parser.Fail("--seeds must be >= 1");
  if (workers >= 0) opt.jobs = workers;
  if (!dist::ParseBackend(backend_spec, &opt.backend)) {
    parser.Fail("--backend must be 'thread' or 'process', got '" +
                backend_spec + "'");
  }

  ckpt::CancelToken cancel;
  ckpt::InstallSignalDrain(&cancel);
  opt.cancel = &cancel;

  const auto report = conf::DifferentialDriver(opt).Run();
  ckpt::InstallSignalDrain(nullptr);

  // Execution accounting to stderr only: stdout must stay byte-identical
  // between a resumed and an uninterrupted sweep.
  if (!opt.checkpoint_dir.empty()) {
    std::fprintf(stderr, "execution: %s\n", report.exec.ToString().c_str());
  }
  for (const auto& q : report.quarantined) {
    std::fprintf(stderr, "QUARANTINED cell %llu (%s) after %u strike(s): %s\n",
                 static_cast<unsigned long long>(q.index), q.name.c_str(),
                 static_cast<unsigned>(q.strikes), q.last_error.c_str());
  }
  if (!report.quarantined.empty()) return 1;
  if (!report.complete) {
    std::fprintf(stderr,
                 "conformance sweep interrupted: %llu/%llu cell(s) done; "
                 "resume with --checkpoint-dir %s --resume\n",
                 static_cast<unsigned long long>(report.exec.cells_resumed +
                                                 report.exec.cells_run),
                 static_cast<unsigned long long>(report.exec.cells_total),
                 opt.checkpoint_dir.c_str());
    return ckpt::kInterruptedExitCode;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 2;
    }
    const std::string json = conf::DifferentialDriver::FormatJson(report);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }

  std::printf("%s", conf::DifferentialDriver::FormatText(report).c_str());
  return report.unexplained_divergences > 0 ? 1 : 0;
}
