// The CNetVerifier workflow end to end, as a command-line diagnosis tool:
//
//   phase 1 (screening):  model-check the protocol-interaction models
//                         against the three cellular-oriented properties;
//   phase 2 (validation): replay the counterexample scenarios on both
//                         simulated carriers and report what is observed;
//   remedies:             re-run both phases with the §8 solutions enabled
//                         and show that every issue disappears.
//
// Build and run:  ./diagnose
#include <cstdio>
#include <fstream>

#include "core/findings.h"
#include "core/report.h"
#include "core/screening.h"
#include "core/validation.h"

using namespace cnv;

int main() {
  std::printf("CNetVerifier: two-phase control-plane diagnosis\n\n");

  // --- phase 1: screening
  core::ScreeningRunner screening;
  const auto sreport = screening.RunAll();
  std::printf("%s\n", core::ScreeningRunner::Format(sreport).c_str());

  // --- phase 2: validation on both carriers
  core::ValidationRunner validation;
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    std::printf("validating on %s:\n", profile.name.c_str());
    std::printf("%s\n",
                core::ValidationRunner::Format(validation.RunAll(profile))
                    .c_str());
  }

  // --- the same pipeline with every §8 remedy enabled
  std::printf("re-running with all solutions enabled...\n\n");
  core::ScreeningOptions sopt;
  sopt.with_solutions = true;
  const auto fixed = core::ScreeningRunner(sopt).RunAll();
  std::printf("screening with solutions: %zu violation(s)\n",
              fixed.findings_found.size());

  core::ValidationOptions vopt;
  vopt.solutions = {.shim_layer = true,
                    .mm_decoupled = true,
                    .domain_decoupled = true,
                    .csfb_tag = true,
                    .reactivate_bearer = true,
                    .mme_lu_recovery = true};
  int observed = 0;
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    for (const auto& r : core::ValidationRunner(vopt).RunAll(profile)) {
      if (r.observed) ++observed;
    }
  }
  std::printf("validation with solutions: %d finding(s) observed\n\n",
              observed);
  std::printf(fixed.findings_found.empty() && observed == 0
                  ? "all six instances resolved by the proposed remedies.\n"
                  : "some issues remain!\n");

  // Write the full markdown report for humans.
  core::PipelineOptions ropt;
  const auto report = core::RunPipeline(ropt);
  std::ofstream("cnetverifier_report.md")
      << core::RenderMarkdown(report, ropt);
  std::printf("\nfull report written to cnetverifier_report.md "
              "(%zu finding(s) confirmed)\n",
              report.confirmed.size());
  return 0;
}
