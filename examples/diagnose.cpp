// The CNetVerifier workflow end to end, as a command-line diagnosis tool:
//
//   phase 1 (screening):  model-check the protocol-interaction models
//                         against the three cellular-oriented properties;
//   phase 2 (validation): replay the counterexample scenarios on both
//                         simulated carriers and report what is observed;
//   remedies:             re-run both phases with the §8 solutions enabled
//                         and show that every issue disappears.
//
// Build and run:  ./diagnose
//
// With a positional argument, runs in offline log-diagnosis mode instead:
//
//   ./diagnose capture.log
//
// parses the QXDM-format capture strictly (reporting exactly which lines
// were malformed and skipped), replays it through the S1-S6 online monitors
// and prints the alerts — the file-based twin of the `watchdog` tool.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/findings.h"
#include "core/report.h"
#include "core/screening.h"
#include "core/validation.h"
#include "rtv/monitors.h"
#include "trace/qxdm.h"
#include "util/args.h"

using namespace cnv;

namespace {

int DiagnoseLog(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "diagnose: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << file.rdbuf();

  trace::ParseLogStats stats;
  const auto records = trace::ParseLogStrict(buf.str(), &stats);
  std::printf("%s: %zu line(s), %zu record(s), %zu blank, %zu skipped\n",
              path.c_str(), stats.lines, stats.parsed, stats.blank,
              stats.skipped);
  if (stats.skipped > 0) {
    std::printf("  malformed line(s):");
    for (const auto n : stats.skipped_lines) std::printf(" %zu", n);
    if (stats.skipped > stats.skipped_lines.size()) {
      std::printf(" ... (+%zu more)",
                  stats.skipped - stats.skipped_lines.size());
    }
    std::printf("\n");
  }

  rtv::FindingMonitors monitors;
  std::vector<rtv::Alert> alerts;
  std::uint64_t ordinal = 0;
  for (const auto& r : records) monitors.Step(r, ordinal++, &alerts);
  std::printf("%zu alert(s)\n", alerts.size());
  for (const auto& a : alerts) {
    std::printf("  %s\n", rtv::FormatAlert(a).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  args::ArgParser parser(argc, argv, "usage: diagnose [capture.log]");
  const auto positional = parser.Finish(1);
  if (!positional.empty()) return DiagnoseLog(positional[0]);

  std::printf("CNetVerifier: two-phase control-plane diagnosis\n\n");

  // --- phase 1: screening
  core::ScreeningRunner screening;
  const auto sreport = screening.RunAll();
  std::printf("%s\n", core::ScreeningRunner::Format(sreport).c_str());

  // --- phase 2: validation on both carriers
  core::ValidationRunner validation;
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    std::printf("validating on %s:\n", profile.name.c_str());
    std::printf("%s\n",
                core::ValidationRunner::Format(validation.RunAll(profile))
                    .c_str());
  }

  // --- the same pipeline with every §8 remedy enabled
  std::printf("re-running with all solutions enabled...\n\n");
  core::ScreeningOptions sopt;
  sopt.with_solutions = true;
  const auto fixed = core::ScreeningRunner(sopt).RunAll();
  std::printf("screening with solutions: %zu violation(s)\n",
              fixed.findings_found.size());

  core::ValidationOptions vopt;
  vopt.solutions = {.shim_layer = true,
                    .mm_decoupled = true,
                    .domain_decoupled = true,
                    .csfb_tag = true,
                    .reactivate_bearer = true,
                    .mme_lu_recovery = true};
  int observed = 0;
  for (const auto& profile : {stack::OpI(), stack::OpII()}) {
    for (const auto& r : core::ValidationRunner(vopt).RunAll(profile)) {
      if (r.observed) ++observed;
    }
  }
  std::printf("validation with solutions: %d finding(s) observed\n\n",
              observed);
  std::printf(fixed.findings_found.empty() && observed == 0
                  ? "all six instances resolved by the proposed remedies.\n"
                  : "some issues remain!\n");

  // Write the full markdown report for humans.
  core::PipelineOptions ropt;
  const auto report = core::RunPipeline(ropt);
  std::ofstream("cnetverifier_report.md")
      << core::RenderMarkdown(report, ropt);
  std::printf("\nfull report written to cnetverifier_report.md "
              "(%zu finding(s) confirmed)\n",
              report.confirmed.size());
  return 0;
}
