// Screening-phase driver: runs the §3.2 scenario-cell catalog (S1-S4
// screening models x the bounded usage-option enumeration) and prints the
// per-cell exploration statistics, violated properties and classified
// findings.
//
// Usage:  ./screening [--jobs N] [--walks W] [--seed S] [--solutions]
//   --jobs N     explore each cell on N workers (default 0 = hardware
//                concurrency, 1 = serial). Findings, violated properties
//                and counterexamples are byte-identical at any N; only the
//                wall-clock lines differ between runs.
//   --walks W    random walks per cell on top of the exhaustive pass
//                (default 200)
//   --seed S     RNG seed for the random walks (default 1)
//   --solutions  screen the §8 remedies instead of the standard behaviour
//                (expected outcome: zero findings)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/screening.h"

using namespace cnv;

int main(int argc, char** argv) {
  core::ScreeningOptions opt;
  opt.jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--solutions") == 0) {
      opt.with_solutions = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = std::atoi(argv[++i]);
      if (opt.jobs < 0) {
        std::fprintf(stderr, "--jobs must be >= 0 (0 = hardware)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--walks") == 0 && i + 1 < argc) {
      opt.random_walks = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--walks W] [--seed S] [--solutions]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto report = core::ScreeningRunner(opt).RunAll();
  std::printf("%s", core::ScreeningRunner::Format(report).c_str());
  return 0;
}
