// Screening-phase driver: runs the §3.2 scenario-cell catalog (S1-S4
// screening models x the bounded usage-option enumeration) and prints the
// per-cell exploration statistics, violated properties and classified
// findings.
//
// Usage:  ./screening [--jobs N] [--walks W] [--seed S] [--solutions]
//                     [--checkpoint-dir DIR] [--resume]
//   --jobs N     explore each cell on N workers (default 0 = hardware
//                concurrency, 1 = serial). Findings, violated properties
//                and counterexamples are byte-identical at any N; only the
//                wall-clock lines differ between runs.
//   --walks W    random walks per cell on top of the exhaustive pass
//                (default 200)
//   --seed S     RNG seed for the random walks (default 1)
//   --solutions  screen the §8 remedies instead of the standard behaviour
//                (expected outcome: zero findings)
//   --checkpoint-dir DIR
//                persist each completed catalog cell (plus the RNG stream
//                position) under DIR; with --resume, completed cells replay
//                from their blobs and the report is byte-identical to an
//                uninterrupted run. SIGINT/SIGTERM drain gracefully between
//                cells (exit status 75).
#include <cstdio>

#include "ckpt/manifest.h"
#include "core/screening.h"
#include "util/args.h"

using namespace cnv;

int main(int argc, char** argv) {
  args::ArgParser parser(
      argc, argv,
      "usage: screening [--jobs N] [--walks W] [--seed S] [--solutions]\n"
      "                 [--checkpoint-dir DIR] [--resume]");
  core::ScreeningOptions opt;
  opt.jobs = 0;
  opt.with_solutions = parser.Flag("--solutions");
  parser.IntValue("--jobs", &opt.jobs, 0);
  parser.U64Value("--walks", &opt.random_walks);
  parser.U64Value("--seed", &opt.seed);
  parser.StrValue("--checkpoint-dir", &opt.checkpoint_dir);
  opt.resume = parser.Flag("--resume");
  parser.Finish(0);
  if (opt.resume && opt.checkpoint_dir.empty()) {
    parser.Fail("--resume requires --checkpoint-dir");
  }

  ckpt::CancelToken cancel;
  ckpt::InstallSignalDrain(&cancel);
  opt.cancel = &cancel;

  const auto report = core::ScreeningRunner(opt).RunAll();
  ckpt::InstallSignalDrain(nullptr);

  // Execution accounting to stderr only: stdout must stay byte-identical
  // between a resumed and an uninterrupted screening run.
  if (!opt.checkpoint_dir.empty()) {
    std::fprintf(stderr, "execution: %s\n", report.exec.ToString().c_str());
  }
  if (!report.complete) {
    std::fprintf(stderr,
                 "screening interrupted: %llu/%llu cell(s) done; resume "
                 "with --checkpoint-dir %s --resume\n",
                 static_cast<unsigned long long>(report.exec.cells_resumed +
                                                 report.exec.cells_run),
                 static_cast<unsigned long long>(report.exec.cells_total),
                 opt.checkpoint_dir.c_str());
    return ckpt::kInterruptedExitCode;
  }

  std::printf("%s", core::ScreeningRunner::Format(report).c_str());
  return 0;
}
