// Screening-phase driver: runs the §3.2 scenario-cell catalog (S1-S4
// screening models x the bounded usage-option enumeration) and prints the
// per-cell exploration statistics, violated properties and classified
// findings.
//
// Usage:  ./screening [--jobs N] [--walks W] [--seed S] [--solutions]
//                     [--checkpoint-dir DIR] [--resume]
//                     [--backend thread|process] [--workers N]
//                     [--heartbeat-ms T] [--quarantine-after K]
//   --jobs N     explore each cell on N workers (default 0 = hardware
//                concurrency, 1 = serial). Findings, violated properties
//                and counterexamples are byte-identical at any N; only the
//                wall-clock lines differ between runs.
//   --walks W    random walks per cell on top of the exhaustive pass
//                (default 200)
//   --seed S     RNG seed for the random walks (default 1)
//   --solutions  screen the §8 remedies instead of the standard behaviour
//                (expected outcome: zero findings)
//   --checkpoint-dir DIR
//                persist each completed catalog cell (plus the RNG stream
//                position) under DIR; with --resume, completed cells replay
//                from their blobs and the report is byte-identical to an
//                uninterrupted run. SIGINT/SIGTERM drain gracefully between
//                cells (exit status 75).
//   --backend thread|process
//                run the catalog in-process (default) or in a supervised
//                worker process (failure isolation: a crashing or hanging
//                cell is retried in a fresh worker and quarantined after
//                --quarantine-after strikes). The catalog is a chained
//                grid — cells always run in order — and the report is
//                byte-identical either way.
//   --workers N  alias for --jobs (whichever is given last wins)
//   --heartbeat-ms T / --quarantine-after K
//                process-backend liveness deadline and poisoned-cell strike
//                budget (defaults 2000 ms, 3 strikes)
//   --reduce     explore each cell with partial-order + symmetry reduction
//                enabled. The S1-S4 slices carry trivial reduction specs,
//                so the findings and counterexamples are byte-identical to
//                an unreduced sweep (pinned by the `reduction` CI job).
#include <cstdio>

#include "ckpt/manifest.h"
#include "core/screening.h"
#include "util/args.h"

using namespace cnv;

int main(int argc, char** argv) {
  args::ArgParser parser(
      argc, argv,
      "usage: screening [--jobs N] [--walks W] [--seed S] [--solutions]\n"
      "                 [--checkpoint-dir DIR] [--resume]\n"
      "                 [--backend thread|process] [--workers N]\n"
      "                 [--heartbeat-ms T] [--quarantine-after K] [--reduce]");
  core::ScreeningOptions opt;
  opt.jobs = 0;
  opt.with_solutions = parser.Flag("--solutions");
  if (parser.Flag("--reduce")) {
    opt.reduction.por = true;
    opt.reduction.symmetry = true;
  }
  parser.IntValue("--jobs", &opt.jobs, 0);
  parser.U64Value("--walks", &opt.random_walks);
  parser.U64Value("--seed", &opt.seed);
  parser.StrValue("--checkpoint-dir", &opt.checkpoint_dir);
  opt.resume = parser.Flag("--resume");
  std::string backend_spec = "thread";
  parser.StrValue("--backend", &backend_spec);
  int workers = -1;
  parser.IntValue("--workers", &workers, -1);
  parser.I64Value("--heartbeat-ms", &opt.heartbeat_ms, 2000);
  parser.IntValue("--quarantine-after", &opt.quarantine_after, 3);
  parser.Finish(0);
  if (opt.resume && opt.checkpoint_dir.empty()) {
    parser.Fail("--resume requires --checkpoint-dir");
  }
  if (workers >= 0) opt.jobs = workers;
  if (!dist::ParseBackend(backend_spec, &opt.backend)) {
    parser.Fail("--backend must be 'thread' or 'process', got '" +
                backend_spec + "'");
  }

  ckpt::CancelToken cancel;
  ckpt::InstallSignalDrain(&cancel);
  opt.cancel = &cancel;

  const auto report = core::ScreeningRunner(opt).RunAll();
  ckpt::InstallSignalDrain(nullptr);

  // Execution accounting to stderr only: stdout must stay byte-identical
  // between a resumed and an uninterrupted screening run.
  if (!opt.checkpoint_dir.empty()) {
    std::fprintf(stderr, "execution: %s\n", report.exec.ToString().c_str());
  }
  for (const auto& q : report.quarantined) {
    std::fprintf(stderr, "QUARANTINED cell %llu (%s) after %u strike(s): %s\n",
                 static_cast<unsigned long long>(q.index), q.name.c_str(),
                 static_cast<unsigned>(q.strikes), q.last_error.c_str());
  }
  if (!report.quarantined.empty()) return 1;
  if (!report.complete) {
    std::fprintf(stderr,
                 "screening interrupted: %llu/%llu cell(s) done; resume "
                 "with --checkpoint-dir %s --resume\n",
                 static_cast<unsigned long long>(report.exec.cells_resumed +
                                                 report.exec.cells_run),
                 static_cast<unsigned long long>(report.exec.cells_total),
                 opt.checkpoint_dir.c_str());
    return ckpt::kInterruptedExitCode;
  }

  std::printf("%s", core::ScreeningRunner::Format(report).c_str());
  return 0;
}
