// Online runtime-verification watchdog: tails a QXDM-format trace source
// through the rtv gateway and prints an alert the moment one of the paper's
// S1-S6 finding signatures (or an overload event) completes — live
// monitoring, instead of the post-hoc analysis `diagnose` does.
//
//   ./watchdog trace.log                 # verify a capture file
//   ./golden_traces && ./watchdog golden_traces/s1_context_loss_opi.log
//   some_producer | ./watchdog -         # follow a byte stream on stdin
//
// Flags:
//   --chunk N           feed size in bytes (default 65536); the alert log is
//                       byte-identical at any chunking, including --chunk 1
//   --policy block|drop backpressure when the ring fills (default block)
//   --ring N            ring capacity in records (default 16384)
//   --alert-log FILE    also write the alert log to FILE
//   --metrics-json FILE write the final obs registry snapshot to FILE
//   --snapshot-every N  refresh --metrics-json every N records while running
//   --quiet             suppress live per-alert lines (final report only)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "rtv/gateway.h"
#include "util/args.h"

using namespace cnv;

namespace {

constexpr char kUsage[] =
    "usage: watchdog [trace.log|-] [--chunk N] [--policy block|drop]\n"
    "                [--ring N] [--alert-log FILE] [--metrics-json FILE]\n"
    "                [--snapshot-every N] [--quiet]";

}  // namespace

int main(int argc, char** argv) {
  args::ArgParser parser(argc, argv, kUsage);
  std::int64_t chunk = 64 * 1024;
  parser.I64Value("--chunk", &chunk, 1);
  std::int64_t ring = 1 << 14;
  parser.I64Value("--ring", &ring, 2);
  std::int64_t snapshot_every = 0;
  parser.I64Value("--snapshot-every", &snapshot_every, 1);
  std::string policy = "block";
  parser.StrValue("--policy", &policy);
  std::string alert_log_path;
  parser.StrValue("--alert-log", &alert_log_path);
  std::string metrics_path;
  parser.StrValue("--metrics-json", &metrics_path);
  const bool quiet = parser.Flag("--quiet");
  const auto positional = parser.Finish(1);
  const std::string source = positional.empty() ? "-" : positional[0];

  rtv::GatewayConfig config;
  config.ring_capacity = static_cast<std::size_t>(ring);
  if (policy == "drop") {
    config.backpressure = rtv::Backpressure::kDropNewest;
  } else if (policy != "block") {
    parser.Fail("--policy must be 'block' or 'drop'");
  }
  if (snapshot_every > 0 && !metrics_path.empty()) {
    config.snapshot_every = static_cast<std::size_t>(snapshot_every);
    config.snapshot_path = metrics_path;
  }

  rtv::Gateway gateway(config);
  if (!quiet) {
    gateway.set_alert_callback([](const rtv::Alert& a) {
      std::printf("%s\n", rtv::FormatAlert(a).c_str());
      std::fflush(stdout);
    });
  }
  gateway.Start();

  std::ifstream file;
  std::istream* in = &std::cin;
  if (source != "-") {
    file.open(source, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "watchdog: cannot open '%s'\n", source.c_str());
      return 1;
    }
    in = &file;
  }

  std::vector<char> buf(static_cast<std::size_t>(chunk));
  while (*in) {
    in->read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const auto got = static_cast<std::size_t>(in->gcount());
    if (got == 0) break;
    gateway.Feed(0, std::string_view(buf.data(), got));
  }
  gateway.Finish();

  const auto stats = gateway.stats();
  std::printf(
      "---\n"
      "%llu bytes, %llu lines, %llu records (%llu skipped, %llu overlong, "
      "%llu dropped)\n"
      "%zu alert(s)\n",
      static_cast<unsigned long long>(stats.bytes_in),
      static_cast<unsigned long long>(stats.lines_in),
      static_cast<unsigned long long>(stats.records_in),
      static_cast<unsigned long long>(stats.lines_skipped),
      static_cast<unsigned long long>(stats.lines_overlong),
      static_cast<unsigned long long>(stats.records_dropped),
      static_cast<std::size_t>(stats.alerts));
  for (const auto& a : gateway.alerts()) {
    std::printf("  %s\n", rtv::FormatAlert(a).c_str());
  }

  if (!alert_log_path.empty()) {
    obs::WriteFile(alert_log_path, gateway.AlertLog());
    std::fprintf(stderr, "alert log written to %s\n", alert_log_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::WriteFile(metrics_path,
                   gateway.registry().ToJson(gateway.last_record_time()));
    std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
