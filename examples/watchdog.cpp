// Online runtime-verification watchdog: tails a QXDM-format trace source
// through the rtv gateway and prints an alert the moment one of the paper's
// S1-S6 finding signatures (or an overload event) completes — live
// monitoring, instead of the post-hoc analysis `diagnose` does.
//
//   ./watchdog trace.log                 # verify a capture file
//   ./golden_traces && ./watchdog golden_traces/s1_context_loss_opi.log
//   some_producer | ./watchdog -         # follow a byte stream on stdin
//
// Flags:
//   --chunk N           feed size in bytes (default 65536); the alert log is
//                       byte-identical at any chunking, including --chunk 1
//   --policy block|drop backpressure when the ring fills (default block)
//   --ring N            ring capacity in records (default 16384)
//   --alert-log FILE    also write the alert log to FILE
//   --metrics-json FILE write the final obs registry snapshot to FILE
//   --snapshot-every N  refresh --metrics-json every N records while running
//   --quiet             suppress live per-alert lines (final report only)
//
// SIGINT/SIGTERM drain gracefully — also in `-` (stdin-follow) mode, where
// the watchdog may sit forever in a blocked read: the feed loop polls, so a
// signal is noticed within one poll tick even if no bytes ever arrive. On
// drain the gateway finishes, the final report is printed and the alert
// log / metrics snapshot are flushed, then the exit status is 75.
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "obs/export.h"
#include "rtv/gateway.h"
#include "util/args.h"

using namespace cnv;

namespace {

constexpr char kUsage[] =
    "usage: watchdog [trace.log|-] [--chunk N] [--policy block|drop]\n"
    "                [--ring N] [--alert-log FILE] [--metrics-json FILE]\n"
    "                [--snapshot-every N] [--quiet]";

}  // namespace

int main(int argc, char** argv) {
  args::ArgParser parser(argc, argv, kUsage);
  std::int64_t chunk = 64 * 1024;
  parser.I64Value("--chunk", &chunk, 1);
  std::int64_t ring = 1 << 14;
  parser.I64Value("--ring", &ring, 2);
  std::int64_t snapshot_every = 0;
  parser.I64Value("--snapshot-every", &snapshot_every, 1);
  std::string policy = "block";
  parser.StrValue("--policy", &policy);
  std::string alert_log_path;
  parser.StrValue("--alert-log", &alert_log_path);
  std::string metrics_path;
  parser.StrValue("--metrics-json", &metrics_path);
  const bool quiet = parser.Flag("--quiet");
  const auto positional = parser.Finish(1);
  const std::string source = positional.empty() ? "-" : positional[0];

  rtv::GatewayConfig config;
  config.ring_capacity = static_cast<std::size_t>(ring);
  if (policy == "drop") {
    config.backpressure = rtv::Backpressure::kDropNewest;
  } else if (policy != "block") {
    parser.Fail("--policy must be 'block' or 'drop'");
  }
  if (snapshot_every > 0 && !metrics_path.empty()) {
    config.snapshot_every = static_cast<std::size_t>(snapshot_every);
    config.snapshot_path = metrics_path;
  }

  rtv::Gateway gateway(config);
  if (!quiet) {
    gateway.set_alert_callback([](const rtv::Alert& a) {
      std::printf("%s\n", rtv::FormatAlert(a).c_str());
      std::fflush(stdout);
    });
  }
  gateway.Start();

  int fd = STDIN_FILENO;
  if (source != "-") {
    fd = open(source.c_str(), O_RDONLY);
    if (fd < 0) {
      std::fprintf(stderr, "watchdog: cannot open '%s'\n", source.c_str());
      return 1;
    }
  }

  // Graceful drain, covering the stdin-follow mode where the producer may
  // never send another byte: the loop polls with a short timeout and
  // re-checks the drain flag every tick, so a SIGTERM cannot be lost to a
  // blocked (or restarted) read.
  ckpt::CancelToken cancel;
  ckpt::InstallSignalDrain(&cancel);

  bool interrupted = false;
  std::vector<char> buf(static_cast<std::size_t>(chunk));
  for (;;) {
    if (cancel.cancelled()) {
      interrupted = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;  // drain flag checked at loop top
      break;
    }
    if (rc == 0) continue;  // tick: nothing to read, re-check the flag
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF
    gateway.Feed(0, std::string_view(buf.data(), static_cast<std::size_t>(n)));
  }
  if (fd != STDIN_FILENO) close(fd);
  gateway.Finish();
  ckpt::InstallSignalDrain(nullptr);

  const auto stats = gateway.stats();
  std::printf(
      "---\n"
      "%llu bytes, %llu lines, %llu records (%llu skipped, %llu overlong, "
      "%llu dropped)\n"
      "%zu alert(s)\n",
      static_cast<unsigned long long>(stats.bytes_in),
      static_cast<unsigned long long>(stats.lines_in),
      static_cast<unsigned long long>(stats.records_in),
      static_cast<unsigned long long>(stats.lines_skipped),
      static_cast<unsigned long long>(stats.lines_overlong),
      static_cast<unsigned long long>(stats.records_dropped),
      static_cast<std::size_t>(stats.alerts));
  for (const auto& a : gateway.alerts()) {
    std::printf("  %s\n", rtv::FormatAlert(a).c_str());
  }

  if (!alert_log_path.empty()) {
    obs::WriteFile(alert_log_path, gateway.AlertLog());
    std::fprintf(stderr, "alert log written to %s\n", alert_log_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::WriteFile(metrics_path,
                   gateway.registry().ToJson(gateway.last_record_time()));
    std::fprintf(stderr, "metrics written to %s\n", metrics_path.c_str());
  }
  if (interrupted) {
    std::fprintf(stderr, "watchdog: drained on signal\n");
    return ckpt::kInterruptedExitCode;
  }
  return 0;
}
